//! Offline vendored stand-in for `crossbeam`.
//!
//! Only [`channel`] is provided, backed by `std::sync::mpsc`. The
//! workspace's communication layer (`uq-parallel`) uses exactly the
//! MPSC subset — cloneable senders, single receiver per rank — so the
//! std channel is a faithful substitute for `crossbeam::channel`'s
//! unbounded channel here.

#![deny(rustdoc::broken_intra_doc_links)]

/// Unbounded MPSC channels (crossbeam-channel API subset).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded channel; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fan_in() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_is_err_not_panic() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
