//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) slice of the `rand` 0.9 API the workspace uses:
//!
//! * [`Rng`] — the object-safe core trait (`next_u64`/`next_u32`);
//! * [`RngExt`] — blanket extension supplying the generic
//!   [`RngExt::random`] used for uniform draws;
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   through SplitMix64 (the same construction the xoshiro authors
//!   recommend; statistical quality is more than sufficient for the
//!   Monte Carlo tests in this workspace).
//!
//! The implementation is deterministic and dependency-free. Swapping the
//! real `rand` back in only requires replacing the `[patch]`-free path
//! dependency in the workspace manifests; the API subset here is
//! call-compatible.

#![deny(rustdoc::broken_intra_doc_links)]

/// Object-safe random number generator core: a source of uniform 64-bit
/// words. Mirrors `rand::RngCore` + `rand::Rng` collapsed into one trait
/// (the workspace only needs uniform `f64` draws on top of raw words).
pub trait Rng {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper bits of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be drawn uniformly from an RNG ("standard"
/// distribution): the target of [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over any [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    /// Draw a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw in `[low, high)`.
    fn random_range(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.random::<f64>()
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (which is
    /// ChaCha-based), but every consumer in this workspace seeds
    /// explicitly via [`SeedableRng::seed_from_u64`] and only relies on
    /// determinism and statistical quality, not on a specific stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Feeding
        /// them back through [`StdRng::from_state`] reproduces the
        /// stream bit-for-bit from the captured position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
    }
}
