//! Offline vendored stand-in for `rayon`.
//!
//! Provides the tiny slice of the rayon API this workspace uses —
//! `(range).into_par_iter().map(f).collect()/.sum()` — with a real
//! multi-threaded implementation on top of `std::thread::scope`: the
//! index range is split into one contiguous chunk per available core and
//! the chunks are mapped concurrently. Results are returned in index
//! order, exactly like rayon's indexed parallel iterators.

#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::Range;

/// Rayon-style prelude: import the parallel-iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParMap, ParRangeIter};
}

/// Number of worker threads to use (available parallelism, min 1).
fn n_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (only `Range<usize>` is needed
/// by this workspace).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRangeIter;

    fn into_par_iter(self) -> ParRangeIter {
        ParRangeIter { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRangeIter {
    range: Range<usize>,
}

impl ParRangeIter {
    /// Map each index through `f` (executed concurrently, chunked by
    /// core count; output preserves index order).
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`ParRangeIter::map`]: a mapped parallel iterator
/// awaiting a terminal operation (`collect` or `sum`).
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    fn run<T>(self) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let len = self.range.len();
        let workers = n_threads().min(len.max(1));
        if workers <= 1 || len < 2 {
            return self.range.map(self.f).collect();
        }
        let start = self.range.start;
        let chunk = len.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = start + w * chunk;
                    let hi = (lo + chunk).min(start + len);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }

    /// Collect mapped values in index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromIterator<T>,
    {
        self.run().into_iter().collect()
    }

    /// Sum mapped values.
    pub fn sum<T, S>(self) -> S
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        S: std::iter::Sum<T>,
    {
        self.run().into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn sum_matches_serial() {
        let par: u64 = (0..1000).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(par, 499_500);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = (5..6).into_par_iter().map(|i| i).collect();
        assert_eq!(one, vec![5]);
    }
}
