//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly (poisoning is ignored — a
//! poisoned std mutex still hands back its data, matching parking_lot's
//! no-poisoning semantics).

#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly (never panics on
    /// poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
