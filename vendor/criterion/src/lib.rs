//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the three bench harnesses
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, [`BenchmarkId`], `Bencher::iter`,
//! the [`criterion_group!`]/[`criterion_main!`] macros) with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then
//! timed over `sample_size` samples, and the median ns/iter is printed
//! in a `cargo bench`-like format. No plotting, no statistics beyond
//! the median/mean — enough to compare kernels across PRs and to keep
//! `cargo bench --no-run` / `cargo bench` working offline.
//!
//! **Machine-readable output:** when the `CRITERION_JSON` environment
//! variable names a file, [`criterion_main!`] additionally writes every
//! completed benchmark as a JSON array of
//! `{"id": …, "mean_ns": …, "median_ns": …, "iters": …}` records, so
//! bench trajectories can be tracked across PRs without scraping the
//! text output.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark: id, mean/median ns per iteration, timed
/// iteration count.
#[derive(Clone, Debug)]
struct Record {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    iters: usize,
}

/// Registry of every benchmark completed in this process.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Serialize all completed benchmarks to `$CRITERION_JSON` (no-op when
/// the variable is unset). Called by [`criterion_main!`] after the last
/// group; safe to call directly from custom harnesses.
///
/// `cargo bench` runs each bench target as its own process, so an
/// existing summary at that path (recognized by our own layout) is
/// **merged into**, not truncated — one file collects every harness of
/// a bench invocation. Delete the file first for a fresh baseline.
///
/// # Panics
/// Panics if the file cannot be written.
pub fn write_json_summary() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let records = RECORDS.lock().expect("criterion registry poisoned");
    let mut json = String::from("[\n");
    // previous harnesses' records (we only ever parse our own output:
    // one "  { ... }[,]" line per record)
    if let Ok(existing) = std::fs::read_to_string(&path) {
        let old: Vec<&str> = existing
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .map(|l| l.trim_end().trim_end_matches(','))
            .collect();
        let n_old = old.len();
        for (i, line) in old.into_iter().enumerate() {
            json.push_str(line);
            json.push_str(if !records.is_empty() || i + 1 < n_old {
                ",\n"
            } else {
                "\n"
            });
        }
    }
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{ \"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"iters\": {} }}{comma}\n",
            r.id.replace('"', "'"),
            r.mean_ns,
            r.median_ns,
            r.iters
        ));
    }
    json.push_str("]\n");
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("criterion: create json directory");
        }
    }
    std::fs::write(&path, json).expect("criterion: write json summary");
    eprintln!("criterion: wrote {path}");
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up (also forces lazy initialization inside the routine)
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2].as_nanos()
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }
}

fn report(group: Option<&str>, id: &str, bencher: &mut Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = bencher.median_ns();
    if ns >= 10_000_000 {
        println!("bench: {full:<50} {:>12.3} ms/iter", ns as f64 / 1e6);
    } else if ns >= 10_000 {
        println!("bench: {full:<50} {:>12.3} µs/iter", ns as f64 / 1e3);
    } else {
        println!("bench: {full:<50} {ns:>12} ns/iter");
    }
    RECORDS
        .lock()
        .expect("criterion registry poisoned")
        .push(Record {
            id: full,
            mean_ns: bencher.mean_ns(),
            median_ns: ns as f64,
            iters: bencher.samples.len(),
        });
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Benchmark `routine` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Finish the group (reporting is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(None, id, &mut b);
        self
    }
}

/// Define a benchmark group function running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed benchmark groups, then writing the
/// machine-readable summary (see [`write_json_summary`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // one warm-up + five timed samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cg", 64).to_string(), "cg/64");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }

    #[test]
    fn json_merge_extends_existing_summary() {
        // simulate a previous harness's output being extended by a later
        // process (cargo bench runs each bench target separately)
        let dir = std::env::temp_dir().join("criterion_json_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.json");
        std::fs::write(
            &path,
            "[\n  { \"id\": \"old/one\", \"mean_ns\": 1.0, \"median_ns\": 1.0, \"iters\": 3 }\n]\n",
        )
        .unwrap();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("merge");
        group.sample_size(2);
        group.bench_function("new", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.finish();
        std::env::set_var("CRITERION_JSON", &path);
        write_json_summary();
        std::env::remove_var("CRITERION_JSON");
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("old/one"), "prior harness kept: {merged}");
        assert!(merged.contains("merge/new"), "new records added: {merged}");
        assert!(merged.trim_end().ends_with(']'), "valid array: {merged}");
        // every record line but the last must end with a comma
        let records: Vec<&str> = merged
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .collect();
        for (i, line) in records.iter().enumerate() {
            assert_eq!(i + 1 < records.len(), line.trim_end().ends_with(','));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn completed_benchmarks_are_registered() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json");
        group.sample_size(3);
        group.bench_function("registered", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
        let records = RECORDS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.id == "json/registered")
            .expect("benchmark must be registered");
        assert_eq!(r.iters, 3);
        assert!(r.mean_ns >= 0.0 && r.median_ns >= 0.0);
    }
}
