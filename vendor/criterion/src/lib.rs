//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the three bench harnesses
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, [`BenchmarkId`], `Bencher::iter`,
//! the [`criterion_group!`]/[`criterion_main!`] macros) with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then
//! timed over `sample_size` samples, and the median ns/iter is printed
//! in a `cargo bench`-like format. No plotting, no statistics beyond
//! the median — enough to compare kernels across PRs and to keep
//! `cargo bench --no-run` / `cargo bench` working offline.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up (also forces lazy initialization inside the routine)
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2].as_nanos()
    }
}

fn report(group: Option<&str>, id: &str, bencher: &mut Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = bencher.median_ns();
    if ns >= 10_000_000 {
        println!("bench: {full:<50} {:>12.3} ms/iter", ns as f64 / 1e6);
    } else if ns >= 10_000 {
        println!("bench: {full:<50} {:>12.3} µs/iter", ns as f64 / 1e3);
    } else {
        println!("bench: {full:<50} {ns:>12} ns/iter");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Benchmark `routine` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Finish the group (reporting is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(None, id, &mut b);
        self
    }
}

/// Define a benchmark group function running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // one warm-up + five timed samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cg", 64).to_string(), "cg/64");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
