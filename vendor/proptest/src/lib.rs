//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], range and
//! tuple [`Strategy`] values and [`collection::vec`]. Unlike the real
//! proptest there is no shrinking — a failing case reports its case
//! index and seed so it can be replayed via `PROPTEST_SEED`. The number
//! of cases per property defaults to 64 and can be raised with
//! `PROPTEST_CASES`.

#![deny(rustdoc::broken_intra_doc_links)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::ops::Range;

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError};
}

/// Failure raised by the `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                // wrapping: the span of e.g. i64::MIN..i64::MAX exceeds i64::MAX
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        self.start + (self.end - self.start) * rng.random::<f32>()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Length specification for [`collection::vec`]: a fixed size or a
/// half-open range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// Run `body` over `PROPTEST_CASES` (default 64) generated cases.
/// Deterministic per test name; `PROPTEST_SEED` replays a single case.
pub fn run_cases<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    if let Some(seed) = env_u64("PROPTEST_SEED") {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest `{test_name}` failed under PROPTEST_SEED={seed}: {e}");
        }
        return;
    }
    let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
    let base = fnv1a(test_name.as_bytes());
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{cases}: {e}\n\
                 replay with PROPTEST_SEED={seed}"
            );
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __proptest_rng); )*
                    let __proptest_out: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __proptest_out
                });
            }
        )*
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a replayable report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, "assertion failed: {:?} == {:?}", __a, __b);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a != __b, "assertion failed: {:?} != {:?}", __a, __b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -2f64..3.0,
            n in 1usize..10,
            v in prop::collection::vec(0u64..100, 2..5),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_nested_vecs(
            entries in prop::collection::vec((0usize..6, -5f64..5.0), 0..8),
            rows in prop::collection::vec(prop::collection::vec(-1f64..1.0, 3), 3),
        ) {
            prop_assert!(entries.len() < 8);
            prop_assert_eq!(rows.len(), 3);
            prop_assert!(rows.iter().all(|r| r.len() == 3));
        }
    }

    #[test]
    #[should_panic(expected = "replay with PROPTEST_SEED=")]
    fn failing_case_reports_seed() {
        crate::run_cases("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
