//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], range and
//! tuple [`Strategy`] values and [`collection::vec`]. Failing cases are
//! **shrunk**: integer and float strategies shrink toward the range
//! start, `Vec` strategies drop chunks/elements and shrink elements,
//! tuples shrink component-wise — a greedy descent over
//! [`Strategy::shrink`] candidates with a bounded budget, reporting the
//! minimized case alongside the original seed so it can be replayed via
//! `PROPTEST_SEED`. The number of cases per property defaults to 64 and
//! can be raised with `PROPTEST_CASES`.

#![deny(rustdoc::broken_intra_doc_links)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError};
}

/// Failure raised by the `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The default (no candidates) disables shrinking for the strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let v = *value;
                if v > self.start {
                    // toward the range start: the minimum, then halving
                    out.push(self.start);
                    let mid = self.start + (v - self.start) / 2;
                    if mid != self.start && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != self.start && v - 1 != mid {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                // wrapping: the span of e.g. i64::MIN..i64::MAX exceeds i64::MAX
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let v = *value;
                // shrink toward zero if the range contains it, else
                // toward the range start
                let origin: $t = if self.start <= 0 && 0 < self.end { 0 } else { self.start };
                if v != origin {
                    out.push(origin);
                    let mid = origin + (v - origin) / 2;
                    if mid != origin && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

signed_range_strategy!(i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.start + (self.end - self.start) * rng.random::<$t>()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let v = *value;
                // shrink toward zero if in range, else the range start
                let origin: $t = if self.start <= 0.0 && 0.0 < self.end { 0.0 } else { self.start };
                if v != origin {
                    out.push(origin);
                    let mid = origin + (v - origin) / 2.0;
                    if mid != origin && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // component-wise: shrink one slot, keep the others fixed
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Length specification for [`collection::vec`]: a fixed size or a
/// half-open range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let n = value.len();
            // structural shrinks first: drop the back/front half, then
            // single elements — as long as the length stays admissible
            if n > self.size.lo {
                let half = (n - self.size.lo).div_ceil(2);
                out.push(value[..n - half].to_vec());
                out.push(value[half..].to_vec());
                if n >= 1 {
                    out.push(value[1..].to_vec());
                    out.push(value[..n - 1].to_vec());
                }
            }
            // then element-wise shrinks (every candidate per position, so
            // the greedy descent can reach boundary values)
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out.retain(|c| c.len() >= self.size.lo && c.len() < self.size.hi);
            out.dedup_by(|a, b| a.len() == b.len() && a.iter().zip(b.iter()).count() == 0);
            out
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// Total body executions the greedy shrink descent may spend per failure.
const SHRINK_BUDGET: usize = 512;

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, until no candidate fails or the budget runs out. Returns the
/// minimized value and its failure.
fn shrink_failure<S: Strategy, F>(
    strategy: &S,
    mut value: S::Value,
    mut error: TestCaseError,
    body: &mut F,
) -> (S::Value, TestCaseError, usize)
where
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut spent = 0usize;
    'outer: loop {
        for cand in strategy.shrink(&value) {
            if spent >= SHRINK_BUDGET {
                break 'outer;
            }
            spent += 1;
            if let Err(e) = body(cand.clone()) {
                value = cand;
                error = e;
                continue 'outer;
            }
        }
        break;
    }
    (value, error, spent)
}

/// Run `body` over `PROPTEST_CASES` (default 64) cases generated from
/// `strategy`; on failure, shrink to a minimal failing case and panic
/// with both the minimized input and the replay seed. Deterministic per
/// test name; `PROPTEST_SEED` replays a single case.
pub fn run_cases_with<S, F>(test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: Clone + Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut run_seed = |seed: u64, case: Option<(u64, u64)>| {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        if let Err(e) = body(value.clone()) {
            let (min_value, min_error, spent) = shrink_failure(strategy, value, e, &mut body);
            match case {
                Some((case, cases)) => panic!(
                    "proptest `{test_name}` failed at case {case}/{cases}: {min_error}\n\
                     minimized input (after {spent} shrink steps): {min_value:?}\n\
                     replay with PROPTEST_SEED={seed}"
                ),
                None => panic!(
                    "proptest `{test_name}` failed under PROPTEST_SEED={seed}: {min_error}\n\
                     minimized input (after {spent} shrink steps): {min_value:?}"
                ),
            }
        }
    };
    if let Some(seed) = env_u64("PROPTEST_SEED") {
        run_seed(seed, None);
        return;
    }
    let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
    let base = fnv1a(test_name.as_bytes());
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        run_seed(seed, Some((case, cases)));
    }
}

/// Back-compat driver for bodies that draw straight from an RNG (no
/// strategy, hence no shrinking).
pub fn run_cases<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    if let Some(seed) = env_u64("PROPTEST_SEED") {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest `{test_name}` failed under PROPTEST_SEED={seed}: {e}");
        }
        return;
    }
    let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
    let base = fnv1a(test_name.as_bytes());
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{cases}: {e}\n\
                 replay with PROPTEST_SEED={seed}"
            );
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs, with
/// failing cases minimized via [`Strategy::shrink`].
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_strategy = ($( ($strat), )*);
                $crate::run_cases_with(
                    stringify!($name),
                    &__proptest_strategy,
                    |($($arg,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        (|| { $body ::std::result::Result::Ok(()) })()
                    },
                );
            }
        )*
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a replayable report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, "assertion failed: {:?} == {:?}", __a, __b);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a != __b, "assertion failed: {:?} != {:?}", __a, __b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -2f64..3.0,
            n in 1usize..10,
            v in prop::collection::vec(0u64..100, 2..5),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_nested_vecs(
            entries in prop::collection::vec((0usize..6, -5f64..5.0), 0..8),
            rows in prop::collection::vec(prop::collection::vec(-1f64..1.0, 3), 3),
        ) {
            prop_assert!(entries.len() < 8);
            prop_assert_eq!(rows.len(), 3);
            prop_assert!(rows.iter().all(|r| r.len() == 3));
        }
    }

    #[test]
    #[should_panic(expected = "replay with PROPTEST_SEED=")]
    fn failing_case_reports_seed() {
        crate::run_cases("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn integers_shrink_to_range_start() {
        // property "n < 14" fails for n in 14..100; the minimal failing
        // value is exactly 14
        let strategy = (5usize..100,);
        let mut min_seen = usize::MAX;
        let mut failed = false;
        for seed in 0..64u64 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let v = crate::Strategy::generate(&strategy, &mut rng);
            let mut body = |(n,): (usize,)| -> Result<(), crate::TestCaseError> {
                crate::prop_assert!(n < 14, "too big: {n}");
                Ok(())
            };
            if let Err(e) = body(v) {
                failed = true;
                let (minimized, _, _) = crate::shrink_failure(&strategy, v, e, &mut body);
                min_seen = min_seen.min(minimized.0);
            }
        }
        assert!(failed, "some case must exceed 14");
        assert_eq!(min_seen, 14, "shrinking must reach the boundary");
    }

    #[test]
    fn vectors_shrink_structurally_and_elementwise() {
        // property "no element >= 50" — minimal failing case is a single
        // element, itself shrunk to the boundary
        let strategy = crate::collection::vec(0u64..100, 1..20);
        let mut best_len = usize::MAX;
        let mut best_max = u64::MAX;
        let mut failed = false;
        for seed in 0..64u64 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let v = crate::Strategy::generate(&strategy, &mut rng);
            let mut body = |v: Vec<u64>| -> Result<(), crate::TestCaseError> {
                crate::prop_assert!(v.iter().all(|&e| e < 50), "big element");
                Ok(())
            };
            if let Err(e) = body(v.clone()) {
                failed = true;
                let (minimized, _, _) = crate::shrink_failure(&strategy, v, e, &mut body);
                if minimized.len() < best_len {
                    best_len = minimized.len();
                    best_max = minimized.iter().copied().max().unwrap_or(0);
                }
            }
        }
        assert!(failed);
        assert_eq!(best_len, 1, "a single offending element must remain");
        assert_eq!(best_max, 50, "the element must shrink to the boundary");
    }

    #[test]
    #[should_panic(expected = "minimized input")]
    fn macro_reports_minimized_input() {
        proptest! {
            fn inner(n in 0usize..1000) {
                prop_assert!(n < 10, "n = {n}");
            }
        }
        inner();
    }
}
