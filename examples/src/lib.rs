//! Host package for the runnable examples at the repository's
//! `examples/` root (`quickstart`, `poisson_inversion`,
//! `tsunami_source_inversion`, `custom_model`). Run one with e.g.
//! `cargo run --release -p uq-examples --example quickstart`.

#![deny(rustdoc::broken_intra_doc_links)]
