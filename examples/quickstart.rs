//! Quickstart: multilevel MCMC on an analytic two-level hierarchy in
//! under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The hierarchy targets `N(0.8, 0.6²)` on the coarse level and
//! `N(1.0, 0.5²)` on the fine level; the telescoping estimator combines a
//! cheap coarse chain with a coupled fine chain and recovers the fine
//! mean.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_mcmc::problem::GaussianTarget;
use uq_mcmc::{GaussianRandomWalk, Proposal, SamplingProblem};
use uq_mlmcmc::{run_sequential, LevelFactory, MlmcmcConfig};

/// A model hierarchy is one implementation of [`LevelFactory`]:
/// per-level sampling problems, proposals, subsampling rates and
/// starting points.
struct TwoLevelGaussian;

impl LevelFactory for TwoLevelGaussian {
    fn n_levels(&self) -> usize {
        2
    }

    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        let (mean, sd) = [(0.8, 0.6), (1.0, 0.5)][level];
        Box::new(GaussianTarget::new(vec![mean], sd))
    }

    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        // only the coarsest level needs a proposal when dimensions match
        Box::new(GaussianRandomWalk::new(0.7))
    }

    fn subsampling_rate(&self, level: usize) -> usize {
        // advance the coarse chain 5 steps between fine proposals
        if level == 0 {
            5
        } else {
            0
        }
    }

    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

fn main() {
    let config = MlmcmcConfig::new(vec![20_000, 2_000]).with_burn_in(vec![500, 100]);
    let mut rng = StdRng::seed_from_u64(42);
    let report = run_sequential(&TwoLevelGaussian, &config, &mut rng);

    println!(
        "level 0: E[Q_0]        = {:+.4}",
        report.levels[0].mean_correction[0]
    );
    println!(
        "level 1: E[Q_1 - Q_0]  = {:+.4}",
        report.levels[1].mean_correction[0]
    );
    println!(
        "telescoping estimate   = {:+.4}  (true fine mean: +1.0000)",
        report.expectation()[0]
    );
    println!(
        "variance reduction: V[Q_0] = {:.4}, V[Q_1 - Q_0] = {:.4}",
        report.levels[0].var_correction[0], report.levels[1].var_correction[0]
    );
    println!(
        "fine-level acceptance {:.2}, IACT {:.2} (coarse proposals are nearly independent)",
        report.levels[1].acceptance_rate, report.levels[1].iact
    );
    // tolerance covers both Monte Carlo noise and the finite-subsampling
    // pairing bias of the sequential driver's default proposal pairing
    // (~0.04 here): the served coarse stream has marginal π_fine·K^ρ
    // rather than π_coarse for finite ρ. Opting into the rewind ledger's
    // pairing (`MlmcmcConfig::with_pairing(PairingMode::Ledger)`) removes
    // the bias at the price of higher correction variance — see the
    // "estimator pairing" discussion in DESIGN.md §5
    assert!((report.expectation()[0] - 1.0).abs() < 0.1);
}
