//! The paper's Poisson subsurface-flow inversion (Section 3.1) at a
//! CI-friendly scale: infer a log-normal diffusion field from 36 noisy
//! point observations of the PDE solution, using a two-level MLMCMC
//! hierarchy.
//!
//! ```sh
//! cargo run --release --example poisson_inversion
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_fem::problem::PoissonFactory;
use uq_fem::PoissonHierarchy;
use uq_mlmcmc::{run_sequential, MlmcmcConfig};

fn main() {
    // 24 KL modes, mesh widths 1/16 and 1/32 (the paper runs m = 113 and
    // meshes up to 1/256 — see the table3_poisson_multilevel experiment)
    let hierarchy = PoissonHierarchy::new(24, vec![16, 32], 20210730);
    let true_qoi = hierarchy.true_qoi();
    println!(
        "hierarchy: {} levels, parameter dimension {}, {} observations",
        hierarchy.n_levels(),
        hierarchy.dim(),
        hierarchy.data().len()
    );

    let factory = PoissonFactory::new(hierarchy, vec![8]);
    let config = MlmcmcConfig::new(vec![1_500, 150]).with_burn_in(vec![300, 50]);
    let mut rng = StdRng::seed_from_u64(1);
    let report = run_sequential(&factory, &config, &mut rng);

    // the QOI is the diffusion field kappa on a 33x33 grid; compare the
    // posterior mean field against the data-generating truth
    let estimate = report.expectation();
    let mut err2 = 0.0;
    let mut norm2 = 0.0;
    for (t, e) in true_qoi.iter().zip(&estimate) {
        err2 += (t - e) * (t - e);
        norm2 += t * t;
    }
    let rel_err = (err2 / norm2).sqrt();
    println!("posterior-mean field relative L2 error vs truth: {rel_err:.3}");
    for lvl in &report.levels {
        println!(
            "level {}: {} samples, acceptance {:.2}, {} model evals at {:.2} ms each",
            lvl.level, lvl.n_samples, lvl.acceptance_rate, lvl.evaluations, lvl.mean_eval_ms
        );
    }
    // correction variance must be far below the level-0 variance — the
    // multilevel gain
    let center = 16 * 33 + 16;
    println!(
        "V[Q_0] = {:.3e}  vs  V[Q_1 - Q_0] = {:.3e} (representative component)",
        report.levels[0].var_correction[center], report.levels[1].var_correction[center]
    );
    assert!(rel_err < 1.0, "estimate should carry signal, got {rel_err}");
}
