//! The paper's headline application (Sections 3.2 / 5.2) at example
//! scale: infer the location of the Tohoku tsunami's initial displacement
//! from two buoys' max-wave-height and arrival-time readings, with a
//! three-level shallow-water model hierarchy (depth-averaged → smoothed
//! bathymetry + limiter → full bathymetry + limiter).
//!
//! ```sh
//! cargo run --release --example tsunami_source_inversion
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_mlmcmc::{run_sequential, MlmcmcConfig};
use uq_swe::tohoku::{Resolution, TsunamiHierarchy, TsunamiModel};

fn main() {
    // small grids so the example finishes in ~a minute; the full-scale
    // run is the table4_tsunami_multilevel experiment
    let resolution = Resolution::Custom([9, 15, 25]);
    let hierarchy = TsunamiHierarchy::new(resolution);
    let data = hierarchy.data();
    println!(
        "synthetic buoy data (from the finest model at the reference source):\n  \
         hmax = ({:.3}, {:.3}) m, arrival = ({:.1}, {:.1}) min",
        data[0], data[1], data[2], data[3]
    );

    let config = MlmcmcConfig::new(vec![250, 120, 50])
        .with_burn_in(vec![40, 15, 8])
        .recording();
    let mut rng = StdRng::seed_from_u64(3);
    let report = run_sequential(&hierarchy, &config, &mut rng);

    let est = report.expectation();
    println!(
        "\nposterior source-location estimate: ({:+.1}, {:+.1}) km from the reference (truth: (0, 0))",
        est[0], est[1]
    );
    for lvl in &report.levels {
        println!(
            "level {}: {} samples, acceptance {:.2}, mean eval {:.0} ms, correction E = ({:+.2}, {:+.2})",
            lvl.level,
            lvl.n_samples,
            lvl.acceptance_rate,
            lvl.mean_eval_ms,
            lvl.mean_correction[0],
            lvl.mean_correction[1]
        );
    }
    // sanity: the source is not placed on land
    assert!(TsunamiModel::admissible(&est));
}
