//! Coupling your own forward model — the paper's model-agnosticity story.
//!
//! This example builds a small nonlinear ODE model (logistic growth with
//! an uncertain rate and capacity, observed at a few times), defines a
//! two-level hierarchy by time-step refinement, and runs both the
//! sequential estimator and the **parallel scheduler** (root / phonebook /
//! collectors / controllers on threads) on it.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::{GaussianRandomWalk, Proposal, SamplingProblem};
use uq_mlmcmc::LevelFactory;
use uq_parallel::{run_parallel, ParallelConfig, Tracer};

/// Forward model: logistic growth `u' = r u (1 - u/K)`, `u(0) = 0.1`,
/// integrated with explicit Euler at the level's time step and observed
/// at t = 1, 2, 3.
fn forward(theta: &[f64], dt: f64) -> Vec<f64> {
    let (r, k) = (theta[0], theta[1]);
    let mut u: f64 = 0.1;
    let mut t = 0.0;
    let mut obs = Vec::with_capacity(3);
    let mut next_obs = 1.0;
    while obs.len() < 3 {
        u += dt * r * u * (1.0 - u / k);
        t += dt;
        if t + 1e-12 >= next_obs {
            obs.push(u);
            next_obs += 1.0;
        }
    }
    obs
}

/// Bayesian problem: Gaussian likelihood around synthetic data, flat-ish
/// Gaussian prior, rate/capacity must stay positive.
struct LogisticProblem {
    dt: f64,
    data: Vec<f64>,
}

impl SamplingProblem for LogisticProblem {
    fn dim(&self) -> usize {
        2
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        if theta[0] <= 0.0 || theta[1] <= 0.0 {
            return f64::NEG_INFINITY; // unphysical
        }
        let prediction = forward(theta, self.dt);
        let log_prior = isotropic_gaussian_logpdf(theta, &[1.0, 1.0], 2.0);
        log_prior + isotropic_gaussian_logpdf(&prediction, &self.data, 0.05)
    }
}

/// The hierarchy: coarse level integrates with dt = 0.2, fine with 0.01.
struct LogisticHierarchy {
    data: Vec<f64>,
}

impl LogisticHierarchy {
    fn new() -> Self {
        // synthetic truth: r = 1.3, K = 1.8, data from the fine model
        Self {
            data: forward(&[1.3, 1.8], 0.01),
        }
    }
}

impl LevelFactory for LogisticHierarchy {
    fn n_levels(&self) -> usize {
        2
    }

    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(LogisticProblem {
            dt: [0.2, 0.01][level],
            data: self.data.clone(),
        })
    }

    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.08))
    }

    fn subsampling_rate(&self, level: usize) -> usize {
        if level == 0 {
            6
        } else {
            0
        }
    }

    fn starting_point(&self, _level: usize) -> Vec<f64> {
        // start near the coarse MAP (in practice: a cheap pilot
        // optimization) so burn-in is short. Since PR 4 the phonebook
        // serves through the per-requester rewind ledger — proposals
        // walk from each chain's own anchor, so even a start far outside
        // the posterior bulk mixes at the normal coupled acceptance rate
        // (tests/ledger_exactness.rs pins this on a tighter ridge)
        vec![1.3, 1.8]
    }
}

fn main() {
    let hierarchy = LogisticHierarchy::new();

    // --- sequential reference ---
    let config = uq_mlmcmc::MlmcmcConfig::new(vec![8_000, 1_500]).with_burn_in(vec![500, 100]);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let seq = uq_mlmcmc::run_sequential(&hierarchy, &config, &mut rng);
    let est = seq.expectation();
    println!(
        "sequential estimate:  r = {:.3}, K = {:.3}  (truth: 1.300, 1.800)",
        est[0], est[1]
    );

    // --- the parallel scheduler on the same factory, unchanged ---
    let mut pconfig = ParallelConfig::new(vec![8_000, 1_500], vec![2, 2]);
    pconfig.burn_in = vec![500, 100];
    let par = run_parallel(&hierarchy, &pconfig, &Tracer::disabled());
    let pest = par.expectation();
    println!(
        "parallel estimate:    r = {:.3}, K = {:.3}  ({} ranks, {:.2} s, {} model evals)",
        pest[0],
        pest[1],
        par.n_ranks,
        par.elapsed,
        par.total_evaluations()
    );
    assert!((est[0] - pest[0]).abs() < 0.2 && (est[1] - pest[1]).abs() < 0.2);
}
