//! Cross-crate consistency: the KL expansion against the circulant
//! embedding sampler, and FEM convergence under the KL field.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_fem::PoissonModel;
use uq_linalg::prob::standard_normal_vec;
use uq_randfield::circulant::Circulant2d;
use uq_randfield::KlField2d;

#[test]
fn kl_and_circulant_sample_variances_agree() {
    // both samplers target the same separable exponential covariance;
    // their pointwise variances must agree (KL slightly below 1 due to
    // truncation)
    let corr_len = 0.15;
    let field = KlField2d::new(corr_len, 1.0, 200);
    let kl_var = field.truncated_variance(0.5, 0.5);
    let circ = Circulant2d::new(17, 17, 1.0 / 16.0, 1.0 / 16.0, move |dx, dy| {
        (-(dx + dy) / corr_len).exp()
    })
    .expect("embedding exists");
    let mut rng = StdRng::seed_from_u64(1);
    let n_rep = 4000;
    let center = 8 * 17 + 8;
    let mut acc = 0.0;
    for _ in 0..n_rep {
        let s = circ.sample(&mut rng);
        acc += s[center] * s[center];
    }
    let circ_var = acc / n_rep as f64;
    assert!(kl_var <= 1.0 + 1e-9);
    assert!(
        (circ_var - 1.0).abs() < 0.08,
        "circulant variance {circ_var} should be ~1"
    );
    assert!(
        kl_var > 0.85,
        "200 KL modes should capture most of the variance, got {kl_var}"
    );
}

#[test]
fn fem_observation_converges_under_refinement() {
    // fixed theta: |F_h - F_{h/2}| must shrink as h -> 0 (the property the
    // multilevel hierarchy relies on)
    let field = KlField2d::new(0.15, 1.0, 24);
    let mut rng = StdRng::seed_from_u64(2);
    let theta = standard_normal_vec(&mut rng, 24);
    let mut obs = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let mut model = PoissonModel::new(n, &field);
        obs.push(model.forward(&theta));
    }
    let d1 = uq_linalg::vector::max_abs_diff(&obs[0], &obs[1]);
    let d2 = uq_linalg::vector::max_abs_diff(&obs[1], &obs[2]);
    let d3 = uq_linalg::vector::max_abs_diff(&obs[2], &obs[3]);
    assert!(d2 < d1, "refinement must contract: {d1} -> {d2}");
    assert!(d3 < d2, "refinement must contract: {d2} -> {d3}");
}

#[test]
fn qoi_field_is_log_normal_consistent() {
    // QOI = exp(Phi theta): for theta ~ N(0, I) the log-QOI mean tends to
    // zero and its variance to the truncated field variance
    let field = KlField2d::new(0.15, 1.0, 64);
    let model = PoissonModel::new(8, &field);
    let mut rng = StdRng::seed_from_u64(3);
    let n_rep = 2000;
    let center = 16 * 33 + 16;
    let mut acc = 0.0;
    let mut acc2 = 0.0;
    for _ in 0..n_rep {
        let theta = standard_normal_vec(&mut rng, 64);
        let q = model.qoi(&theta)[center].ln();
        acc += q;
        acc2 += q * q;
    }
    let mean = acc / n_rep as f64;
    let var = acc2 / n_rep as f64 - mean * mean;
    let expect_var = field.truncated_variance(0.5, 0.5);
    assert!(mean.abs() < 0.08, "log-QOI mean {mean}");
    assert!(
        (var - expect_var).abs() < 0.1,
        "log-QOI variance {var} vs truncated field variance {expect_var}"
    );
}
