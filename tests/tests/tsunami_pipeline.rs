//! Integration of the tsunami stack: bathymetry → SWE solver → gauges →
//! Bayesian problem → multilevel run, at tiny grid sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_mlmcmc::{run_sequential, LevelFactory, MlmcmcConfig};
use uq_swe::tohoku::{Resolution, TsunamiHierarchy, TsunamiModel};

const TINY: Resolution = Resolution::Custom([7, 11, 15]);

#[test]
fn two_level_tsunami_inversion_runs() {
    let hierarchy = TsunamiHierarchy::new(TINY);
    let config = MlmcmcConfig::new(vec![60, 25]).with_burn_in(vec![10, 4]);
    let mut rng = StdRng::seed_from_u64(5);
    let report = run_sequential(&hierarchy, &config, &mut rng);
    let est = report.expectation();
    assert_eq!(est.len(), 2);
    assert!(est[0].is_finite() && est[1].is_finite());
    // the posterior keeps the source inside the admissible box
    assert!(
        est[0].abs() < 200.0 && est[1].abs() < 200.0,
        "estimate {est:?}"
    );
}

#[test]
fn tsunami_recording_produces_fig14_pairs() {
    let hierarchy = TsunamiHierarchy::new(TINY);
    let config = MlmcmcConfig::new(vec![40, 20])
        .with_burn_in(vec![5, 2])
        .recording();
    let mut rng = StdRng::seed_from_u64(7);
    let report = run_sequential(&hierarchy, &config, &mut rng);
    assert_eq!(report.levels[1].correction_pairs.len(), 20);
    for (coarse, fine) in &report.levels[1].correction_pairs {
        assert_eq!(coarse.len(), 2);
        assert_eq!(fine.len(), 2);
    }
}

#[test]
fn deeper_levels_reproduce_data_better() {
    // at the data-generating parameters, the finest model matches the
    // data exactly; coarser models deviate increasingly (the model-error
    // ladder the hierarchy exploits)
    let hierarchy = TsunamiHierarchy::new(TINY);
    let data = hierarchy.data().to_vec();
    let misfit = |level: usize| -> f64 {
        let mut model = TsunamiModel::new(level, TINY);
        let obs = model.forward(&[0.0, 0.0]);
        obs.iter()
            .zip(&data)
            .map(|(o, d)| (o - d) * (o - d))
            .sum::<f64>()
            .sqrt()
    };
    let m2 = misfit(2);
    let m0 = misfit(0);
    assert!(
        m2 < 1e-9,
        "finest level reproduces its own data, misfit {m2}"
    );
    assert!(m0 > m2, "coarse model must carry model error");
}

#[test]
fn factory_subsampling_rates_match_paper() {
    let hierarchy = TsunamiHierarchy::new(TINY);
    assert_eq!(hierarchy.subsampling_rate(0), 25);
    assert_eq!(hierarchy.subsampling_rate(1), 5);
}
