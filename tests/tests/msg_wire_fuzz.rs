//! Property fuzz for the PR 9 net wire codec: every [`Msg`] variant
//! must round-trip bit-identically through the shared `uq_core` wire
//! primitives, and torn, bit-flipped or padded frames must be rejected
//! with a clear error — never mis-decoded into a plausible message.
//!
//! Round-trips are asserted by re-encode byte equality (`Msg` has no
//! `PartialEq`, and byte equality is the property the transport
//! actually relies on: the driver's digest checks compare runs whose
//! every message crossed this codec). NaN payload bit-exactness gets a
//! deterministic test, mirroring `snapshot_roundtrip_fuzz.rs`.

use proptest::prelude::*;
use uq_mlmcmc::coupled::{ChainState, CoarseSample};
use uq_mlmcmc::ledger::{LedgerLease, LedgerState, LedgerStats, ServeOutcome, SessionState};
use uq_mlmcmc::store::{ChainCkpt, Codec, CollectorCkpt, Dec, Enc};
use uq_parallel::roles::PhonebookStats;
use uq_parallel::scheduler::{CollectorData, Msg};
use uq_parallel::{decode_frame, encode_frame, Frame, PROTOCOL_VERSION};

// ---------------------------------------------------------------------
// builders: one Msg per tag from flat drawn primitives
// ---------------------------------------------------------------------

fn sample(theta: &[f64], log_density: f64, depth: u8) -> CoarseSample {
    CoarseSample {
        theta: theta.to_vec(),
        log_density,
        qoi: theta.iter().map(|t| t * 0.5).collect(),
        sub_anchor: (depth > 0).then(|| Box::new(sample(theta, log_density - 1.0, depth - 1))),
        mate: (depth > 1).then(|| Box::new(sample(theta, log_density + 1.0, 0))),
    }
}

fn chain_ckpt(rank: usize, level: usize, theta: &[f64], seed: u64) -> ChainCkpt {
    ChainCkpt {
        rank,
        level,
        burnin_left: rank % 7,
        producing: seed.is_multiple_of(2),
        done_levels: vec![seed.is_multiple_of(3), seed.is_multiple_of(5)],
        shard_rr: rank % 3,
        rng: [seed, seed ^ 1, seed ^ 2, seed ^ 3],
        chain: ChainState {
            steps: rank + 11,
            accepted: rank,
            theta: theta.to_vec(),
            log_density: -1.25,
            qoi: theta.to_vec(),
            anchor: Some(sample(theta, -0.5, 1)),
            last_coarse: None,
            last_pairing: Some(sample(theta, -2.0, 0)),
            source: None,
        },
    }
}

fn ledger_state(theta: &[f64], seed: u64) -> LedgerState {
    LedgerState {
        sessions: vec![SessionState {
            requester: 4,
            level: 0,
            seed,
            serves: seed % 97,
            pairing: Some(sample(theta, -0.75, 1)),
            next_anchor: None,
            spec_inflight: seed.is_multiple_of(2).then_some(seed % 13),
            spec: None,
            spec_backoff: (seed % 5) as u32,
            spec_cooldown: (seed % 4) as u32,
            real_inflight: seed.is_multiple_of(3),
        }],
        generations: vec![(4, 0, seed % 3)],
        candidates: vec![(0, vec![5, 6])],
        stats: LedgerStats {
            sessions: 1,
            serves: (seed % 97) as usize,
            diverged: (seed % 7) as usize,
            spec_launched: (seed % 11) as usize,
            spec_hits: (seed % 5) as usize,
            spec_misses: (seed % 3) as usize,
        },
    }
}

/// Build the `tag`-th `Msg` variant (declaration order) from flat
/// primitives, exercising every field of its payload.
fn msg(tag: u8, a: usize, b: usize, seed: u64, flag: bool, theta: &[f64], x: f64) -> Msg {
    match tag {
        0 => Msg::CoarseRequest {
            level: a,
            reply_to: b,
            anchor: Box::new(sample(theta, x, 2)),
        },
        1 => Msg::Serve {
            reply_to: b,
            lease: Box::new(LedgerLease {
                session_seed: seed,
                serves: seed % 101,
                pairing: flag.then(|| sample(theta, x - 1.0, 1)),
                anchor: sample(theta, x, 0),
            }),
            speculative: flag,
        },
        2 => Msg::CoarseSample {
            level: a,
            sample: Box::new(sample(theta, x, 2)),
        },
        3 => Msg::ServeDone {
            requester: a,
            level: b,
            session: seed,
            serves: seed % 103,
            outcome: Box::new(ServeOutcome {
                proposal: sample(theta, x, 1),
                pairing: sample(theta, x + 0.5, 0),
                diverged: flag,
            }),
            speculative: !flag,
        },
        4 => Msg::Poison,
        5 => Msg::SampleReady { level: a },
        6 => Msg::Correction {
            level: a,
            y: theta.to_vec(),
            theta: theta.to_vec(),
            fine_qoi: vec![x],
            coarse_qoi: flag.then(|| vec![x - 0.25]),
        },
        7 => Msg::LevelDone { level: a },
        8 => Msg::StopProducing { level: a },
        9 => Msg::Reassign { level: a },
        10 => Msg::Shutdown,
        11 => Msg::PhonebookDown,
        12 => Msg::PhonebookReport(Box::new(PhonebookStats {
            wakeups: a,
            messages: a + b,
            max_batch: b,
            routed: a / 2,
            reassignments: b / 3,
            ledger: LedgerStats {
                sessions: a,
                serves: b,
                diverged: a % 7,
                spec_launched: b % 5,
                spec_hits: a % 3,
                spec_misses: b % 2,
            },
        })),
        13 => Msg::CollectorReport(Box::new(CollectorData {
            level: a,
            n_samples: b,
            mean: vec![x],
            variance: vec![x * x],
            theta_samples: vec![theta.to_vec(), theta.to_vec()],
            correction_pairs: vec![(theta.to_vec(), vec![x])],
        })),
        14 => Msg::ControllerReport {
            evals: vec![a, b],
            eval_secs: vec![x, x / 2.0],
        },
        15 => Msg::CheckpointTick,
        16 => Msg::Checkpoint,
        17 => Msg::CheckpointFlush,
        18 => Msg::ControllerCkpt(Box::new(chain_ckpt(a, b % 2, theta, seed))),
        19 => Msg::CollectorCkpt(Box::new(CollectorCkpt {
            level: a,
            shard: b,
            count: a + b,
            moments: flag.then(|| vec![(a, x, x * 2.0)]),
            theta_samples: vec![theta.to_vec()],
            correction_pairs: vec![],
        })),
        20 => Msg::LedgerCkpt(Box::new(ledger_state(theta, seed))),
        21 => Msg::CheckpointDone,
        22 => Msg::Retire,
        _ => unreachable!("tag out of range"),
    }
}

fn encode_msg(m: &Msg) -> Vec<u8> {
    let mut enc = Enc::new();
    m.encode(&mut enc);
    enc.into_bytes()
}

/// decode∘encode identity, asserted as re-encode byte equality with no
/// bytes left over.
fn assert_roundtrip(m: &Msg) {
    let bytes = encode_msg(m);
    let mut dec = Dec::new(&bytes);
    let decoded = Msg::decode(&mut dec).expect("valid Msg bytes must decode");
    assert_eq!(dec.remaining(), 0, "decode must consume every byte");
    assert_eq!(
        encode_msg(&decoded),
        bytes,
        "re-encode must reproduce the exact bytes"
    );
}

proptest! {
    #[test]
    fn every_msg_variant_roundtrips(
        tag in 0u8..23,
        a in 0usize..1000,
        seed in 0u64..u64::MAX,
        theta in prop::collection::vec(-1e6f64..1e6, 1..4),
    ) {
        // secondary draws derived from the seed (the strategy tuple
        // caps at four slots)
        let b = (seed % 1000) as usize;
        let flag = seed.is_multiple_of(2);
        let x = (seed % 2_000_001) as f64 / 1000.0 - 1000.0;
        assert_roundtrip(&msg(tag, a, b, seed, flag, &theta, x));
    }

    #[test]
    fn framed_msgs_roundtrip(
        tag in 0u8..23,
        a in 0usize..1000,
        seed in 0u64..u64::MAX,
        theta in prop::collection::vec(-1e6f64..1e6, 1..3),
    ) {
        let m = msg(tag, a, a / 2, seed, seed.is_multiple_of(2), &theta, 0.5);
        let frame = Frame::Data { to: a, from: a / 2, msg: m };
        let bytes = encode_frame(&frame);
        match decode_frame(&bytes).expect("valid frame must decode") {
            Frame::Data { to, from, msg } => {
                prop_assert_eq!(to, a);
                prop_assert_eq!(from, a / 2);
                let inner = Frame::Data { to, from, msg };
                prop_assert_eq!(encode_frame(&inner), bytes);
            }
            f => prop_assert!(false, "wrong frame decoded: {:?}", f),
        }
    }

    #[test]
    fn truncated_frames_are_rejected(
        tag in 0u8..23,
        seed in 0u64..u64::MAX,
        cut in 0usize..100_000,
    ) {
        let m = msg(tag, 3, 7, seed, true, &[0.5, -0.25], 1.5);
        let bytes = encode_frame(&Frame::Data { to: 9, from: 5, msg: m });
        let cut = cut % bytes.len(); // strict prefix
        prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {} must fail", cut);
    }

    #[test]
    fn bit_flipped_frames_are_rejected(
        tag in 0u8..23,
        seed in 0u64..u64::MAX,
        pos in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let m = msg(tag, 3, 7, seed, false, &[0.5, -0.25], 1.5);
        let mut bytes = encode_frame(&Frame::Data { to: 9, from: 5, msg: m });
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_frame(&bytes).is_err(),
            "flipping bit {} of byte {} must fail", bit, pos
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(
        tag in 0u8..23,
        seed in 0u64..u64::MAX,
        pad in 1usize..64,
    ) {
        let m = msg(tag, 3, 7, seed, true, &[0.5], 1.5);
        let mut bytes = encode_frame(&Frame::Data { to: 9, from: 5, msg: m });
        bytes.extend(std::iter::repeat_n(0xABu8, pad));
        prop_assert!(decode_frame(&bytes).is_err(), "{} padded bytes must fail", pad);
    }
}

/// NaN payloads must survive bit-exactly (`f64::to_bits` encoding): a
/// correction carrying NaN/∞ components re-encodes to identical bytes.
#[test]
fn nan_payloads_roundtrip_bit_exactly() {
    let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
    let m = Msg::Correction {
        level: 1,
        y: vec![weird, f64::NEG_INFINITY],
        theta: vec![f64::NAN],
        fine_qoi: vec![-0.0],
        coarse_qoi: Some(vec![f64::INFINITY]),
    };
    let bytes = encode_msg(&m);
    let decoded = Msg::decode(&mut Dec::new(&bytes)).expect("decode");
    assert_eq!(encode_msg(&decoded), bytes);
    match decoded {
        Msg::Correction { y, theta, .. } => {
            assert_eq!(y[0].to_bits(), weird.to_bits());
            assert_eq!(theta[0].to_bits(), f64::NAN.to_bits());
        }
        _ => panic!("wrong variant"),
    }
}

/// A frame whose payload claims an absurd length is refused before any
/// allocation of that size.
#[test]
fn oversized_length_claims_are_rejected() {
    let mut bytes = encode_frame(&Frame::Ready);
    bytes[12..20].copy_from_slice(&(u64::MAX).to_le_bytes());
    assert!(decode_frame(&bytes).is_err());
    let _ = PROTOCOL_VERSION;
}
