//! **Bias-regression fixtures**, promoted from `#[ignore]`d
//! documentation tests into an explicitly-run CI step (PR 5): the
//! `O(contraction^ρ)` proposal-pairing biases the rewind ledger removes
//! are part of the repo's documented trade-off (DESIGN.md §5), so a
//! change that silently *shifts* them — not just one that removes them —
//! must fail CI rather than drift.
//!
//! Each fixture therefore asserts a **tolerance band** around the
//! measured bias, not merely its presence: the lower edge still proves
//! the legacy pairing is biased (the ledger pairing on identical seeds
//! is not — see `ledger_exactness.rs`), the upper edge pins its
//! documented magnitude. Measured on the tight-ridge hierarchy at
//! `ρ = 2` over four seeds: served-proposal marginal mean 0.215–0.222
//! (coarse target 0.0), proposal-paired parallel correction 0.131–0.134
//! (truth 0.35).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::coupled::build_chain_stack;
use uq_mlmcmc::ledger::PairingMode;
use uq_mlmcmc::LevelFactory;
use uq_parallel::{run_parallel, ParallelConfig, Tracer};

const COARSE_MEAN: f64 = 0.0;
const FINE_MEAN: f64 = 0.35;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [0.15, 0.12][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// The served PROPOSAL stream (what the estimator paired against before
/// the ledger) has marginal `π_1 K_0^ρ`, dragged from the coarse target
/// toward the fine posterior. The pull must stay inside its documented
/// band: gone ⇒ the legacy pairing became unbiased and DESIGN.md §5
/// needs a rewrite; grown ⇒ the coarse kernel's contraction regressed.
#[test]
fn proposal_stream_served_marginal_bias_stays_in_band() {
    let mut chain = build_chain_stack(&Ridge, 1);
    let mut rng = StdRng::seed_from_u64(41);
    let mut proposal = Vec::new();
    for i in 0..62_000 {
        chain.step(&mut rng);
        if i >= 2_000 {
            proposal.push(chain.last_coarse().expect("coupled").theta[0]);
        }
    }
    let bias = uq_mcmc::stats::mean(&proposal) - COARSE_MEAN;
    assert!(
        (0.17..=0.27).contains(&bias),
        "served-proposal marginal bias {bias:.4} left its documented band [0.17, 0.27] \
         (measured 0.215–0.222 across seeds at ρ = {RHO}; the pairing track on identical \
         seeds is unbiased — ledger_exactness.rs)"
    );
}

/// Pairing the parallel correction against the proposal stream
/// re-introduces the `O(contraction^ρ)` correction-mean bias — the
/// reason both parallel backends default to `PairingMode::Ledger`. The
/// measured shortfall must stay in its band.
#[test]
fn parallel_proposal_pairing_correction_bias_stays_in_band() {
    let truth = FINE_MEAN - COARSE_MEAN;
    let mut pconfig = ParallelConfig::new(vec![30_000, 15_000], vec![1, 1]);
    pconfig.burn_in = vec![1_000, 500];
    pconfig.pairing = PairingMode::Proposal;
    let par = run_parallel(&Ridge, &pconfig, &Tracer::disabled());
    let corr = par.levels[1].mean_correction[0];
    let bias = truth - corr;
    assert!(
        (0.16..=0.27).contains(&bias),
        "proposal-pairing correction bias {bias:.4} (correction {corr:.4} vs truth {truth}) \
         left its documented band [0.16, 0.27] (measured ≈ 0.218 across seeds at ρ = {RHO}; \
         the default ledger pairing is unbiased — ledger_exactness.rs)"
    );
}
