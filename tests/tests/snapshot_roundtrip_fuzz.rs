//! Property fuzz for the PR 6 snapshot codec: arbitrary checkpoint
//! state must round-trip **bit-identically** through
//! `encode_snapshot`/`decode_snapshot`, and torn or bit-flipped
//! snapshot bytes must be *rejected with a clear error* — never
//! mis-decoded into a plausible-looking snapshot.
//!
//! Round-trips are asserted two ways: structural equality after decode,
//! and byte equality after a second encode. The re-encode check is the
//! one content addressing actually relies on (equal state ⇒ equal
//! bytes ⇒ equal hash), and it stays meaningful for values whose
//! `PartialEq` is vacuous (NaN payloads, covered by a deterministic
//! test below).

use proptest::prelude::*;
use uq_mlmcmc::coupled::{ChainState, CoarseSample, SourceState};
use uq_mlmcmc::ledger::{LedgerState, LedgerStats, SessionState, SpeculationState};
use uq_mlmcmc::store::{
    decode_snapshot, encode_snapshot, fnv1a, Backend, ChainCkpt, Codec, CollectorCkpt, Dec, Enc,
    LevelReportCkpt, RunSnapshot, SequentialCkpt,
};

// ---------------------------------------------------------------------
// builders: nested checkpoint state from flat drawn primitives
// ---------------------------------------------------------------------

fn sample(theta: &[f64], log_density: f64, depth: u8) -> CoarseSample {
    CoarseSample {
        theta: theta.to_vec(),
        log_density,
        qoi: theta.iter().map(|t| t + 0.25).collect(),
        sub_anchor: (depth > 0).then(|| Box::new(sample(theta, log_density - 1.0, depth - 1))),
        mate: (depth > 1).then(|| Box::new(sample(theta, log_density + 1.0, 0))),
    }
}

fn chain_state(theta: &[f64], log_density: f64, steps: usize, flags: u8) -> ChainState {
    ChainState {
        steps,
        accepted: steps / 2,
        theta: theta.to_vec(),
        log_density,
        qoi: theta.to_vec(),
        anchor: (flags & 1 != 0).then(|| sample(theta, log_density, 2)),
        last_coarse: (flags & 2 != 0).then(|| sample(theta, log_density * 0.5, 1)),
        last_pairing: (flags & 4 != 0).then(|| sample(theta, log_density * 0.25, 0)),
        source: (flags & 8 != 0).then(|| {
            Box::new(SourceState {
                session_seed: (flags & 16 != 0).then_some(steps as u64),
                serves: steps as u64,
                diverged_serves: (steps / 3) as u64,
                pairing: (flags & 32 != 0).then(|| sample(theta, log_density, 0)),
                chain: ChainState {
                    steps: steps + 1,
                    accepted: steps / 3,
                    theta: theta.to_vec(),
                    log_density: log_density - 2.0,
                    qoi: vec![],
                    anchor: None,
                    last_coarse: None,
                    last_pairing: None,
                    source: None,
                },
            })
        }),
    }
}

fn session(requester: usize, level: usize, seed: u64, flags: u8, theta: &[f64]) -> SessionState {
    SessionState {
        requester,
        level,
        seed,
        serves: seed % 977,
        pairing: (flags & 1 != 0).then(|| sample(theta, -0.5, 1)),
        next_anchor: (flags & 2 != 0).then(|| sample(theta, -1.5, 0)),
        spec_inflight: (flags & 4 != 0).then_some(seed % 13),
        spec: (flags & 8 != 0).then(|| SpeculationState {
            serves: seed % 31,
            proposal: sample(theta, 0.75, 1),
            pairing: sample(theta, -0.75, 0),
            diverged: flags & 16 != 0,
        }),
        spec_backoff: u32::from(flags) % 17,
        spec_cooldown: u32::from(flags / 2) % 9,
        real_inflight: flags & 32 != 0,
    }
}

fn ledger(sessions: Vec<SessionState>, seed: u64) -> LedgerState {
    LedgerState {
        generations: sessions
            .iter()
            .map(|s| (s.requester, s.level, s.serves))
            .collect(),
        candidates: vec![(0, vec![3, 5]), (1, vec![4])],
        stats: LedgerStats {
            sessions: sessions.len(),
            serves: (seed % 10_000) as usize,
            diverged: (seed % 97) as usize,
            spec_launched: (seed % 53) as usize,
            spec_hits: (seed % 29) as usize,
            spec_misses: (seed % 23) as usize,
        },
        sessions,
    }
}

fn backend(tag: u8) -> Backend {
    match tag % 3 {
        0 => Backend::Sequential,
        1 => Backend::Thread,
        _ => Backend::Runtime,
    }
}

/// A full snapshot exercising every branch of the codec: parallel
/// chains with nested anchors and recursive sources, sharded
/// collectors, a ledger with parked speculation, and a sequential
/// cursor with completed terms.
fn snapshot(tag: u8, seed: u64, steps: usize, theta: &[f64]) -> RunSnapshot {
    let moments: Vec<(usize, f64, f64)> = theta
        .iter()
        .enumerate()
        .map(|(i, t)| (steps + i, *t, t.abs()))
        .collect();
    RunSnapshot {
        backend: backend(tag),
        seed,
        samples_done: steps,
        chains: (0..usize::from(tag) % 3)
            .map(|i| ChainCkpt {
                rank: 4 + i,
                level: i % 2,
                burnin_left: steps % 7,
                producing: tag & 1 != 0,
                done_levels: vec![tag & 2 != 0, tag & 4 != 0],
                shard_rr: i,
                rng: [seed, seed ^ 0xA5A5, seed.rotate_left(13), !seed],
                chain: chain_state(theta, -0.25, steps + i, tag.wrapping_add(i as u8)),
            })
            .collect(),
        collectors: (0..usize::from(tag) % 2 + 1)
            .map(|i| CollectorCkpt {
                level: i,
                shard: 0,
                count: steps + i,
                moments: (tag & 8 != 0).then(|| moments.clone()),
                theta_samples: vec![theta.to_vec(); usize::from(tag) % 3],
                correction_pairs: vec![(theta.to_vec(), theta.to_vec()); usize::from(tag) % 2],
            })
            .collect(),
        ledger: (tag & 16 != 0).then(|| {
            ledger(
                vec![
                    session(5, 0, seed, tag, theta),
                    session(6, 1, seed ^ 7, tag / 2, theta),
                ],
                seed,
            )
        }),
        sequential: (tag & 32 != 0).then(|| SequentialCkpt {
            level: 1,
            samples_done: steps,
            chain: chain_state(theta, 0.5, steps, tag / 3),
            rng: [!seed, seed, seed ^ 1, seed.rotate_right(7)],
            moments: moments.clone(),
            rep_trace: theta.to_vec(),
            theta_samples: vec![theta.to_vec()],
            qoi_samples: vec![theta.to_vec()],
            correction_pairs: vec![(theta.to_vec(), theta.to_vec())],
            completed: vec![LevelReportCkpt {
                level: 0,
                n_samples: steps,
                acceptance_rate: 0.234,
                mean_correction: theta.to_vec(),
                var_correction: theta.iter().map(|t| t * t).collect(),
                iact: 3.5,
                theta_samples: vec![theta.to_vec()],
                qoi_samples: vec![],
                correction_pairs: vec![],
            }],
            eval_offsets: vec![steps, steps / 2],
        }),
    }
}

fn value_roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) -> (T, Vec<u8>, Vec<u8>) {
    let mut enc = Enc::new();
    v.encode(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Dec::new(&bytes);
    let back = T::decode(&mut dec).expect("value must decode");
    assert_eq!(dec.remaining(), 0, "decode must consume every byte");
    let mut enc2 = Enc::new();
    back.encode(&mut enc2);
    (back, bytes, enc2.into_bytes())
}

proptest! {
    #[test]
    fn snapshots_roundtrip_bit_identically(
        tag in 0u8..255,
        seed in 0u64..u64::MAX,
        steps in 0usize..5_000,
        theta in prop::collection::vec(-1e9f64..1e9, 1..4),
    ) {
        let snap = snapshot(tag, seed, steps, &theta);
        let config_hash = seed ^ 0xDEAD_BEEF;
        let bytes = encode_snapshot(&snap, config_hash);
        let (back, hash) = decode_snapshot(&bytes).expect("framed snapshot must decode");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(hash, config_hash);
        // content addressing: equal state ⇒ equal bytes ⇒ equal hash
        let again = encode_snapshot(&back, hash);
        prop_assert_eq!(&again, &bytes);
        prop_assert_eq!(fnv1a(&again), fnv1a(&bytes));
    }

    #[test]
    fn session_and_chain_values_roundtrip(
        flags in 0u8..255,
        seed in 0u64..u64::MAX,
        steps in 0usize..10_000,
        theta in prop::collection::vec(-1e6f64..1e6, 1..5),
    ) {
        let s = session(steps % 31, steps % 3, seed, flags, &theta);
        let (back, bytes, again) = value_roundtrip(&s);
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(again, bytes);

        let c = chain_state(&theta, -0.125, steps, flags);
        let (back, bytes, again) = value_roundtrip(&c);
        prop_assert_eq!(&back, &c);
        prop_assert_eq!(again, bytes);

        let l = ledger(vec![s], seed);
        let (back, bytes, again) = value_roundtrip(&l);
        prop_assert_eq!(&back, &l);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn truncated_snapshots_are_rejected(
        tag in 0u8..255,
        seed in 0u64..u64::MAX,
        cut in 0usize..100_000,
        theta in prop::collection::vec(-10f64..10.0, 1..3),
    ) {
        let bytes = encode_snapshot(&snapshot(tag, seed, 17, &theta), seed);
        let cut = cut % bytes.len(); // strict prefix
        prop_assert!(
            decode_snapshot(&bytes[..cut]).is_err(),
            "a torn {cut}-byte prefix of a {}-byte snapshot must be rejected",
            bytes.len()
        );
    }

    #[test]
    fn bit_flipped_snapshots_are_rejected(
        tag in 0u8..255,
        seed in 0u64..u64::MAX,
        flip in (0usize..1_000_000, 0u8..8),
        theta in prop::collection::vec(-10f64..10.0, 1..3),
    ) {
        let (pos, bit) = flip;
        let mut bytes = encode_snapshot(&snapshot(tag, seed, 23, &theta), seed);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_snapshot(&bytes).is_err(),
            "a single flipped bit (byte {pos}, bit {bit}) must never decode"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(
        tag in 0u8..255,
        seed in 0u64..u64::MAX,
        extra in prop::collection::vec(0u8..255, 1..9),
    ) {
        let mut bytes = encode_snapshot(&snapshot(tag, seed, 5, &[1.5]), seed);
        bytes.extend(extra.iter().copied());
        prop_assert!(decode_snapshot(&bytes).is_err());
    }
}

/// NaN payload bits survive the codec exactly — `PartialEq` can't see
/// this, so it is asserted at the bit level.
#[test]
fn nan_payloads_roundtrip_bit_exactly() {
    for bits in [
        f64::NAN.to_bits(),
        f64::NAN.to_bits() ^ 0xdead, // payload-tweaked quiet NaN
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        (-0.0f64).to_bits(),
    ] {
        let x = f64::from_bits(bits);
        let mut enc = Enc::new();
        x.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = f64::decode(&mut dec).unwrap();
        assert_eq!(back.to_bits(), bits, "f64 codec must preserve payload bits");
    }
}
