//! Conformance suite for the **observability layer** (PR 8,
//! `uq_parallel::obs`): tracing is pure observation. Attaching an
//! enabled [`Tracer`] must not move a single bit of any backend's
//! output — no RNG draws, no message reordering, no extra wakeups —
//! and the counters it gathers must agree with the authoritative
//! sources they mirror (the rewind ledger, the phonebook, the worker
//! pool).
//!
//! Bit-parity is asserted in the regimes where the schedule itself is
//! deterministic (sequential estimator; single-worker runtime with
//! speculation and a mid-run checkpoint barrier; thread scheduler with
//! one chain per level), so any divergence is attributable to the
//! tracer alone. Fixture: the tight-ridge two-level Gaussian hierarchy
//! shared with `speculation_conformance.rs`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::estimator::run_sequential;
use uq_mlmcmc::store::fnv1a;
use uq_mlmcmc::{LevelFactory, MlmcmcConfig, RunStore};
use uq_parallel::{
    chrome_trace, run_parallel, run_runtime, run_runtime_ckpt, Counter, MetricsSnapshot,
    ObservedFactory, ParallelCheckpoint, ParallelConfig, RuntimeConfig, SpanKind, Tracer,
};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// Deterministic single-worker runtime config on the ridge: one chain
/// per level, load balancing off, per-sample recording on — serves are
/// pure functions of their lease, so the run is bit-reproducible and
/// any deviation is the tracer's fault.
fn runtime_config(n0: usize, n1: usize, seed: u64) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(vec![n0, n1], vec![1, 1]);
    config.base.burn_in = vec![30, 20];
    config.base.seed = seed;
    config.base.load_balancing = false;
    config.base.record_samples = true;
    config.n_workers = 1;
    config.collector_shards = 1;
    config
}

fn level_theta(levels: &[uq_parallel::scheduler::ParallelLevelReport], level: usize) -> Vec<f64> {
    levels[level].theta_samples.iter().map(|t| t[0]).collect()
}

#[test]
fn sequential_tracing_on_off_is_bit_identical() {
    let config = MlmcmcConfig::new(vec![400, 250])
        .with_burn_in(vec![30, 20])
        .recording();
    let mut rng = StdRng::seed_from_u64(7);
    let plain = run_sequential(&Ridge, &config, &mut rng);

    let tracer = Tracer::new();
    let observed = ObservedFactory::new(&Ridge, &tracer, 0);
    let mut rng = StdRng::seed_from_u64(7);
    let traced = run_sequential(&observed, &config, &mut rng);

    for level in 0..2 {
        assert_eq!(
            plain.levels[level].theta_samples, traced.levels[level].theta_samples,
            "level-{level} stream must be bit-identical under the observed factory"
        );
        assert_eq!(
            plain.levels[level].mean_correction,
            traced.levels[level].mean_correction
        );
    }
    // non-vacuity: the wrapper actually recorded the evaluations it saw
    let evals = tracer
        .events()
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Eval { .. }))
        .count();
    assert!(evals > 400, "observed factory recorded only {evals} spans");
    assert!(tracer.hist(uq_parallel::Hist::SolveTime).count > 0);
}

#[test]
fn thread_scheduler_tracing_on_off_is_bit_identical() {
    // one chain per level: every recorded stream is
    // schedule-independent (see speculation_conformance.rs), so the
    // tracing switch must not move a bit even though the OS interleaves
    // the rank threads differently run to run
    let mk = |tracer: &Tracer| {
        let mut config = ParallelConfig::new(vec![1_500, 2_000], vec![1, 1]);
        config.burn_in = vec![100, 60];
        config.seed = 33;
        config.load_balancing = false;
        config.record_samples = true;
        run_parallel(&Ridge, &config, tracer)
    };
    let tracer = Tracer::new();
    let on = mk(&tracer);
    let off = mk(&Tracer::disabled());
    for level in 0..2 {
        assert_eq!(
            level_theta(&on.levels, level),
            level_theta(&off.levels, level),
            "level-{level} stream must be bit-identical across the tracing switch"
        );
    }
    assert!(tracer.counter(Counter::Serves) > 0);
    assert!(tracer.n_events() > 0);
}

#[test]
fn runtime_tracing_on_off_is_bit_identical_with_speculation() {
    let tracer = Tracer::new();
    let on = run_runtime(&Ridge, &runtime_config(300, 500, 21), &tracer);
    let off = run_runtime(&Ridge, &runtime_config(300, 500, 21), &Tracer::disabled());
    for level in 0..2 {
        assert_eq!(
            level_theta(&on.report.levels, level),
            level_theta(&off.report.levels, level),
            "level-{level} stream must be bit-identical across the tracing switch"
        );
        assert_eq!(
            on.report.levels[level].mean_correction,
            off.report.levels[level].mean_correction
        );
    }
    // the parity must cover the speculative path, and the tracer must
    // have seen it: speculative serve spans recorded by the server
    assert!(
        on.phonebook.ledger.spec_hits > 0,
        "speculative path not exercised: {:?}",
        on.phonebook.ledger
    );
    let spec_spans = tracer
        .events()
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Speculate { .. }))
        .count();
    assert!(spec_spans > 0, "speculative serves left no spans");
}

#[test]
fn runtime_tracing_on_off_is_bit_identical_across_mid_run_checkpoints() {
    // the checkpoint barrier (pause -> drain -> snapshot -> resume) is
    // the most intrusive protocol in the system; tracing it (Quiesce
    // and Checkpoint spans, barrier-ack counters) must not perturb the
    // cut or the resumed trajectories
    let dir = std::env::temp_dir().join(format!("uq-obs-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    let hash = fnv1a(b"obs-conformance-ckpt");
    let run = |tracer: &Tracer, store_dir: &std::path::Path| {
        let store = RunStore::open(store_dir).expect("open store");
        let snaps = AtomicUsize::new(0);
        let hook = move |_done: usize, _hash: &str| {
            snaps.fetch_add(1, Ordering::SeqCst);
        };
        let ckpt = ParallelCheckpoint {
            store: &store,
            config_hash: hash,
            every: 100,
            on_snapshot: Some(&hook),
            stop: None,
        };
        run_runtime_ckpt(
            &Ridge,
            &runtime_config(300, 500, 21),
            tracer,
            Some(&ckpt),
            None,
        )
    };
    let tracer = Tracer::new();
    let on = run(&tracer, &dir.join("on"));
    let off = run(&Tracer::disabled(), &dir.join("off"));
    for level in 0..2 {
        assert_eq!(
            level_theta(&on.report.levels, level),
            level_theta(&off.report.levels, level),
            "level-{level} stream must be bit-identical with checkpoints traced"
        );
    }
    // the barrier actually ran and the tracer saw all of it
    assert!(
        tracer.counter(Counter::BarrierAcks) > 0,
        "no barrier acks counted — did a checkpoint happen?"
    );
    let events = tracer.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Checkpoint)),
        "no checkpoint span recorded"
    );
    assert!(
        events.iter().any(|e| matches!(e.kind, SpanKind::Quiesce)),
        "no quiesce span recorded"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counters_agree_with_their_authoritative_sources() {
    // a quiescent single-worker run finishes with nothing in flight, so
    // the cross-rank counter pairs must balance exactly
    let tracer = Tracer::new();
    let rt = run_runtime(&Ridge, &runtime_config(300, 500, 21), &tracer);
    let ledger = rt.phonebook.ledger;

    // every executed serve's ServeDone reached the phonebook: the
    // controller-side count equals the phonebook-side count
    let serves = tracer.counter(Counter::Serves);
    let write_backs = tracer.counter(Counter::WriteBacks);
    assert_eq!(
        serves, write_backs,
        "controller-side serves vs phonebook-side write-backs"
    );
    // the ledger commits real serves plus speculation hits; the tracer
    // counts executed serve jobs (real serves plus launched
    // speculations). The two sources must describe the same history.
    assert_eq!(
        serves as usize + ledger.spec_hits,
        ledger.serves + ledger.spec_launched,
        "tracer serve count inconsistent with the ledger: serves={serves}, {ledger:?}"
    );
    // speculation accounting: every resolution was a launch
    assert!(ledger.spec_hits + ledger.spec_misses <= ledger.spec_launched);
    assert!(ledger.spec_hits > 0 && ledger.spec_misses > 0);

    // the merged snapshot carries both sources without overwriting the
    // live cross-check values
    let mut snap = MetricsSnapshot::capture("conformance", &tracer);
    snap.merge_ledger(&ledger);
    snap.merge_runtime(&rt.runtime);
    assert_eq!(snap.counter(Counter::Serves), serves);
    assert_eq!(snap.counter(Counter::SpecHits), ledger.spec_hits as u64);
    assert_eq!(snap.counter(Counter::Steals), rt.runtime.steals as u64);
}

#[test]
fn exporters_are_well_formed() {
    let tracer = Tracer::new();
    let _ = run_runtime(&Ridge, &runtime_config(120, 200, 5), &tracer);

    // CSV: header plus one row per event, every row level-annotated
    let csv = tracer.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("rank,kind,level,start,end"));
    let rows = lines.count();
    assert_eq!(rows, tracer.n_events());
    assert!(rows > 0);

    // Chrome trace: one process per label, complete events with
    // consistent timestamps (ts >= 0, dur >= 0), valid JSON bracketing
    let trace = chrome_trace(&[("a", &tracer), ("b", &Tracer::disabled())]);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    assert!(trace.contains("\"ph\":\"M\""));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(!trace.contains("\"dur\":-"), "negative span duration");
    assert!(!trace.contains("\"ts\":-"), "negative span timestamp");

    // metrics snapshot: counters, per-rank and per-level tables present
    let snap = MetricsSnapshot::capture("export", &tracer);
    assert!(!snap.per_rank.is_empty() && !snap.per_level.is_empty());
    let json = snap.to_json();
    for key in [
        "\"counters\"",
        "\"histograms\"",
        "\"per_rank\"",
        "\"per_level\"",
        "\"utilization\"",
    ] {
        assert!(json.contains(key), "metrics JSON missing {key}");
    }

    // progress line: human-readable liveness summary
    let line = tracer.progress_line();
    assert!(line.contains("serves=") && line.contains("spans="));
}
