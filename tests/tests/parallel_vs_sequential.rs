//! The parallel backends (thread scheduler and cooperative runtime) and
//! the sequential driver must estimate the same quantities: all three
//! implement paper Algorithm 2, only the execution strategy differs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::{GaussianRandomWalk, Proposal, SamplingProblem};
use uq_mlmcmc::{run_sequential, LevelFactory, MlmcmcConfig};
use uq_parallel::{run_parallel, run_runtime, ParallelConfig, RuntimeConfig, Tracer};

struct Hierarchy;

impl LevelFactory for Hierarchy {
    fn n_levels(&self) -> usize {
        3
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        struct Target {
            mean: Vec<f64>,
            sd: f64,
        }
        impl SamplingProblem for Target {
            fn dim(&self) -> usize {
                2
            }
            fn log_density(&mut self, theta: &[f64]) -> f64 {
                isotropic_gaussian_logpdf(theta, &self.mean, self.sd)
            }
        }
        let mean = [[0.5, -0.4], [0.9, -0.9], [1.0, -1.0]][level];
        Box::new(Target {
            mean: mean.to_vec(),
            sd: [0.7, 0.55, 0.5][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.7))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [20, 12, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0, 0.0]
    }
}

#[test]
fn parallel_matches_sequential_estimate() {
    let samples = vec![25_000usize, 3_000, 800];
    let burn_in = vec![400usize, 150, 60];

    let config = MlmcmcConfig::new(samples.clone()).with_burn_in(burn_in.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let seq = run_sequential(&Hierarchy, &config, &mut rng);

    let mut pconfig = ParallelConfig::new(samples, vec![2, 2, 1]);
    pconfig.burn_in = burn_in;
    let par = run_parallel(&Hierarchy, &pconfig, &Tracer::disabled());

    let se = seq.expectation();
    let pe = par.expectation();
    let truth = [1.0, -1.0];
    for k in 0..2 {
        assert!(
            (se[k] - pe[k]).abs() < 0.15,
            "component {k}: sequential {} vs parallel {}",
            se[k],
            pe[k]
        );
        // both close to the finest target mean (1, -1)
        assert!((se[k] - truth[k]).abs() < 0.12, "sequential {k}: {}", se[k]);
        assert!((pe[k] - truth[k]).abs() < 0.12, "parallel {k}: {}", pe[k]);
    }
}

#[test]
fn parallel_counts_match_targets() {
    let mut pconfig = ParallelConfig::new(vec![2_000, 500, 150], vec![1, 1, 1]);
    pconfig.burn_in = vec![50, 20, 10];
    let par = run_parallel(&Hierarchy, &pconfig, &Tracer::disabled());
    assert_eq!(par.levels[0].n_samples, 2_000);
    assert_eq!(par.levels[1].n_samples, 500);
    assert_eq!(par.levels[2].n_samples, 150);
    // subsampling forces coarse evals >> coarse samples
    assert!(par.levels[0].evaluations > 2_000);
}

#[test]
fn parallel_handles_single_chain_layout() {
    let mut pconfig = ParallelConfig::new(vec![800, 200], vec![1, 1]);
    pconfig.load_balancing = false;
    pconfig.burn_in = vec![20, 10];
    let par = run_parallel(&Hierarchy, &pconfig, &Tracer::disabled());
    assert!(par.expectation()[0].is_finite());
    assert_eq!(par.reassignments, 0);
}

#[test]
fn runtime_matches_thread_scheduler_estimate() {
    // identical policy inputs and seeds; the cooperative runtime must
    // reproduce the thread scheduler's per-level estimates within MC
    // tolerance (interleavings differ, the schedule does not)
    let samples = vec![20_000usize, 2_500, 600];
    let burn_in = vec![300usize, 120, 50];

    let mut pconfig = ParallelConfig::new(samples.clone(), vec![2, 2, 1]);
    pconfig.burn_in = burn_in.clone();
    let par = run_parallel(&Hierarchy, &pconfig, &Tracer::disabled());

    let mut rconfig = RuntimeConfig::new(samples, vec![2, 2, 1]);
    rconfig.base.burn_in = burn_in;
    rconfig.n_workers = 4;
    let rt = run_runtime(&Hierarchy, &rconfig, &Tracer::disabled());

    for (a, b) in par.levels.iter().zip(&rt.report.levels) {
        assert_eq!(a.n_samples, b.n_samples, "level {}", a.level);
    }
    let pe = par.expectation();
    let re = rt.report.expectation();
    let truth = [1.0, -1.0];
    for k in 0..2 {
        assert!(
            (pe[k] - re[k]).abs() < 0.15,
            "component {k}: scheduler {} vs runtime {}",
            pe[k],
            re[k]
        );
        assert!((re[k] - truth[k]).abs() < 0.12, "runtime {k}: {}", re[k]);
    }
}

#[test]
fn runtime_scales_past_physical_cores() {
    // 120 virtual ranks on 3 workers — far beyond what the per-rank
    // thread scheduler could host as live OS threads on small CI boxes
    let mut rconfig = RuntimeConfig::new(vec![6_000, 1_200, 300], vec![70, 30, 12]);
    rconfig.base.burn_in = vec![30, 15, 8];
    rconfig.n_workers = 3;
    rconfig.collector_shards = 2;
    let rt = run_runtime(&Hierarchy, &rconfig, &Tracer::disabled());
    assert_eq!(rt.report.n_ranks, 2 + 3 * 2 + 112);
    assert_eq!(rt.report.levels[0].n_samples, 6_000);
    assert_eq!(rt.report.levels[1].n_samples, 1_200);
    assert_eq!(rt.report.levels[2].n_samples, 300);
    assert!(rt.report.expectation()[0].is_finite());
    assert!(rt.phonebook.messages > 0 && rt.phonebook.max_batch >= 2);
}
