//! Proptest-driven fuzz of **ledger session migration** (PR 5):
//! arbitrary interleavings of lease / serve / write-back / speculation /
//! migrate driven against a [`uq_mlmcmc::ledger::LedgerBook`], checked
//! against an independent mirror model. The invariants are the ones the
//! phonebooks rely on:
//!
//! * **never double-serve** — a session's committed stream positions
//!   advance by exactly one per commit (real write-back or speculation
//!   hit), every lease is issued at the current position, and a
//!   committed speculation returns bit-for-bit the outcome that was
//!   stored for that position;
//! * **never drop a session** — write-backs of the live generation are
//!   always applied, stale/dead-generation messages are always no-ops,
//!   and a migrated-away requester re-opens cleanly at position 0;
//! * **generations never share substreams** — each re-opened session
//!   derives a seed never seen before.
//!
//! Inputs are op-code vectors from the vendored proptest's `vec` + tuple
//! strategies, so a failing interleaving shrinks structurally (dropping
//! ops) and element-wise (simplifying op codes) to a minimal
//! counterexample with a replayable `PROPTEST_SEED`.

use proptest::prelude::*;
use std::collections::HashSet;
use uq_mcmc::problem::GaussianTarget;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mlmcmc::coupled::{CoarseSample, MlChain};
use uq_mlmcmc::ledger::{self, LedgerBook, LedgerLease, ServeOutcome};

const RHO: usize = 2;
const BASE_SEED: u64 = 77;
const LEVEL: usize = 0;

fn serving_chain() -> MlChain {
    MlChain::base(
        Box::new(GaussianTarget::new(vec![0.0], 1.0)),
        Box::new(GaussianRandomWalk::new(0.5)),
        vec![0.0],
    )
}

/// Mirror state of one requester's session, maintained independently of
/// the book.
#[derive(Default)]
struct Mirror {
    /// Commits in the current generation (the expected stream position).
    committed: u64,
    /// Session seed of the current generation (set at its first lease).
    cur_seed: Option<u64>,
    /// A real serve whose write-back has not been applied yet.
    outstanding: Option<(Box<LedgerLease>, ServeOutcome)>,
    /// The outcome stored for the current position's speculation, if the
    /// store was accepted.
    stored_spec: Option<ServeOutcome>,
    /// The last committed proposal (the accept-case anchor prediction).
    last_proposal: Option<CoarseSample>,
}

fn accept_anchor(m: &Mirror) -> Option<CoarseSample> {
    m.last_proposal.clone().map(|mut p| {
        p.mate = None;
        p
    })
}

proptest! {
    #[test]
    fn arbitrary_interleavings_never_double_serve_or_drop_a_session(
        ops in prop::collection::vec((0u8..6, 0u8..2, 0u8..4), 0..48),
    ) {
        let mut chain = serving_chain();
        let mut book = LedgerBook::default();
        let mut mirrors = [Mirror::default(), Mirror::default()];
        let mut seeds_seen: HashSet<u64> = HashSet::new();

        for (op, who, salt) in ops {
            let r = 1 + who as usize; // requester ranks 1 and 2
            match op {
                // lease a real serve (the protocol serializes: at most
                // one outstanding real serve per requester)
                0 => {
                    if mirrors[who as usize].outstanding.is_some() {
                        continue;
                    }
                    let anchor = chain.anchor_at(&[f64::from(salt) * 0.1]);
                    let lease = book.lease(BASE_SEED, LEVEL, r, anchor);
                    let m = &mut mirrors[who as usize];
                    // lease must be issued at the current stream position
                    prop_assert_eq!(lease.serves, m.committed);
                    match m.cur_seed {
                        // one generation, one seed
                        Some(seed) => prop_assert_eq!(seed, lease.session_seed),
                        None => {
                            m.cur_seed = Some(lease.session_seed);
                            prop_assert!(
                                seeds_seen.insert(lease.session_seed),
                                "generations must never share a session seed"
                            );
                        }
                    }
                    let outcome = ledger::serve(&mut chain, RHO, &lease);
                    m.outstanding = Some((lease, outcome));
                }
                // deliver the outstanding write-back
                1 => {
                    let m = &mut mirrors[who as usize];
                    let Some((lease, outcome)) = m.outstanding.take() else {
                        continue;
                    };
                    book.write_back(r, LEVEL, lease.session_seed, lease.serves + 1, &outcome);
                    if m.cur_seed == Some(lease.session_seed) {
                        // live generation: the write-back must be applied
                        m.committed = lease.serves + 1;
                        m.last_proposal = Some(outcome.proposal.clone());
                        // a stored speculation was invalidated by it
                        m.stored_spec = None;
                        // live write-back must advance the session
                        prop_assert_eq!(book.session_serves(r, LEVEL), Some(m.committed));
                    } else {
                        // dead generation: must be a no-op (no resurrect,
                        // no position corruption)
                        // dead-generation write-back must not touch the session
                        prop_assert_eq!(
                            book.session_serves(r, LEVEL),
                            m.cur_seed.map(|_| m.committed)
                        );
                    }
                }
                // migrate the requester away (sessions dropped, new
                // generation on re-contact)
                2 => {
                    book.forget_requester(r);
                    let m = &mut mirrors[who as usize];
                    m.committed = 0;
                    m.cur_seed = None;
                    m.stored_spec = None;
                    m.last_proposal = None;
                    prop_assert_eq!(book.session_serves(r, LEVEL), None);
                }
                // dispatch + complete + store a speculative serve
                3 => {
                    let Some((spec_for, lease)) = book.speculative_lease(LEVEL) else {
                        continue;
                    };
                    let m = &mut mirrors[spec_for - 1];
                    // speculation must target the current position
                    prop_assert_eq!(lease.serves, m.committed);
                    let before = book.session_serves(spec_for, LEVEL);
                    let outcome = ledger::serve(&mut chain, RHO, &lease);
                    let stored = book.store_speculation(
                        spec_for,
                        LEVEL,
                        lease.session_seed,
                        lease.serves + 1,
                        outcome.clone(),
                    );
                    if stored {
                        m.stored_spec = Some(outcome);
                    }
                    // storing a speculation must not advance the session
                    prop_assert_eq!(book.session_serves(spec_for, LEVEL), before);
                }
                // commit attempt with the accept-case anchor
                4 => {
                    let m = &mut mirrors[who as usize];
                    let Some(anchor) = accept_anchor(m) else {
                        continue;
                    };
                    let before = book.session_serves(r, LEVEL);
                    match book.try_commit(r, LEVEL, &anchor) {
                        Some(sample) => {
                            // a hit must return exactly the stored
                            // outcome for the current position, with no
                            // real serve outstanding — anything else is
                            // a double-serve
                            prop_assert!(
                                m.outstanding.is_none(),
                                "commit with a real serve in flight is a double-serve"
                            );
                            let stored = m.stored_spec.take();
                            prop_assert!(stored.is_some(), "hit without a stored speculation");
                            let stored = stored.unwrap();
                            prop_assert_eq!(&sample.theta, &stored.proposal.theta);
                            prop_assert_eq!(sample.log_density, stored.proposal.log_density);
                            m.committed += 1;
                            m.last_proposal = Some(stored.proposal);
                            prop_assert_eq!(
                                book.session_serves(r, LEVEL),
                                Some(m.committed)
                            );
                        }
                        None => {
                            // a refused commit must leave the position
                            // untouched (the spec may have been consumed
                            // as a miss unless a real serve is in flight,
                            // which shields it)
                            if m.outstanding.is_none() {
                                m.stored_spec = None;
                            }
                            // refused commit must not move the session
                            prop_assert_eq!(book.session_serves(r, LEVEL), before);
                        }
                    }
                }
                // commit attempt with a mismatching anchor: never a hit
                _ => {
                    let m = &mut mirrors[who as usize];
                    let wrong = chain.anchor_at(&[1_000.0 + f64::from(salt)]);
                    let before = book.session_serves(r, LEVEL);
                    prop_assert!(
                        book.try_commit(r, LEVEL, &wrong).is_none(),
                        "mismatching anchor must never commit"
                    );
                    if m.outstanding.is_none() {
                        m.stored_spec = None;
                    }
                    prop_assert_eq!(book.session_serves(r, LEVEL), before);
                }
            }
        }

        // end-state: every open session sits exactly at its mirror's
        // committed position — nothing dropped, nothing replayed
        for (who, m) in mirrors.iter().enumerate() {
            let r = 1 + who;
            if m.cur_seed.is_some() {
                prop_assert_eq!(book.session_serves(r, LEVEL), Some(m.committed));
                prop_assert_eq!(book.session_seed_of(r, LEVEL), m.cur_seed);
            }
        }
        // accounting: hits never exceed launches, committed serves cover
        // hits, and every counter is internally consistent
        let stats = book.stats;
        prop_assert!(stats.spec_hits <= stats.spec_launched);
        prop_assert!(stats.spec_hits <= stats.serves);
        prop_assert!(stats.spec_misses <= stats.spec_launched + stats.serves);
    }
}
