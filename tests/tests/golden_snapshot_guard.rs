//! Format-version compatibility guard: a snapshot committed to the
//! repository at format version 1 must keep decoding — bit-for-bit —
//! on every future revision of the codec. Any change to the wire
//! layout must either keep these bytes valid or bump
//! `store::FORMAT_VERSION` (and add a new golden alongside this one);
//! silently re-interpreting old snapshots is the failure mode this
//! test exists to catch.
//!
//! Regenerate (only after an *intentional* format bump) with:
//! `UQ_WRITE_GOLDEN=1 cargo test -p uq-tests --test golden_snapshot_guard`

use uq_mlmcmc::coupled::{ChainState, CoarseSample, SourceState};
use uq_mlmcmc::ledger::{LedgerState, LedgerStats, SessionState, SpeculationState};
use uq_mlmcmc::store::{
    decode_snapshot, encode_snapshot, fnv1a, Backend, ChainCkpt, CollectorCkpt, LevelReportCkpt,
    RunSnapshot, SequentialCkpt,
};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/golden_v1.snap");
const GOLDEN_CONFIG: u64 = 0x5EED_CAFE_F00D_0001;

fn cs(theta: f64, ld: f64) -> CoarseSample {
    CoarseSample::plain(vec![theta], ld, vec![theta])
}

/// The pinned snapshot: fixed values through every branch of the codec
/// — nested anchors and mates, a recursive sequential source, parked
/// speculation, sharded collector moments, and a mid-term sequential
/// cursor with one completed level.
fn golden() -> RunSnapshot {
    let anchor = CoarseSample {
        theta: vec![0.125, -2.5],
        log_density: -3.75,
        qoi: vec![0.125],
        sub_anchor: Some(Box::new(cs(-0.5, -1.0))),
        mate: Some(Box::new(cs(0.25, -0.125))),
    };
    let chain = ChainState {
        steps: 421,
        accepted: 137,
        theta: vec![0.75, -0.375],
        log_density: -2.25,
        qoi: vec![0.75],
        anchor: Some(anchor.clone()),
        last_coarse: Some(cs(0.0625, -4.5)),
        last_pairing: None,
        source: Some(Box::new(SourceState {
            session_seed: Some(0xDEAD_BEEF),
            serves: 97,
            diverged_serves: 3,
            pairing: Some(cs(1.5, -0.25)),
            chain: ChainState {
                steps: 850,
                accepted: 512,
                theta: vec![-1.0],
                log_density: -0.5,
                qoi: vec![-1.0],
                anchor: None,
                last_coarse: None,
                last_pairing: None,
                source: None,
            },
        })),
    };
    RunSnapshot {
        backend: Backend::Runtime,
        seed: 0x1234_5678_9ABC_DEF0,
        samples_done: 275,
        chains: vec![ChainCkpt {
            rank: 4,
            level: 1,
            burnin_left: 7,
            producing: true,
            done_levels: vec![false, true],
            shard_rr: 2,
            rng: [1, 2, 3, 0xFFFF_FFFF_FFFF_FFFF],
            chain: chain.clone(),
        }],
        collectors: vec![CollectorCkpt {
            level: 0,
            shard: 1,
            count: 275,
            moments: Some(vec![(275, 0.35, 12.25)]),
            theta_samples: vec![vec![0.5], vec![-0.5]],
            correction_pairs: vec![(vec![0.0], vec![0.35])],
        }],
        ledger: Some(LedgerState {
            sessions: vec![SessionState {
                requester: 5,
                level: 0,
                seed: 0xFEED_F00D,
                serves: 41,
                pairing: Some(cs(0.875, -1.5)),
                next_anchor: Some(cs(-0.875, -2.0)),
                spec_inflight: None,
                spec: Some(SpeculationState {
                    serves: 42,
                    proposal: cs(0.9375, -1.25),
                    pairing: cs(-0.9375, -1.75),
                    diverged: true,
                }),
                spec_backoff: 2,
                spec_cooldown: 1,
                real_inflight: false,
            }],
            generations: vec![(5, 0, 2)],
            candidates: vec![(0, vec![5])],
            stats: LedgerStats {
                sessions: 1,
                serves: 41,
                diverged: 3,
                spec_launched: 9,
                spec_hits: 6,
                spec_misses: 2,
            },
        }),
        sequential: Some(SequentialCkpt {
            level: 1,
            samples_done: 75,
            chain,
            rng: [11, 13, 17, 19],
            moments: vec![(75, 0.349, 0.81)],
            rep_trace: vec![0.3, 0.4, 0.35],
            theta_samples: vec![vec![0.3]],
            qoi_samples: vec![vec![0.3]],
            correction_pairs: vec![(vec![0.28], vec![0.33])],
            completed: vec![LevelReportCkpt {
                level: 0,
                n_samples: 200,
                acceptance_rate: 0.4375,
                mean_correction: vec![0.01],
                var_correction: vec![0.0225],
                iact: 4.5,
                theta_samples: vec![vec![0.0]],
                qoi_samples: vec![vec![0.0]],
                correction_pairs: vec![],
            }],
            eval_offsets: vec![900, 300],
        }),
    }
}

#[test]
fn committed_golden_snapshot_still_decodes() {
    let expected = golden();
    if std::env::var("UQ_WRITE_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, encode_snapshot(&expected, GOLDEN_CONFIG)).unwrap();
    }
    let bytes = std::fs::read(GOLDEN_PATH)
        .expect("committed golden snapshot missing — see module docs to regenerate");
    let (snap, config) = decode_snapshot(&bytes)
        .expect("format break: the committed v1 golden snapshot no longer decodes");
    assert_eq!(config, GOLDEN_CONFIG, "golden header config hash drifted");
    assert_eq!(snap, expected, "golden snapshot decoded to different state");
    // the codec must also still *produce* the identical bytes, or every
    // content address ever recorded in a manifest would silently dangle
    assert_eq!(
        encode_snapshot(&snap, config),
        bytes,
        "re-encoding the golden state no longer reproduces the committed bytes"
    );
    assert_eq!(
        format!("{:016x}", fnv1a(&bytes)),
        format!("{:016x}", fnv1a(&encode_snapshot(&expected, GOLDEN_CONFIG))),
        "golden content address drifted"
    );
}
