//! Proptest-driven chaos fuzz of the **multi-tenant UQ service**
//! (`uq_parallel::service`): arbitrary interleavings of submit / cancel
//! / preempt / resume / quiesce driven against a live service with
//! tiny jobs, checked against an independent mirror of the admission
//! and lifecycle rules. The invariants are the tenant-isolation
//! guarantees the service sells:
//!
//! * **no cross-tenant seed/ledger leakage** — every job runs at
//!   exactly `tenant_seed(base, tenant)`, two tenants never share a
//!   namespace, and every completed job of a tenant lands on the one
//!   standalone digest for that tenant, no matter what the chaos did
//!   around it;
//! * **cancel always frees the budget and never strands a job** — an
//!   accepted cancel always ends `Cancelled`, a below-budget submit is
//!   never denied, and once the dust settles every tenant can admit a
//!   fresh job again;
//! * **nothing is ever stranded** — after draining (resuming any
//!   preempted jobs), every job the chaos created is terminal, and the
//!   measured per-tenant serve books equal the sum of their jobs'
//!   serves.
//!
//! Inputs are op-code vectors from the vendored proptest's `vec` +
//! tuple strategies, so a failing interleaving shrinks structurally to
//! a minimal counterexample with a replayable `PROPTEST_SEED`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use uq_mcmc::problem::GaussianTarget;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::ledger::tenant_seed;
use uq_mlmcmc::LevelFactory;
use uq_parallel::{
    levels_digest, run_parallel, Counter, JobSpec, JobState, ParallelConfig, RuntimeConfig,
    Service, ServiceConfig, Tracer,
};

const BASE_SEED: u64 = 99;
const N_TENANTS: u64 = 3;
const BUDGET: usize = 2;

struct TwoLevel;

impl LevelFactory for TwoLevel {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(GaussianTarget::new(vec![[0.0, 0.3][level]], 0.5))
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.4))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        2
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// A deliberately tiny job so dozens run per fuzz case.
fn tiny_config() -> ParallelConfig {
    let mut config = ParallelConfig::new(vec![6, 3], vec![1, 1]);
    config.burn_in = vec![2, 1];
    config.seed = BASE_SEED;
    config.load_balancing = false;
    config.record_samples = true;
    config.speculation = true;
    config
}

fn tiny_job(tenant: u64) -> JobSpec {
    JobSpec {
        tenant,
        priority: 1.0 + tenant as f64,
        model: "two-level".to_string(),
        config: RuntimeConfig {
            base: tiny_config(),
            n_workers: 1,
            collector_shards: 1,
        },
        deadline: 0.0,
    }
}

/// The one standalone digest per tenant — what every completed serviced
/// job must reproduce regardless of the surrounding chaos.
fn expected_digests() -> &'static [u64; N_TENANTS as usize] {
    static DIGESTS: OnceLock<[u64; N_TENANTS as usize]> = OnceLock::new();
    DIGESTS.get_or_init(|| {
        std::array::from_fn(|t| {
            let mut config = tiny_config();
            config.seed = tenant_seed(BASE_SEED, t as u64);
            levels_digest(&run_parallel(&TwoLevel, &config, &Tracer::disabled()).levels)
        })
    })
}

/// Mirror record of one job the chaos created.
struct MirrorJob {
    tenant: u64,
    cancel_accepted: bool,
}

proptest! {
    #[test]
    fn chaos_never_leaks_across_tenants_or_strands_a_job(
        ops in prop::collection::vec((0u8..6, 0u8..(N_TENANTS as u8), 0u8..8), 0..32),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "uq-svc-fuzz-{}-{:x}",
            std::process::id(),
            ops.iter().fold(0u64, |h, &(a, b, c)| {
                h.wrapping_mul(31).wrapping_add(u64::from(a) << 8 | u64::from(b) << 4 | u64::from(c))
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::new();
        let mut cfg = ServiceConfig::new(&dir);
        cfg.lanes = 2;
        cfg.pool_workers = 2;
        cfg.quantum = 2;
        cfg.max_jobs_per_tenant = BUDGET;
        let service = Service::start(cfg, &tracer);
        service.register_model("two-level", Arc::new(TwoLevel));

        let mut mirror: BTreeMap<u64, MirrorJob> = BTreeMap::new();
        let mut admitted = 0u64;
        let mut rejected = 0u64;

        for (op, tenant, pick) in ops {
            let tenant = u64::from(tenant);
            // the pick operand addresses one of the jobs created so far
            let picked = mirror
                .keys()
                .copied()
                .nth(pick as usize % mirror.len().max(1));
            match op {
                // submit for the op's tenant
                0 | 1 => match service.submit(tiny_job(tenant)) {
                    Ok((id, predicted)) => {
                        admitted += 1;
                        prop_assert!(predicted > 0.0, "admission must predict a positive tte");
                        mirror.insert(id, MirrorJob { tenant, cancel_accepted: false });
                    }
                    Err(reason) => {
                        rejected += 1;
                        // only the budget can deny a valid spec here
                        // (deadline 0, registered model, sane config) —
                        // and never below the tenant's total submissions
                        prop_assert!(reason.contains("budget"), "unexpected denial: {}", reason);
                        prop_assert!(
                            mirror.values().filter(|j| j.tenant == tenant).count() >= BUDGET,
                            "denied tenant {} below its budget", tenant
                        );
                    }
                },
                // a submit that fails validation is always denied
                2 => {
                    let mut bad = tiny_job(tenant);
                    bad.priority = 0.0;
                    prop_assert!(service.submit(bad).is_err(), "zero priority must be denied");
                    rejected += 1;
                }
                // cancel a picked job
                3 => {
                    let Some(id) = picked else { continue };
                    let job = mirror.get_mut(&id).expect("picked from mirror");
                    if service.cancel(id) {
                        job.cancel_accepted = true;
                    } else {
                        // refusal means the job was already terminal —
                        // and terminal states never change
                        let st = service.status(id).expect("known job").state;
                        prop_assert!(st.is_terminal(), "cancel refused on live job in {:?}", st);
                    }
                }
                // preempt a picked job (only running jobs accept)
                4 => {
                    let Some(id) = picked else { continue };
                    let _ = service.preempt(id);
                }
                // resume a picked job; acceptance implies it was parked,
                // which a cancel-accepted job can never be
                _ => {
                    let Some(id) = picked else { continue };
                    if service.resume(id) {
                        prop_assert!(
                            !mirror[&id].cancel_accepted,
                            "a cancelled job resurfaced via resume"
                        );
                    }
                }
            }
        }

        // drain: wait the queue out, then resume anything parked until
        // every job is terminal (a resumed job runs unopposed, so this
        // converges in one pass per preemption depth)
        for _ in 0..16 {
            service.quiesce();
            let parked: Vec<u64> = mirror
                .keys()
                .copied()
                .filter(|&id| {
                    service.status(id).expect("known job").state == JobState::Preempted
                })
                .collect();
            if parked.is_empty() {
                break;
            }
            for id in parked {
                prop_assert!(service.resume(id), "parked job refused resume");
            }
        }

        // end-state: nothing stranded, cancels honored, tenants sealed
        let digests = expected_digests();
        let mut serves_by_tenant: BTreeMap<u64, u64> = BTreeMap::new();
        for (&id, job) in &mirror {
            let status = service.status(id).expect("known job");
            prop_assert!(
                status.state.is_terminal(),
                "job {} stranded in {:?}", id, status.state
            );
            prop_assert!(
                status.seed == tenant_seed(BASE_SEED, job.tenant),
                "job {} escaped its tenant namespace", id
            );
            if job.cancel_accepted {
                prop_assert!(
                    status.state == JobState::Cancelled,
                    "accepted cancel did not stick on job {}", id
                );
            }
            if status.state == JobState::Completed {
                prop_assert!(!job.cancel_accepted, "cancelled job {} completed", id);
                prop_assert!(
                    status.digest == digests[job.tenant as usize],
                    "job {} of tenant {} diverged from the standalone digest",
                    id, job.tenant
                );
            }
            *serves_by_tenant.entry(job.tenant).or_insert(0) += status.serves;
        }

        // the service's per-tenant books equal the sum over its jobs
        let books: BTreeMap<u64, u64> = service.per_tenant_serves().into_iter().collect();
        for (tenant, &sum) in &serves_by_tenant {
            if sum > 0 {
                prop_assert_eq!(books.get(tenant).copied().unwrap_or(0), sum);
            }
        }

        // cancel always frees the budget: with everything terminal,
        // every tenant admits again
        for tenant in 0..N_TENANTS {
            let (probe, _) = service
                .submit(tiny_job(tenant))
                .expect("terminal jobs must not hold budget");
            admitted += 1;
            let done = service.wait(probe);
            prop_assert_eq!(done.state, JobState::Completed);
            prop_assert_eq!(done.digest, digests[tenant as usize]);
        }

        // the service counters saw exactly what the mirror saw
        prop_assert_eq!(tracer.counter(Counter::JobsAdmitted), admitted);
        prop_assert_eq!(tracer.counter(Counter::JobsRejected), rejected);

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
