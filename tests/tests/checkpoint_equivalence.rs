//! PR 6 headline suite: **bit-identical checkpoint/resume** pinned by
//! crash injection, on all three backends.
//!
//! Each `*_crash_resume_*` test is its own harness: the parent process
//! computes the uninterrupted reference run in-process, then re-execs
//! the test binary twice — once in the `crash` role (runs with
//! checkpointing and `abort()`s from the `on_snapshot` hook at a
//! randomized snapshot ordinal, exactly like `scaling_live --crash-at`)
//! and once in the `resume` role (picks up the latest snapshot from the
//! content-addressed store and runs to completion, writing its digest
//! and BENCH artifact to disk). The parent then compares the resumed
//! outputs **byte-for-byte** against the uninterrupted reference:
//! estimator moments, recorded sample streams, correction pairs, and
//! the BENCH JSON built by the shared `uq_bench` emitter.
//!
//! The bit-parity regime matches `speculation_conformance.rs`: the
//! two-level tight-ridge hierarchy, one chain per level, load balancing
//! off, recording on, single worker. Two levels matter for checkpoint
//! *transparency* — with deeper hierarchies the quiesce pause can
//! reorder a mid-level rank's interleaving of own-chain steps and
//! nested serve legs, reassigning session substreams; with two levels
//! the serving chains are base chains, so a pause cannot move any
//! serve off its substream (DESIGN.md §7). The runtime test crashes a
//! run with speculation enabled and asserts the snapshot itself
//! recorded speculative activity, covering the killed-mid-speculation
//! case required by the issue.
//!
//! The quiesce-barrier tests mirror the conformance suite's invariance
//! checks: checkpointing on vs off is bit-identical on the
//! deterministic schedule, and statistically inert on a multi-worker
//! schedule where in-flight speculative serves are drained at every
//! barrier.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use uq_bench::BenchJson;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::estimator::{run_sequential_ckpt, CheckpointSpec};
use uq_mlmcmc::store::fnv1a;
use uq_mlmcmc::{LevelFactory, MlmcmcConfig, MlmcmcReport, RunStore};
use uq_parallel::scheduler::ParallelLevelReport;
use uq_parallel::{
    run_parallel_ckpt, run_runtime, run_runtime_ckpt, ParallelCheckpoint, ParallelConfig,
    RuntimeConfig, Tracer,
};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

// ---------------------------------------------------------------------
// crash-injection harness (child-process re-exec)
// ---------------------------------------------------------------------

const ROLE_ENV: &str = "UQ_CKPT_ROLE";
const DIR_ENV: &str = "UQ_CKPT_DIR";
const CRASH_ENV: &str = "UQ_CKPT_CRASH_AT";

/// The role this process plays for the current test, if re-exec'd.
fn role() -> Option<String> {
    env::var(ROLE_ENV).ok()
}

fn harness_dir() -> PathBuf {
    PathBuf::from(env::var(DIR_ENV).expect("crash-harness child without UQ_CKPT_DIR"))
}

fn crash_at() -> usize {
    env::var(CRASH_ENV)
        .expect("crash-harness child without UQ_CKPT_CRASH_AT")
        .parse()
        .expect("UQ_CKPT_CRASH_AT must be a snapshot ordinal")
}

/// Randomized kill point: which snapshot ordinal the crash child aborts
/// at. Derived from the parent pid so repeated suite runs exercise
/// different cuts while a single run stays reproducible end-to-end
/// (the same `k` is passed to both children through the environment).
fn kill_point(base: usize) -> usize {
    base + (std::process::id() as usize % 3)
}

/// Re-exec this test binary running exactly `test_name` in `role`.
fn spawn_role(test_name: &str, role: &str, dir: &Path, crash_at: usize) -> std::process::Output {
    Command::new(env::current_exe().expect("no current_exe"))
        .args([test_name, "--exact", "--nocapture"])
        .env(ROLE_ENV, role)
        .env(DIR_ENV, dir)
        .env(CRASH_ENV, crash_at.to_string())
        .output()
        .expect("cannot spawn crash-harness child")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = env::temp_dir().join(format!("uq-ckpt-eq-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("cannot create harness dir");
    dir
}

/// Drive the full kill→resume cycle for one backend test and compare
/// the resumed run's digest + BENCH bytes against the reference.
fn run_crash_cycle(test_name: &str, tag: &str, base_kill: usize, digest: &str, bench: &str) {
    let dir = fresh_dir(tag);
    let k = kill_point(base_kill);

    let crash = spawn_role(test_name, "crash", &dir, k);
    assert!(
        !crash.status.success(),
        "crash child must die at snapshot {k}, got: {}",
        String::from_utf8_lossy(&crash.stdout)
    );
    let store = RunStore::open(dir.join("store")).expect("store must survive the crash");
    assert!(
        store
            .latest_snapshot(None)
            .expect("manifest must stay readable after the crash")
            .is_some(),
        "crashed run must have persisted at least one snapshot"
    );

    let resume = spawn_role(test_name, "resume", &dir, k);
    assert!(
        resume.status.success(),
        "resume child failed:\n{}\n{}",
        String::from_utf8_lossy(&resume.stdout),
        String::from_utf8_lossy(&resume.stderr)
    );

    let resumed_digest = fs::read_to_string(dir.join("digest.txt")).expect("resume digest");
    let resumed_bench = fs::read_to_string(dir.join("bench.json")).expect("resume bench");
    assert_eq!(
        resumed_digest, digest,
        "kill at snapshot {k} → resume must reproduce the uninterrupted digest bit-for-bit"
    );
    assert_eq!(
        resumed_bench, bench,
        "kill at snapshot {k} → resume must reproduce the BENCH artifact byte-for-byte"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn write_outputs(dir: &Path, digest: &str, bench: &str) {
    fs::write(dir.join("digest.txt"), digest).expect("write digest");
    fs::write(dir.join("bench.json"), bench).expect("write bench");
}

// ---------------------------------------------------------------------
// digests and BENCH artifacts (logical state only; eval counters and
// timing are excluded for the parallel backends, where a resumed run's
// counters legitimately restart)
// ---------------------------------------------------------------------

fn push_bits(s: &mut String, tag: &str, v: &[f64]) {
    s.push_str(tag);
    for x in v {
        s.push_str(&format!(" {:016x}", x.to_bits()));
    }
    s.push('\n');
}

fn push_pairs(s: &mut String, pairs: &[(Vec<f64>, Vec<f64>)]) {
    for (c, f) in pairs {
        push_bits(s, "pair_coarse", c);
        push_bits(s, "pair_fine", f);
    }
}

fn sequential_digest(report: &MlmcmcReport) -> String {
    let mut s = String::new();
    for l in &report.levels {
        s.push_str(&format!(
            "level {} n {} evals {} acc {:016x} iact {:016x}\n",
            l.level,
            l.n_samples,
            l.evaluations,
            l.acceptance_rate.to_bits(),
            l.iact.to_bits()
        ));
        push_bits(&mut s, "mean", &l.mean_correction);
        push_bits(&mut s, "var", &l.var_correction);
        for t in &l.theta_samples {
            push_bits(&mut s, "theta", t);
        }
        for q in &l.qoi_samples {
            push_bits(&mut s, "qoi", q);
        }
        push_pairs(&mut s, &l.correction_pairs);
    }
    s
}

fn parallel_digest(levels: &[ParallelLevelReport]) -> String {
    let mut s = String::new();
    for l in levels {
        s.push_str(&format!("level {} n {}\n", l.level, l.n_samples));
        push_bits(&mut s, "mean", &l.mean_correction);
        push_bits(&mut s, "var", &l.var_correction);
        for t in &l.theta_samples {
            push_bits(&mut s, "theta", t);
        }
        push_pairs(&mut s, &l.correction_pairs);
    }
    s
}

/// The BENCH artifact a resumed run must reproduce byte-for-byte: a
/// pure function of the final estimator state, built with the same
/// shared emitter as `results/BENCH_PR6.json`.
fn bench_string(
    backend: &str,
    seed: u64,
    levels: &[(usize, Vec<f64>, Vec<f64>)],
    estimate: &[f64],
) -> String {
    let bits = |v: &[f64]| -> String {
        let b: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        format!("{b:?}")
    };
    let items: Vec<String> = levels
        .iter()
        .map(|(n, m, v)| {
            format!(
                "{{ \"n\": {n}, \"mean_bits\": {}, \"var_bits\": {} }}",
                bits(m),
                bits(v)
            )
        })
        .collect();
    let mut j = BenchJson::new();
    j.field("pr", 6)
        .field_str("suite", "checkpoint_equivalence")
        .field_str("backend", backend)
        .field("seed", seed)
        .array("levels", &items)
        .field("estimate", format!("{estimate:?}"));
    j.finish()
}

fn parallel_bench(backend: &str, seed: u64, levels: &[ParallelLevelReport]) -> String {
    let rows: Vec<(usize, Vec<f64>, Vec<f64>)> = levels
        .iter()
        .map(|l| {
            (
                l.n_samples,
                l.mean_correction.clone(),
                l.var_correction.clone(),
            )
        })
        .collect();
    let mut estimate = vec![0.0; levels[0].mean_correction.len()];
    for l in levels {
        for (t, m) in estimate.iter_mut().zip(&l.mean_correction) {
            *t += m;
        }
    }
    bench_string(backend, seed, &rows, &estimate)
}

// ---------------------------------------------------------------------
// sequential driver
// ---------------------------------------------------------------------

const SEQ_SEED: u64 = 9001;
const SEQ_EVERY: usize = 70;

fn sequential_config() -> MlmcmcConfig {
    let mut config = MlmcmcConfig::new(vec![400, 200]);
    config.burn_in = vec![30, 20];
    config.record_samples = true;
    config
}

fn sequential_hash() -> u64 {
    fnv1a(b"checkpoint_equivalence sequential ridge v1")
}

#[test]
fn sequential_crash_resume_is_bit_identical() {
    match role().as_deref() {
        Some("crash") => {
            let store = RunStore::open(harness_dir().join("store")).expect("open store");
            let k = crash_at();
            let hook = move |n: usize, _hash: &str| {
                if n == k {
                    std::process::abort();
                }
            };
            let ckpt = CheckpointSpec {
                store: &store,
                config_hash: sequential_hash(),
                every: SEQ_EVERY,
                on_snapshot: Some(&hook),
            };
            run_sequential_ckpt(&Ridge, &sequential_config(), SEQ_SEED, Some(&ckpt), None);
            unreachable!("crash child must abort before the run completes");
        }
        Some("resume") => {
            let dir = harness_dir();
            let store = RunStore::open(dir.join("store")).expect("open store");
            let (_, snap) = store
                .latest_snapshot(Some(sequential_hash()))
                .expect("manifest readable")
                .expect("crashed run left a snapshot");
            let report =
                run_sequential_ckpt(&Ridge, &sequential_config(), SEQ_SEED, None, Some(&snap));
            let rows: Vec<(usize, Vec<f64>, Vec<f64>)> = report
                .levels
                .iter()
                .map(|l| {
                    (
                        l.n_samples,
                        l.mean_correction.clone(),
                        l.var_correction.clone(),
                    )
                })
                .collect();
            let bench = bench_string("sequential", SEQ_SEED, &rows, &report.expectation());
            write_outputs(&dir, &sequential_digest(&report), &bench);
        }
        _ => {
            let reference = run_sequential_ckpt(&Ridge, &sequential_config(), SEQ_SEED, None, None);
            let rows: Vec<(usize, Vec<f64>, Vec<f64>)> = reference
                .levels
                .iter()
                .map(|l| {
                    (
                        l.n_samples,
                        l.mean_correction.clone(),
                        l.var_correction.clone(),
                    )
                })
                .collect();
            let bench = bench_string("sequential", SEQ_SEED, &rows, &reference.expectation());
            run_crash_cycle(
                "sequential_crash_resume_is_bit_identical",
                "seq",
                1,
                &sequential_digest(&reference),
                &bench,
            );
        }
    }
}

// ---------------------------------------------------------------------
// thread scheduler
// ---------------------------------------------------------------------

const THREAD_SEED: u64 = 33;
const THREAD_EVERY: usize = 40;

fn thread_config() -> ParallelConfig {
    let mut config = ParallelConfig::new(vec![300, 500], vec![1, 1]);
    config.burn_in = vec![30, 20];
    config.seed = THREAD_SEED;
    config.load_balancing = false;
    config.record_samples = true;
    config
}

fn thread_hash() -> u64 {
    fnv1a(b"checkpoint_equivalence thread ridge v1")
}

#[test]
fn thread_crash_resume_is_bit_identical() {
    match role().as_deref() {
        Some("crash") => {
            let store = RunStore::open(harness_dir().join("store")).expect("open store");
            let k = crash_at();
            let snaps = AtomicUsize::new(0);
            let hook = move |_done: usize, _hash: &str| {
                if snaps.fetch_add(1, Ordering::SeqCst) + 1 == k {
                    std::process::abort();
                }
            };
            let ckpt = ParallelCheckpoint {
                store: &store,
                config_hash: thread_hash(),
                every: THREAD_EVERY,
                on_snapshot: Some(&hook),
                stop: None,
            };
            run_parallel_ckpt(
                &Ridge,
                &thread_config(),
                &Tracer::disabled(),
                Some(&ckpt),
                None,
            );
            unreachable!("crash child must abort before the run completes");
        }
        Some("resume") => {
            let dir = harness_dir();
            let store = RunStore::open(dir.join("store")).expect("open store");
            let (_, snap) = store
                .latest_snapshot(Some(thread_hash()))
                .expect("manifest readable")
                .expect("crashed run left a snapshot");
            let report = run_parallel_ckpt(
                &Ridge,
                &thread_config(),
                &Tracer::disabled(),
                None,
                Some(&snap),
            );
            write_outputs(
                &dir,
                &parallel_digest(&report.levels),
                &parallel_bench("thread", THREAD_SEED, &report.levels),
            );
        }
        _ => {
            let reference =
                uq_parallel::run_parallel(&Ridge, &thread_config(), &Tracer::disabled());
            run_crash_cycle(
                "thread_crash_resume_is_bit_identical",
                "thread",
                1,
                &parallel_digest(&reference.levels),
                &parallel_bench("thread", THREAD_SEED, &reference.levels),
            );
        }
    }
}

// ---------------------------------------------------------------------
// cooperative runtime (killed mid-speculation)
// ---------------------------------------------------------------------

const RUNTIME_SEED: u64 = 21;
const RUNTIME_EVERY: usize = 25;

/// Deterministic single-worker runtime config on the ridge with
/// **speculation enabled**, so the crashed run is killed while the
/// ledger carries speculative state.
fn runtime_cfg() -> RuntimeConfig {
    let mut config = RuntimeConfig::new(vec![300, 500], vec![1, 1]);
    config.base.burn_in = vec![30, 20];
    config.base.seed = RUNTIME_SEED;
    config.base.load_balancing = false;
    config.base.record_samples = true;
    config.base.speculation = true;
    config.n_workers = 1;
    config.collector_shards = 1;
    config
}

fn runtime_hash() -> u64 {
    fnv1a(b"checkpoint_equivalence runtime ridge v1")
}

#[test]
fn runtime_crash_mid_speculation_resume_is_bit_identical() {
    match role().as_deref() {
        Some("crash") => {
            let store = RunStore::open(harness_dir().join("store")).expect("open store");
            let k = crash_at();
            let snaps = AtomicUsize::new(0);
            let hook = move |_done: usize, _hash: &str| {
                if snaps.fetch_add(1, Ordering::SeqCst) + 1 == k {
                    std::process::abort();
                }
            };
            let ckpt = ParallelCheckpoint {
                store: &store,
                config_hash: runtime_hash(),
                every: RUNTIME_EVERY,
                on_snapshot: Some(&hook),
                stop: None,
            };
            run_runtime_ckpt(
                &Ridge,
                &runtime_cfg(),
                &Tracer::disabled(),
                Some(&ckpt),
                None,
            );
            unreachable!("crash child must abort before the run completes");
        }
        Some("resume") => {
            let dir = harness_dir();
            let store = RunStore::open(dir.join("store")).expect("open store");
            let (_, snap) = store
                .latest_snapshot(Some(runtime_hash()))
                .expect("manifest readable")
                .expect("crashed run left a snapshot");
            // The kill point is late enough that the quiesced cut must
            // already have seen speculative serving — this is the
            // killed-mid-speculation regime the issue pins.
            let ledger = snap
                .ledger
                .as_ref()
                .expect("runtime snapshot carries the ledger");
            assert!(
                ledger.stats.spec_launched > 0,
                "snapshot must record speculative activity at the cut: {:?}",
                ledger.stats
            );
            let rt = run_runtime_ckpt(
                &Ridge,
                &runtime_cfg(),
                &Tracer::disabled(),
                None,
                Some(&snap),
            );
            write_outputs(
                &dir,
                &parallel_digest(&rt.report.levels),
                &parallel_bench("runtime", RUNTIME_SEED, &rt.report.levels),
            );
        }
        _ => {
            let reference = run_runtime(&Ridge, &runtime_cfg(), &Tracer::disabled());
            assert!(
                reference.phonebook.ledger.spec_hits > 0,
                "fixture must exercise speculation: {:?}",
                reference.phonebook.ledger
            );
            run_crash_cycle(
                "runtime_crash_mid_speculation_resume_is_bit_identical",
                "runtime",
                4,
                &parallel_digest(&reference.report.levels),
                &parallel_bench("runtime", RUNTIME_SEED, &reference.report.levels),
            );
        }
    }
}

// ---------------------------------------------------------------------
// quiesce-barrier invariance (satellite): checkpoints must not move a
// bit on the deterministic schedule, and must stay statistically inert
// when in-flight speculative serves are drained at every barrier
// ---------------------------------------------------------------------

#[test]
fn runtime_checkpoint_on_off_is_bit_identical_on_the_ridge() {
    let dir = fresh_dir("quiesce-onoff");
    let store = RunStore::open(dir.join("store")).expect("open store");
    let snaps = AtomicUsize::new(0);
    let hook = |_done: usize, _hash: &str| {
        snaps.fetch_add(1, Ordering::SeqCst);
    };
    let ckpt = ParallelCheckpoint {
        store: &store,
        config_hash: fnv1a(b"quiesce on/off ridge"),
        every: 40,
        on_snapshot: Some(&hook),
        stop: None,
    };
    let with = run_runtime_ckpt(
        &Ridge,
        &runtime_cfg(),
        &Tracer::disabled(),
        Some(&ckpt),
        None,
    );
    let without = run_runtime(&Ridge, &runtime_cfg(), &Tracer::disabled());
    assert!(
        snaps.load(Ordering::SeqCst) > 0,
        "the checkpointed run must actually quiesce"
    );
    assert!(
        with.phonebook.ledger.spec_launched > 0,
        "speculation must be in flight around the barriers: {:?}",
        with.phonebook.ledger
    );
    assert_eq!(
        parallel_digest(&with.report.levels),
        parallel_digest(&without.report.levels),
        "quiesce barriers must not move one bit of the recorded streams"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_barrier_preserves_the_ridge_statistics() {
    // multi-worker schedule: barriers land while speculative serves are
    // genuinely in flight; committed-or-discarded, they must leave the
    // tight-ridge correction mean exactly on FINE − COARSE
    let dir = fresh_dir("quiesce-stats");
    let store = RunStore::open(dir.join("store")).expect("open store");
    let mut config = RuntimeConfig::new(vec![30_000, 15_000], vec![2, 2]);
    config.base.burn_in = vec![1_000, 500];
    config.base.seed = 4242;
    config.base.load_balancing = false;
    config.base.record_samples = false;
    config.base.speculation = true;
    config.n_workers = 4;
    config.collector_shards = 1;
    let snaps = AtomicUsize::new(0);
    let hook = |_done: usize, _hash: &str| {
        snaps.fetch_add(1, Ordering::SeqCst);
    };
    let ckpt = ParallelCheckpoint {
        store: &store,
        config_hash: fnv1a(b"quiesce statistics ridge"),
        every: 1_000,
        on_snapshot: Some(&hook),
        stop: None,
    };
    let rt = run_runtime_ckpt(&Ridge, &config, &Tracer::disabled(), Some(&ckpt), None);
    assert!(snaps.load(Ordering::SeqCst) > 0, "barriers must fire");
    let ledger = rt.phonebook.ledger;
    assert!(
        ledger.spec_hits > 0 && ledger.spec_misses > 0,
        "both speculation outcomes must be exercised across barriers: {ledger:?}"
    );
    let corr = rt.report.levels[1].mean_correction[0];
    assert!(
        (corr - (FINE_MEAN - COARSE_MEAN)).abs() < 0.03,
        "checkpoint barriers must be statistically inert on the ridge: corr = {corr}"
    );
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// checkpoint under multi-tenancy (PR 10): the quiesce barrier with two
// active tenants persists a resume point for each, and each resumes
// independently, bit-identically
// ---------------------------------------------------------------------

#[test]
fn two_tenant_service_snapshots_both_and_resumes_each_independently() {
    use std::time::{Duration, Instant};
    use uq_mlmcmc::ledger::tenant_seed;
    use uq_parallel::{levels_digest, Counter, JobSpec, JobState, Service, ServiceConfig};

    let mk = |n0: usize, n1: usize| {
        let mut config = RuntimeConfig::new(vec![n0, n1], vec![1, 1]);
        config.base.burn_in = vec![30, 20];
        config.base.seed = RUNTIME_SEED;
        config.base.load_balancing = false;
        config.base.record_samples = true;
        config.base.speculation = true;
        config.n_workers = 1;
        config.collector_shards = 1;
        config
    };
    // different shapes so the two tenants' barriers interleave freely
    let cfg_a = mk(1_500, 500);
    let cfg_b = mk(2_000, 700);
    let reference = |cfg: &RuntimeConfig, tenant: u64| {
        let mut at_seed = cfg.clone();
        at_seed.base.seed = tenant_seed(cfg.base.seed, tenant);
        levels_digest(
            &run_runtime(&Ridge, &at_seed, &Tracer::disabled())
                .report
                .levels,
        )
    };
    let ref_a = reference(&cfg_a, 1);
    let ref_b = reference(&cfg_b, 2);
    assert_ne!(ref_a, ref_b, "tenants must live in disjoint namespaces");

    let dir = fresh_dir("two-tenant-svc");
    let tracer = Tracer::new();
    let mut svc = ServiceConfig::new(dir.join("stores"));
    svc.lanes = 2;
    svc.pool_workers = 2;
    svc.quantum = 5; // frequent barriers: the preempt lands early
    let service = Service::start(svc, &tracer);
    service.register_model("ridge", std::sync::Arc::new(Ridge));

    let job = |tenant: u64, cfg: &RuntimeConfig| JobSpec {
        tenant,
        priority: 1.0,
        model: "ridge".to_string(),
        config: cfg.clone(),
        deadline: 0.0,
    };
    let (a, _) = service.submit(job(1, &cfg_a)).expect("admit tenant 1");
    let (b, _) = service.submit(job(2, &cfg_b)).expect("admit tenant 2");

    // both tenants are live on the pool; wait until each has persisted
    // at least one barrier cut, then preempt both
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let sa = service.status(a).expect("job a exists");
        let sb = service.status(b).expect("job b exists");
        if sa.snapshots >= 1 && sb.snapshots >= 1 {
            break;
        }
        for s in [&sa, &sb] {
            assert!(
                matches!(s.state, JobState::Queued | JobState::Running),
                "tenant {} reached {:?} before the shared cut",
                s.tenant,
                s.state
            );
        }
        assert!(Instant::now() < deadline, "barrier cuts never materialized");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(service.preempt(a), "tenant 1 must be running to preempt");
    assert!(service.preempt(b), "tenant 2 must be running to preempt");

    let parked_a = service.wait(a);
    let parked_b = service.wait(b);
    for parked in [&parked_a, &parked_b] {
        assert_eq!(
            parked.state,
            JobState::Preempted,
            "tenant {} did not park at its barrier",
            parked.tenant
        );
        assert!(
            parked.snapshots >= 1,
            "tenant {} preempted without a resume point",
            parked.tenant
        );
    }
    assert_eq!(tracer.counter(Counter::JobsPreempted), 2);

    // resume tenant 1 alone: it must complete bit-identically while
    // tenant 2 stays parked, untouched
    assert!(service.resume(a));
    let done_a = service.wait(a);
    assert_eq!(done_a.state, JobState::Completed);
    assert_eq!(
        done_a.digest, ref_a,
        "tenant 1 resume through the shared-cut snapshot changed the bits"
    );
    assert_eq!(
        service.status(b).expect("job b exists").state,
        JobState::Preempted,
        "resuming tenant 1 must not disturb tenant 2's parked state"
    );

    // now tenant 2, independently
    assert!(service.resume(b));
    let done_b = service.wait(b);
    assert_eq!(done_b.state, JobState::Completed);
    assert_eq!(
        done_b.digest, ref_b,
        "tenant 2 resume through the shared-cut snapshot changed the bits"
    );

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
