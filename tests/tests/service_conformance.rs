//! Tenant-isolation conformance suite for the **multi-tenant UQ
//! service** (`uq_parallel::service`): a job routed through a loaded
//! service must be bit-for-bit identical to the same job run standalone
//! on every backend — the service is a dispatcher, never a statistical
//! actor.
//!
//! The pinned regime is the deterministic one shared with
//! `net_conformance.rs`: one chain per level, load balancing off,
//! per-sample recording on, speculation on, one worker per job. In that
//! regime digests over (means, variances, thetas, correction pairs) are
//! pure functions of the seed, so:
//!
//! * a serviced job (seed re-derived through [`tenant_seed`]) must match
//!   a standalone run at that tenant seed on the thread scheduler, the
//!   cooperative runtime and the loopback net transport — *while a
//!   competing tenant is actively running on the same pool*;
//! * a preempt/resume cycle through the quiesce-barrier snapshot must
//!   land on the very same digest (preemption exactness);
//! * the same holds for a remote client driving the service over TCP,
//!   which also exercises cancel, budget denial and admission denial on
//!   the wire.
//!
//! Fixture: the tight-ridge two-level Gaussian hierarchy (fine
//! `N(0.35, 0.12²)`, coarse `N(0, 0.15²)`, `ρ = 2`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::ledger::tenant_seed;
use uq_mlmcmc::LevelFactory;
use uq_parallel::{
    levels_digest, run_net_worker, run_parallel, run_runtime, JobSpec, JobState, NetDriver,
    NetDriverOptions, NetWorkerOptions, ParallelConfig, RuntimeConfig, Service, ServiceClient,
    ServiceConfig, Tracer,
};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// The deterministic bit-parity regime on the ridge.
fn config(n0: usize, n1: usize, seed: u64) -> ParallelConfig {
    let mut config = ParallelConfig::new(vec![n0, n1], vec![1, 1]);
    config.burn_in = vec![30, 20];
    config.seed = seed;
    config.load_balancing = false;
    config.record_samples = true;
    config.speculation = true;
    config
}

fn job(tenant: u64, priority: f64, base: ParallelConfig) -> JobSpec {
    JobSpec {
        tenant,
        priority,
        model: "ridge".to_string(),
        config: RuntimeConfig {
            base,
            n_workers: 1,
            collector_shards: 1,
        },
        deadline: 0.0,
    }
}

/// Standalone reference digest at the job's *effective* (tenant) seed —
/// what the service must reproduce bit-for-bit.
fn standalone_digest(base: &ParallelConfig, tenant: u64) -> u64 {
    let mut at_tenant_seed = base.clone();
    at_tenant_seed.seed = tenant_seed(base.seed, tenant);
    levels_digest(&run_parallel(&Ridge, &at_tenant_seed, &Tracer::disabled()).levels)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uq-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn serviced_job_matches_standalone_on_every_backend_under_contention() {
    let base_a = config(300, 100, 10_2026);
    let base_b = config(500, 150, 10_2026); // same base seed, different tenant
    let seed_a = tenant_seed(base_a.seed, 1);
    let seed_b = tenant_seed(base_b.seed, 2);
    assert_ne!(seed_a, seed_b, "tenants must get disjoint namespaces");

    // reference digests at the tenant seeds, across all three backends
    let thread_a = standalone_digest(&base_a, 1);
    let thread_b = standalone_digest(&base_b, 2);
    assert_ne!(thread_a, thread_b, "distinct tenants, distinct streams");

    let mut rt_cfg = base_a.clone();
    rt_cfg.seed = seed_a;
    let runtime_a = {
        let cfg = RuntimeConfig {
            base: rt_cfg.clone(),
            n_workers: 1,
            collector_shards: 1,
        };
        levels_digest(&run_runtime(&Ridge, &cfg, &Tracer::disabled()).report.levels)
    };
    assert_eq!(
        thread_a, runtime_a,
        "in-process backends must agree before the service means anything"
    );
    let net_a = {
        let driver = NetDriver::bind("127.0.0.1:0").expect("bind loopback");
        let addr = driver.local_addr().to_string();
        let worker = std::thread::spawn(move || {
            let opts = NetWorkerOptions {
                connect: addr,
                join: false,
                leave_at_barrier: None,
            };
            run_net_worker(Arc::new(Ridge), &opts, &Tracer::disabled())
        });
        let opts = NetDriverOptions {
            workers: 1,
            every: 0,
            store: None,
            config_hash: 0,
        };
        let report = driver.run(Arc::new(Ridge), &rt_cfg, &opts, &Tracer::disabled());
        worker.join().expect("net worker panicked");
        levels_digest(&report.report.levels)
    };
    assert_eq!(thread_a, net_a, "net transport diverged from the backends");

    // now the service, with both tenants active on the same pool
    let dir = fresh_dir("conform");
    let tracer = Tracer::new();
    let mut svc_cfg = ServiceConfig::new(&dir);
    svc_cfg.lanes = 2;
    svc_cfg.pool_workers = 2;
    let service = Service::start(svc_cfg, &tracer);
    service.register_model("ridge", Arc::new(Ridge));

    let (job_a, _) = service.submit(job(1, 1.0, base_a)).expect("admit tenant 1");
    let (job_b, _) = service.submit(job(2, 3.0, base_b)).expect("admit tenant 2");
    let done_a = service.wait(job_a);
    let done_b = service.wait(job_b);

    assert_eq!(done_a.state, JobState::Completed);
    assert_eq!(done_b.state, JobState::Completed);
    assert_eq!(
        done_a.seed, seed_a,
        "service must run in the tenant namespace"
    );
    assert_eq!(done_b.seed, seed_b);
    assert_eq!(
        done_a.digest, thread_a,
        "tenant 1 through the loaded service diverged from standalone"
    );
    assert_eq!(
        done_b.digest, thread_b,
        "tenant 2 through the loaded service diverged from standalone"
    );
    assert!(
        (done_a.estimate[0] - FINE_MEAN).abs() < 0.15,
        "estimate {} drifted from the fine mean",
        done_a.estimate[0]
    );

    // measured usage feeds the fair-share books per tenant
    let usage = service.per_tenant_serves();
    assert_eq!(usage.len(), 2);
    assert!(usage.iter().all(|&(_, serves)| serves > 0));

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn preempt_resume_cycle_is_bit_exact() {
    let base = config(2_000, 600, 11_2026);
    let reference = standalone_digest(&base, 7);

    let dir = fresh_dir("preempt");
    let tracer = Tracer::new();
    let mut svc_cfg = ServiceConfig::new(&dir);
    svc_cfg.lanes = 1;
    svc_cfg.pool_workers = 1;
    svc_cfg.quantum = 5; // frequent barriers so the preempt lands early
    let service = Service::start(svc_cfg, &tracer);
    service.register_model("ridge", Arc::new(Ridge));

    let (id, _) = service.submit(job(7, 1.0, base)).expect("admit");
    // preempt as soon as the job is running; the stop flag is consumed
    // at the next quiesce barrier
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = service.status(id).expect("job exists");
        match status.state {
            JobState::Running => {
                if service.preempt(id) {
                    break;
                }
            }
            JobState::Queued => {}
            other => panic!("job reached {other:?} before the preempt"),
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(1));
    }

    let parked = service.wait(id);
    assert_eq!(
        parked.state,
        JobState::Preempted,
        "a preempted job parks instead of completing"
    );
    assert!(
        parked.snapshots >= 1,
        "preemption must leave a resume point behind"
    );
    assert_eq!(parked.digest, 0, "no digest before completion");

    assert!(service.resume(id), "a parked job must be resumable");
    let done = service.wait(id);
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(
        done.digest, reference,
        "preempt/resume through the snapshot changed the bits"
    );

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_client_lifecycle_cancel_and_denials() {
    let base = config(250, 80, 12_2026);
    let reference = standalone_digest(&base, 42);

    let dir = fresh_dir("remote");
    let tracer = Tracer::new();
    let mut svc_cfg = ServiceConfig::new(&dir);
    svc_cfg.max_jobs_per_tenant = 2;
    svc_cfg.lanes = 1;
    svc_cfg.pool_workers = 1;
    svc_cfg.quantum = 5;
    let mut service = Service::start(svc_cfg, &tracer);
    service.register_model("ridge", Arc::new(Ridge));
    let addr = service.listen("127.0.0.1:0").expect("listen").to_string();

    let mut client = ServiceClient::connect(&addr).expect("connect");

    // unknown model is denied over the wire
    let mut bogus = job(42, 1.0, base.clone());
    bogus.model = "no-such-model".to_string();
    let denied = client.submit(bogus).expect("io").expect_err("must deny");
    assert!(denied.contains("unknown model"), "got: {denied}");

    // an impossible deadline is denied by DES admission
    let mut rushed = job(42, 1.0, base.clone());
    rushed.deadline = 1e-12;
    let denied = client.submit(rushed).expect("io").expect_err("must deny");
    assert!(denied.contains("admission denied"), "got: {denied}");

    // a real submit completes with the standalone digest
    let (id, predicted) = client
        .submit(job(42, 1.0, base.clone()))
        .expect("io")
        .expect("admit");
    assert!(predicted > 0.0, "admission must predict a positive tte");
    let done = client.wait(id).expect("io");
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(
        done.digest, reference,
        "remote job diverged from standalone"
    );

    // budget: tenant 42 has one terminal job; two more — long enough to
    // still be live when the next submit lands — fill the budget, the
    // third is turned away
    let long = config(60_000, 20_000, 12_2026);
    let (second, _) = client
        .submit(job(42, 1.0, long.clone()))
        .expect("io")
        .expect("admit");
    let (third, _) = client
        .submit(job(42, 1.0, long.clone()))
        .expect("io")
        .expect("admit");
    let denied = client
        .submit(job(42, 1.0, base.clone()))
        .expect("io")
        .expect_err("budget exhausted");
    assert!(denied.contains("budget"), "got: {denied}");

    // cancel always frees the budget — whichever state the jobs are in
    assert!(client.cancel(second).expect("io"));
    assert!(client.cancel(third).expect("io"));
    for id in [second, third] {
        let st = client.wait(id).expect("io");
        assert_eq!(st.state, JobState::Cancelled, "job {id}");
    }
    let (again, _) = client
        .submit(job(42, 1.0, base))
        .expect("io")
        .expect("budget freed by the cancels");
    assert!(client.cancel(again).expect("io"));

    // unknown ids answer cleanly
    assert!(client.status(9_999).expect("io").is_none());
    assert!(!client.cancel(9_999).expect("io"));
    assert!(!client.resume(9_999).expect("io"));

    client.bye().expect("orderly goodbye");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
