//! End-to-end integration: random field → FEM → Bayesian posterior →
//! multilevel MCMC, at a scale suitable for CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_fem::problem::{PoissonFactory, ProposalKind};
use uq_fem::PoissonHierarchy;
use uq_mlmcmc::{run_sequential, MlmcmcConfig};

fn small_factory() -> PoissonFactory {
    let hierarchy = PoissonHierarchy::new(12, vec![8, 16, 32], 77);
    PoissonFactory::new(hierarchy, vec![6, 3])
}

#[test]
fn three_level_poisson_pipeline_runs_green() {
    let factory = small_factory();
    let config = MlmcmcConfig::new(vec![300, 60, 15]).with_burn_in(vec![60, 20, 5]);
    let mut rng = StdRng::seed_from_u64(11);
    let report = run_sequential(&factory, &config, &mut rng);
    assert_eq!(report.levels.len(), 3);
    // QOI is the kappa field on the 33x33 grid
    let est = report.expectation();
    assert_eq!(est.len(), 1089);
    assert!(
        est.iter().all(|v| v.is_finite() && *v > 0.0),
        "kappa must stay positive"
    );
    // eval accounting: coarse level carries the most evaluations
    assert!(report.levels[0].evaluations > report.levels[1].evaluations);
    assert!(report.levels[1].evaluations > report.levels[2].evaluations);
}

#[test]
fn correction_variance_decays_across_levels() {
    let factory = small_factory();
    let config = MlmcmcConfig::new(vec![500, 120, 30]).with_burn_in(vec![100, 30, 10]);
    let mut rng = StdRng::seed_from_u64(13);
    let report = run_sequential(&factory, &config, &mut rng);
    // representative central component
    let rep = 16 * 33 + 16;
    let v0 = report.levels[0].var_correction[rep];
    let v1 = report.levels[1].var_correction[rep];
    assert!(
        v1 < v0,
        "multilevel variance reduction failed: V[Y_1] = {v1} vs V[Q_0] = {v0}"
    );
}

#[test]
fn posterior_mean_field_beats_prior_mean_field() {
    // the recovered field must be closer to the truth than the prior mean
    // (kappa = 1 everywhere)
    let factory = small_factory();
    let truth = factory.hierarchy().true_qoi();
    // the level-correction terms are exp-scale and heavy-tailed, so the
    // estimator needs a few thousand coarse samples before it reliably
    // beats the prior; still ~2 s at opt-level 2
    let config = MlmcmcConfig::new(vec![6000, 900, 150]).with_burn_in(vec![600, 120, 30]);
    let mut rng = StdRng::seed_from_u64(17);
    let report = run_sequential(&factory, &config, &mut rng);
    let est = report.expectation();
    let err = |f: &dyn Fn(usize) -> f64| -> f64 {
        truth
            .iter()
            .enumerate()
            .map(|(k, t)| (t - f(k)).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let est_err = err(&|k| est[k]);
    let prior_err = err(&|_| 1.0);
    assert!(
        est_err < prior_err,
        "posterior mean (err {est_err}) should beat the prior mean (err {prior_err})"
    );
}

#[test]
fn proposal_kinds_all_run() {
    for kind in [
        ProposalKind::Pcn { beta: 0.1 },
        ProposalKind::RandomWalk { sd: 0.05 },
        ProposalKind::AdaptiveMetropolis { sd: 0.05 },
    ] {
        let mut factory = small_factory();
        factory.proposal_kind = kind;
        let config = MlmcmcConfig::new(vec![100, 20]).with_burn_in(vec![20, 5]);
        let mut rng = StdRng::seed_from_u64(19);
        let report = run_sequential(&factory, &config, &mut rng);
        assert!(
            report.expectation().iter().all(|v| v.is_finite()),
            "{kind:?}"
        );
    }
}
