//! Protocol-version compatibility guard for the net wire format
//! (`uq_parallel::net`), alongside `golden_snapshot_guard.rs`: a frame
//! committed to the repository at `PROTOCOL_VERSION = 1` must keep
//! decoding — bit-for-bit — on every future revision of the codec. Any
//! change to the `Msg`/`Frame` encodings or the frame header must
//! either keep these bytes valid or bump `net::PROTOCOL_VERSION` (and
//! add a new golden alongside this one); silently re-interpreting
//! frames across a version skew is the failure mode this test catches.
//!
//! Regenerate (only after an *intentional* protocol bump) with:
//! `UQ_WRITE_GOLDEN=1 cargo test -p uq-tests --test golden_frame_guard`

use uq_mlmcmc::coupled::{ChainState, CoarseSample};
use uq_mlmcmc::ledger::{LedgerLease, ServeOutcome};
use uq_mlmcmc::store::ChainCkpt;
use uq_parallel::scheduler::Msg;
use uq_parallel::{decode_frame, encode_frame, Frame, ParallelConfig, PROTOCOL_VERSION};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/golden_frame_v1.bin");

fn cs(theta: f64, ld: f64) -> CoarseSample {
    CoarseSample::plain(vec![theta], ld, vec![theta])
}

/// The pinned frame: an `Assign` carrying every payload class the
/// protocol migrates — the run configuration, a resumable chain
/// checkpoint, and leftover messages including a full ledger serve
/// round-trip (`Serve` with its lease, `ServeDone` with its outcome).
fn golden() -> Frame {
    let mut config = ParallelConfig::new(vec![400, 150], vec![1, 1]);
    config.burn_in = vec![30, 20];
    config.seed = 0x5EED_0000_0009;
    config.record_samples = true;
    config.speculation = true;
    let anchor = CoarseSample {
        theta: vec![0.125, -2.5],
        log_density: -3.75,
        qoi: vec![0.125],
        sub_anchor: Some(Box::new(cs(-0.5, -1.0))),
        mate: Some(Box::new(cs(0.25, -0.125))),
    };
    let ckpt = ChainCkpt {
        rank: 4,
        level: 1,
        burnin_left: 0,
        producing: true,
        done_levels: vec![true, false],
        shard_rr: 0,
        rng: [1, 2, 3, 0xFFFF_FFFF_FFFF_FFFF],
        chain: ChainState {
            steps: 421,
            accepted: 137,
            theta: vec![0.75, -0.375],
            log_density: -2.25,
            qoi: vec![0.75],
            anchor: Some(anchor.clone()),
            last_coarse: Some(cs(0.0625, -4.5)),
            last_pairing: None,
            source: None,
        },
    };
    let leftovers = vec![
        (
            4,
            1,
            Msg::Serve {
                reply_to: 5,
                lease: Box::new(LedgerLease {
                    session_seed: 0xDEAD_BEEF,
                    serves: 41,
                    pairing: Some(cs(0.875, -1.5)),
                    anchor: cs(-0.875, -2.0),
                }),
                speculative: true,
            },
        ),
        (
            4,
            5,
            Msg::ServeDone {
                requester: 5,
                level: 0,
                session: 0xDEAD_BEEF,
                serves: 42,
                outcome: Box::new(ServeOutcome {
                    proposal: cs(0.9375, -1.25),
                    pairing: cs(-0.9375, -1.75),
                    diverged: true,
                }),
                speculative: false,
            },
        ),
        (4, 0, Msg::StopProducing { level: 0 }),
    ];
    Frame::Assign {
        n_ranks: 6,
        ranks: vec![4],
        config,
        ckpts: vec![ckpt],
        leftovers,
    }
}

#[test]
fn committed_golden_frame_still_decodes() {
    let expected = encode_frame(&golden());
    if std::env::var("UQ_WRITE_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &expected).unwrap();
    }
    let bytes = std::fs::read(GOLDEN_PATH)
        .expect("committed golden frame missing — see module docs to regenerate");
    // the protocol version baked into the committed header must match
    // the compiled one: bumping PROTOCOL_VERSION without regenerating
    // the golden (or vice versa) fails here by construction
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        PROTOCOL_VERSION,
        "committed frame header version differs from net::PROTOCOL_VERSION"
    );
    let frame = decode_frame(&bytes)
        .expect("protocol break: the committed v1 golden frame no longer decodes");
    // Frame carries no PartialEq (Msg is not comparable); byte equality
    // after re-encode is the invariant the transport relies on anyway
    assert_eq!(
        encode_frame(&frame),
        bytes,
        "re-encoding the golden frame no longer reproduces the committed bytes"
    );
    assert_eq!(
        expected, bytes,
        "the codec now encodes the golden frame differently — bump PROTOCOL_VERSION"
    );
}
