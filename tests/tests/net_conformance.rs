//! Cross-transport conformance suite for the **multi-process TCP
//! transport** (`uq_parallel::net`): running the exact same role
//! protocols over loopback sockets must be bit-for-bit identical to the
//! in-process backends — the transport is a delivery mechanism, never a
//! statistical actor.
//!
//! The pinned regime is the deterministic one from
//! `speculation_conformance.rs`: one chain per level, load balancing
//! off, per-sample recording on, speculation on. There the thread
//! scheduler, the cooperative runtime and a net run split across N
//! processes all produce identical per-sample traces, so the digests
//! over (means, variances, thetas, correction pairs) must agree exactly.
//!
//! Elastic membership is exercised on the same fixture with
//! checkpointing on: one worker departs at the first barrier (its ranks
//! and phonebook sessions migrate to the driver), a joiner is admitted
//! at the second (ranks donated back out), a second joiner is never
//! admitted and must be turned away cleanly — and the run still
//! completes with the correct estimate.
//!
//! Fixture: the tight-ridge two-level Gaussian hierarchy (fine
//! `N(0.35, 0.12²)`, coarse `N(0, 0.15²)`, `ρ = 2`).

use std::sync::Arc;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::store::RunStore;
use uq_mlmcmc::LevelFactory;
use uq_parallel::{
    levels_digest, run_net_worker, run_parallel, run_runtime, NetDriver, NetDriverOptions,
    NetWorkerOptions, ParallelConfig, RuntimeConfig, Tracer,
};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// The deterministic bit-parity regime on the ridge.
fn config(n0: usize, n1: usize, seed: u64) -> ParallelConfig {
    let mut config = ParallelConfig::new(vec![n0, n1], vec![1, 1]);
    config.burn_in = vec![30, 20];
    config.seed = seed;
    config.load_balancing = false;
    config.record_samples = true;
    config.speculation = true;
    config
}

/// Run a net universe on loopback: one driver plus one thread per
/// worker spec, all inside this process (the CI smoke jobs cover real
/// separate OS processes via `scaling_live --net`).
fn run_net(
    config: &ParallelConfig,
    opts: NetDriverOptions,
    workers: Vec<NetWorkerOptions>,
) -> (uq_parallel::NetReport, Vec<uq_parallel::NetWorkerReport>) {
    let driver = NetDriver::bind("127.0.0.1:0").expect("bind loopback");
    let addr = driver.local_addr().to_string();
    let worker_handles: Vec<_> = workers
        .into_iter()
        .map(|mut w| {
            w.connect = addr.clone();
            std::thread::spawn(move || run_net_worker(Arc::new(Ridge), &w, &Tracer::disabled()))
        })
        .collect();
    let report = driver.run(Arc::new(Ridge), config, &opts, &Tracer::disabled());
    let worker_reports = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    (report, worker_reports)
}

fn worker() -> NetWorkerOptions {
    NetWorkerOptions {
        connect: String::new(),
        join: false,
        leave_at_barrier: None,
    }
}

#[test]
fn net_two_workers_is_bit_identical_to_in_process() {
    let config = config(300, 100, 2_2026);
    let thread_digest = levels_digest(&run_parallel(&Ridge, &config, &Tracer::disabled()).levels);
    let mut rt_config = RuntimeConfig::new(
        config.samples_per_level.clone(),
        config.chains_per_level.clone(),
    );
    rt_config.base = config.clone();
    rt_config.n_workers = 1;
    rt_config.collector_shards = 1;
    let runtime_digest = levels_digest(
        &run_runtime(&Ridge, &rt_config, &Tracer::disabled())
            .report
            .levels,
    );
    assert_eq!(
        thread_digest, runtime_digest,
        "in-process backends must agree before the net run means anything"
    );

    let opts = NetDriverOptions {
        workers: 2,
        every: 0,
        store: None,
        config_hash: 0,
    };
    let (net, worker_reports) = run_net(&config, opts, vec![worker(), worker()]);
    assert_eq!(
        levels_digest(&net.report.levels),
        thread_digest,
        "net run over loopback TCP diverged from the in-process backends"
    );
    assert_eq!(net.report.n_ranks, config.n_ranks());
    assert_eq!(net.migrations, 0);
    let mut hosted: Vec<usize> = worker_reports
        .iter()
        .flat_map(|r| r.ranks.clone())
        .collect();
    hosted.sort_unstable();
    assert_eq!(hosted, vec![4, 5], "each worker hosts one controller rank");
    assert!(worker_reports.iter().all(|r| !r.retired));
}

#[test]
fn net_elastic_leave_and_join_completes_with_correct_estimate() {
    let dir = std::env::temp_dir().join(format!("uq-net-elastic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(RunStore::open(&dir).expect("open store"));

    let config = config(900, 150, 7_2026);
    let opts = NetDriverOptions {
        workers: 2,
        every: 25,
        store: Some(store),
        config_hash: 0x9_e37,
    };
    // worker 0 departs at the first checkpoint barrier; its rank is
    // re-hosted on the driver, which makes it donatable to the joiner
    // at the second barrier. The late joiner never gets a donation
    // (the driver hosts nothing after the first one) and must be
    // turned away with a clean Bye at run end.
    let mut leaver = worker();
    leaver.leave_at_barrier = Some(1);
    let mut joiner = worker();
    joiner.join = true;
    let mut late_joiner = worker();
    late_joiner.join = true;
    let (net, worker_reports) = run_net(&config, opts, vec![leaver, worker(), joiner, late_joiner]);

    assert_eq!(
        net.migrations, 2,
        "one rank re-hosted at the departure, one donated to the joiner"
    );
    let est = net.report.expectation()[0];
    assert!(
        (est - FINE_MEAN).abs() < 0.1,
        "estimate {est} drifted from the fine mean {FINE_MEAN} across migrations"
    );
    assert_eq!(net.report.levels[0].n_samples, 900);
    assert_eq!(net.report.levels[1].n_samples, 150);

    let leaver_report = &worker_reports[0];
    assert!(leaver_report.retired, "departing worker must retire");
    let joined: Vec<_> = worker_reports[2..]
        .iter()
        .filter(|r| !r.ranks.is_empty())
        .collect();
    assert_eq!(joined.len(), 1, "exactly one joiner must be admitted");
    assert_eq!(
        joined[0].ranks, leaver_report.ranks,
        "the donated rank is the one the departing worker gave up"
    );
    assert!(
        worker_reports[2..]
            .iter()
            .any(|r| r.ranks.is_empty() && !r.retired),
        "the never-admitted joiner must be turned away cleanly"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
