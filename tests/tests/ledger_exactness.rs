//! Statistical exactness harness for the per-requester rewind ledger
//! (PR 4): the served-marginal test the pre-ledger pairing fails, the
//! fine-marginal exactness the rewind preserves, the unbiased ledger
//! pairing on all three backends, and bit-for-bit parity between the
//! sequential ledger session and the single-worker cooperative runtime.
//! The legacy proposal-pairing biases this suite used to carry as
//! `#[ignore]`d fixtures now live in `bias_fixtures.rs` with tolerance
//! bands, run as their own CI step.
//!
//! The fixture is a **tight-ridge** two-level Gaussian hierarchy: the
//! fine posterior `N(0.35, 0.12²)` sits 2.3 coarse standard deviations
//! from the coarse posterior `N(0, 0.15²)` with a small subsampling rate
//! `ρ = 2`, so the `O(contraction^ρ)` effects the ledger removes are
//! large enough to detect with modest sample counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::coupled::{build_chain_stack, ChainCoarseSource, MlChain};
use uq_mlmcmc::ledger::{session_seed, PairingMode};
use uq_mlmcmc::{run_sequential, LevelFactory, MlmcmcConfig};
use uq_parallel::scheduler::controller_seed;
use uq_parallel::{run_parallel, run_runtime, ParallelConfig, RuntimeConfig, Tracer};

fn stats_mean(v: &[f64]) -> f64 {
    uq_mcmc::stats::mean(v)
}

fn stats_sd(v: &[f64]) -> f64 {
    uq_mcmc::stats::variance(v).sqrt()
}

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// A coupled ridge chain with the sequential ledger session.
fn ridge_chain() -> MlChain {
    build_chain_stack(&Ridge, 1)
}

/// Run `n` steps and collect (fine state, proposal mate, ledger mate).
fn run_streams(n: usize, burn: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut chain = ridge_chain();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut fine, mut proposal, mut pairing) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..n + burn {
        chain.step(&mut rng);
        if i >= burn {
            fine.push(chain.state().theta[0]);
            proposal.push(chain.last_coarse().expect("coupled").theta[0]);
            pairing.push(chain.last_pairing().expect("coupled").theta[0]);
        }
    }
    (fine, proposal, pairing)
}

#[test]
fn ledger_pairing_stream_matches_coarse_marginal() {
    // the served-marginal test: the ledger's pairing track is an
    // autonomous K^ρ subchain, so its marginal must be the COARSE
    // posterior N(0, 0.15²) even though every proposal is generated from
    // fine-chain anchors concentrated 2.3σ away
    let (fine, _, pairing) = run_streams(60_000, 2_000, 41);
    let pairing_mean = stats_mean(&pairing);
    let pairing_sd = stats_sd(&pairing);
    assert!(
        (pairing_mean - COARSE_MEAN).abs() < 0.02,
        "pairing-track mean {pairing_mean} must match the coarse target {COARSE_MEAN}"
    );
    assert!(
        (pairing_sd - COARSE_SD).abs() < 0.02,
        "pairing-track sd {pairing_sd} must match the coarse target {COARSE_SD}"
    );
    // and the exactness rewind keeps the fine marginal exact
    let fine_mean = stats_mean(&fine);
    assert!(
        (fine_mean - FINE_MEAN).abs() < 0.02,
        "fine-chain mean {fine_mean} must stay exact at {FINE_MEAN}"
    );
}

#[test]
fn ledger_correction_unbiased_on_all_three_backends() {
    // E[Q_1 - Q_0] on the ridge is 0.35 - 0.0; with proposal pairing the
    // measured correction collapses toward ~0.35·contraction² instead.
    // All three backends must agree with the truth under ledger pairing.
    let truth = FINE_MEAN - COARSE_MEAN;

    let config = MlmcmcConfig::new(vec![40_000, 20_000])
        .with_burn_in(vec![2_000, 1_000])
        .with_pairing(PairingMode::Ledger);
    let mut rng = StdRng::seed_from_u64(9);
    let seq = run_sequential(&Ridge, &config, &mut rng);
    let seq_corr = seq.levels[1].mean_correction[0];
    assert!(
        (seq_corr - truth).abs() < 0.03,
        "sequential ledger correction {seq_corr} vs truth {truth}"
    );

    let mut pconfig = ParallelConfig::new(vec![30_000, 15_000], vec![1, 1]);
    pconfig.burn_in = vec![1_000, 500];
    assert_eq!(pconfig.pairing, PairingMode::Ledger, "parallel default");
    let par = run_parallel(&Ridge, &pconfig, &Tracer::disabled());
    let par_corr = par.levels[1].mean_correction[0];
    assert!(
        (par_corr - truth).abs() < 0.03,
        "thread-scheduler ledger correction {par_corr} vs truth {truth}"
    );

    let mut rconfig = RuntimeConfig::new(vec![30_000, 15_000], vec![1, 1]);
    rconfig.base.burn_in = vec![1_000, 500];
    rconfig.n_workers = 2;
    let rt = run_runtime(&Ridge, &rconfig, &Tracer::disabled());
    let rt_corr = rt.report.levels[1].mean_correction[0];
    assert!(
        (rt_corr - truth).abs() < 0.03,
        "runtime ledger correction {rt_corr} vs truth {truth}"
    );
    // the runtime's ledger must have actually been exercised
    assert!(rt.phonebook.ledger.serves > 15_000);
    assert!(rt.phonebook.ledger.sessions >= 1);
}

#[test]
fn tight_ridge_coupled_chain_mixes_under_rewind_serving() {
    // the second ROADMAP defect: pre-ledger, the phonebook served
    // independent stationary coarse draws, an independence proposal whose
    // acceptance on this ridge is ~e^{-7} — the fine chain froze at its
    // starting point (0.0) and never reached the fine posterior (0.35).
    // With per-requester rewind serving the proposals walk from each
    // requester's own anchor and the chain must mix to the fine target.
    let mut rconfig = RuntimeConfig::new(vec![8_000, 12_000], vec![1, 1]);
    rconfig.base.burn_in = vec![500, 500];
    rconfig.base.record_samples = true;
    rconfig.n_workers = 2;
    let rt = run_runtime(&Ridge, &rconfig, &Tracer::disabled());
    let fine: Vec<f64> = rt.report.levels[1]
        .theta_samples
        .iter()
        .map(|t| t[0])
        .collect();
    let mean = stats_mean(&fine);
    let sd = stats_sd(&fine);
    assert!(
        (mean - FINE_MEAN).abs() < 0.03,
        "runtime fine marginal mean {mean} must reach {FINE_MEAN}"
    );
    assert!(sd > 0.05, "the chain must actually move (sd {sd})");

    let mut pconfig = ParallelConfig::new(vec![8_000, 12_000], vec![1, 1]);
    pconfig.burn_in = vec![500, 500];
    pconfig.record_samples = true;
    let par = run_parallel(&Ridge, &pconfig, &Tracer::disabled());
    let fine: Vec<f64> = par.levels[1].theta_samples.iter().map(|t| t[0]).collect();
    let mean = stats_mean(&fine);
    assert!(
        (mean - FINE_MEAN).abs() < 0.03,
        "thread-scheduler fine marginal mean {mean} must reach {FINE_MEAN}"
    );
}

#[test]
fn sequential_ledger_is_bit_identical_to_single_worker_runtime() {
    // the parity pin: a single-worker runtime run (deterministic
    // scheduling, LB off) must reproduce, bit for bit, a sequential
    // coupled chain driven with the runtime requester's RNG stream and
    // the same ledger session seed — serves are pure functions of the
    // lease, so the two backends walk identical trajectories.
    let seed = 1234u64;
    let n = 400usize;
    let burn = vec![30usize, 20];

    let mut rconfig = RuntimeConfig::new(vec![200, n], vec![1, 1]);
    rconfig.base.burn_in = burn.clone();
    rconfig.base.seed = seed;
    rconfig.base.load_balancing = false;
    rconfig.base.record_samples = true;
    rconfig.n_workers = 1;
    rconfig.collector_shards = 1;
    let rt = run_runtime(&Ridge, &rconfig, &Tracer::disabled());
    let runtime_theta: Vec<f64> = rt.report.levels[1]
        .theta_samples
        .iter()
        .map(|t| t[0])
        .collect();
    assert_eq!(runtime_theta.len(), n);

    // rank layout: root 0, phonebook 1, collectors 2..4, controllers 4
    // (level 0) and 5 (level 1) — the level-1 requester is rank 5
    let requester_rank = 5usize;
    let factory = Ridge;
    let coarse_chain = MlChain::base(
        factory.problem(0),
        factory.proposal(0),
        factory.starting_point(0),
    );
    let source = ChainCoarseSource::new(coarse_chain, RHO).with_session_seed(session_seed(
        seed,
        0,
        requester_rank as u64,
    ));
    let mut fine = MlChain::coupled(
        1,
        factory.problem(1),
        Box::new(source),
        factory.proposal(1),
        1,
        factory.starting_point(1),
    );
    let mut rng = StdRng::seed_from_u64(controller_seed(seed, requester_rank));
    let mut seq_theta = Vec::with_capacity(n);
    for i in 0..burn[1] + n {
        fine.step(&mut rng);
        if i >= burn[1] {
            seq_theta.push(fine.state().theta[0]);
        }
    }
    assert_eq!(
        runtime_theta, seq_theta,
        "single-worker runtime and sequential ledger must agree bit-for-bit"
    );
}
