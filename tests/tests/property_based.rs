//! Cross-crate property-based tests (proptest) on the core numerical
//! invariants.

use proptest::prelude::*;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::fft::{fft, ifft, Complex};
use uq_linalg::sparse::CooMatrix;
use uq_linalg::vector;
use uq_mcmc::stats::RunningMoments;

proptest! {
    #[test]
    fn dot_is_symmetric(x in prop::collection::vec(-1e3f64..1e3, 1..32)) {
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        prop_assert!((vector::dot(&x, &y) - vector::dot(&y, &x)).abs() < 1e-9);
    }

    #[test]
    fn cauchy_schwarz(
        x in prop::collection::vec(-1e2f64..1e2, 2..16),
        seed in 0u64..1000,
    ) {
        let y: Vec<f64> = x.iter().enumerate()
            .map(|(i, v)| v * ((i as f64 + seed as f64) * 0.7).sin())
            .collect();
        let lhs = vector::dot(&x, &y).abs();
        let rhs = vector::norm2(&x) * vector::norm2(&y);
        prop_assert!(lhs <= rhs * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn fft_roundtrip_random(re in prop::collection::vec(-1e3f64..1e3, 1..8)) {
        // pad to a power of two
        let n = re.len().next_power_of_two().max(2);
        let mut x: Vec<Complex> = re.iter().map(|&r| Complex::new(r, -r * 0.5)).collect();
        x.resize(n, Complex::ZERO);
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn coo_to_csr_preserves_matvec(
        entries in prop::collection::vec((0usize..8, 0usize..8, -10f64..10.0), 0..64),
        x in prop::collection::vec(-5f64..5.0, 8),
    ) {
        let mut coo = CooMatrix::new(8, 8);
        // dense accumulation as the reference
        let mut dense = vec![0.0f64; 64];
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
            dense[r * 8 + c] += v;
        }
        let csr = coo.to_csr();
        let y = csr.matvec(&x);
        for r in 0..8 {
            let expect: f64 = (0..8).map(|c| dense[r * 8 + c] * x[c]).sum();
            prop_assert!((y[r] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_of_gram_matrix_succeeds(
        rows in prop::collection::vec(prop::collection::vec(-2f64..2.0, 3), 3)
    ) {
        // A = B Bᵀ + I is always SPD
        let b = DenseMatrix::from_fn(3, 3, |i, j| rows[i][j]);
        let mut a = b.matmul(&b.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let l = a.cholesky();
        prop_assert!(l.is_some());
        let l = l.unwrap();
        let back = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn running_moments_match_batch_any_split(
        xs in prop::collection::vec(-1e3f64..1e3, 2..64),
        split in 1usize..63,
    ) {
        let split = split.min(xs.len() - 1);
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert!((a.mean() - vector::mean(&xs)).abs() < 1e-6);
        prop_assert!((a.variance() - vector::variance(&xs)).abs() < 1e-4);
    }

    #[test]
    fn mh_chain_stays_in_support(seed in 0u64..50) {
        use rand::SeedableRng;
        use uq_mcmc::{Chain, ChainConfig, GaussianRandomWalk};
        use uq_mcmc::problem::FnProblem;
        // target supported on [0, 1] only
        let problem = FnProblem::new(1, |th: &[f64]| {
            if th[0] >= 0.0 && th[0] <= 1.0 { 0.0 } else { f64::NEG_INFINITY }
        });
        let mut chain = Chain::new(
            problem,
            GaussianRandomWalk::new(0.5),
            vec![0.5],
            ChainConfig::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        chain.run(200, &mut rng);
        for s in chain.samples() {
            prop_assert!((0.0..=1.0).contains(&s[0]));
        }
    }
}
