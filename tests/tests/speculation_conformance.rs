//! Cross-backend conformance suite for **speculative ledger serves**
//! (PR 5): a speculation committed on an anchor match must be
//! bit-identical to the real serve it replaces, and a discarded
//! speculation must leave no statistical trace.
//!
//! The regime where full-run bit-parity is provable — and asserted here —
//! is one chain per level with a level-0 serving stack on a
//! deterministic schedule (single-worker runtime; thread scheduler with
//! a single producer per collector): there a serve is a pure function of
//! its lease, so the answer a requester receives cannot depend on
//! whether it was precomputed. Deeper serving stacks and multi-worker
//! schedules reorder *which* session substream positions feed nested
//! serves, so for those the suite asserts the statistical invariant
//! instead: on the tight-ridge hierarchy the correction mean stays
//! exactly `FINE − COARSE` while hits and misses are both exercised.
//!
//! Fixture: the same tight-ridge two-level Gaussian hierarchy as
//! `ledger_exactness.rs` (fine `N(0.35, 0.12²)` 2.3 coarse standard
//! deviations from coarse `N(0, 0.15²)`, `ρ = 2`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::coupled::{ChainCoarseSource, MlChain};
use uq_mlmcmc::ledger::session_seed;
use uq_mlmcmc::LevelFactory;
use uq_parallel::scheduler::controller_seed;
use uq_parallel::{run_parallel, run_runtime, ParallelConfig, RuntimeConfig, Tracer};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// Deterministic single-worker runtime config on the ridge: one chain
/// per level, load balancing off, per-sample recording on.
fn runtime_config(n0: usize, n1: usize, seed: u64, speculation: bool) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(vec![n0, n1], vec![1, 1]);
    config.base.burn_in = vec![30, 20];
    config.base.seed = seed;
    config.base.load_balancing = false;
    config.base.record_samples = true;
    config.base.speculation = speculation;
    config.n_workers = 1;
    config.collector_shards = 1;
    config
}

fn level_theta(levels: &[uq_parallel::scheduler::ParallelLevelReport], level: usize) -> Vec<f64> {
    levels[level].theta_samples.iter().map(|t| t[0]).collect()
}

#[test]
fn runtime_speculation_on_off_is_bit_identical() {
    // single worker + single producer per level: the schedule is
    // deterministic and serves are pure functions of their lease, so
    // turning speculation on must not move one bit of either level's
    // recorded stream — while actually committing speculations
    let on = run_runtime(
        &Ridge,
        &runtime_config(300, 500, 21, true),
        &Tracer::disabled(),
    );
    let off = run_runtime(
        &Ridge,
        &runtime_config(300, 500, 21, false),
        &Tracer::disabled(),
    );
    assert_eq!(
        level_theta(&on.report.levels, 0),
        level_theta(&off.report.levels, 0),
        "level-0 stream must be bit-identical"
    );
    assert_eq!(
        level_theta(&on.report.levels, 1),
        level_theta(&off.report.levels, 1),
        "level-1 stream must be bit-identical"
    );
    assert_eq!(
        on.report.levels[1].mean_correction,
        off.report.levels[1].mean_correction
    );
    // the equality must be non-vacuous: speculations were committed on
    // one side and impossible on the other
    assert!(
        on.phonebook.ledger.spec_hits > 0,
        "speculative path not exercised: {:?}",
        on.phonebook.ledger
    );
    assert_eq!(off.phonebook.ledger.spec_launched, 0);
    assert_eq!(off.phonebook.ledger.spec_hits, 0);
}

#[test]
fn thread_scheduler_speculation_on_off_is_bit_identical() {
    // the thread scheduler's interleaving is OS-dependent, but with one
    // chain per level every recorded stream is schedule-independent:
    // the requester's serves are pure functions of its session stream
    // and the level-0 producer's own trajectory never depends on when
    // serves interleave (snapshot → serve → restore is exact). The
    // speculation switch must therefore not move a bit here either.
    let mk = |speculation: bool| {
        let mut config = ParallelConfig::new(vec![2_000, 3_000], vec![1, 1]);
        config.burn_in = vec![100, 60];
        config.seed = 33;
        config.load_balancing = false;
        config.record_samples = true;
        config.speculation = speculation;
        run_parallel(&Ridge, &config, &Tracer::disabled())
    };
    let on = mk(true);
    let off = mk(false);
    for level in 0..2 {
        assert_eq!(
            level_theta(&on.levels, level),
            level_theta(&off.levels, level),
            "level-{level} stream must be bit-identical across the speculation switch"
        );
        assert_eq!(
            on.levels[level].mean_correction,
            off.levels[level].mean_correction
        );
    }
}

#[test]
fn all_three_backends_agree_bit_for_bit_with_speculation_on() {
    // the PR-4 parity pin extended to the speculative pipeline: with
    // speculation enabled (the default), a single-worker runtime run, a
    // thread-scheduler run and a sequential replay of the requester's
    // session must walk identical level-1 trajectories. Rank layout of
    // both parallel backends: root 0, phonebook 1, collectors 2..4,
    // controllers 4 (level 0) and 5 (level 1) — the requester is rank 5.
    let seed = 4321u64;
    let n = 400usize;
    let burn = vec![30usize, 20];

    let mut rconfig = runtime_config(200, n, seed, true);
    rconfig.base.burn_in = burn.clone();
    let rt = run_runtime(&Ridge, &rconfig, &Tracer::disabled());
    let runtime_theta = level_theta(&rt.report.levels, 1);
    assert_eq!(runtime_theta.len(), n);
    assert!(rt.phonebook.ledger.spec_launched > 0);

    let mut pconfig = ParallelConfig::new(vec![200, n], vec![1, 1]);
    pconfig.burn_in = burn.clone();
    pconfig.seed = seed;
    pconfig.load_balancing = false;
    pconfig.record_samples = true;
    let par = run_parallel(&Ridge, &pconfig, &Tracer::disabled());
    let thread_theta = level_theta(&par.levels, 1);

    // sequential replay: the requester rank's RNG stream driving a
    // coupled chain whose coarse source pins the same ledger session
    let requester_rank = 5usize;
    let factory = Ridge;
    let coarse_chain = MlChain::base(
        factory.problem(0),
        factory.proposal(0),
        factory.starting_point(0),
    );
    let source = ChainCoarseSource::new(coarse_chain, RHO).with_session_seed(session_seed(
        seed,
        0,
        requester_rank as u64,
    ));
    let mut fine = MlChain::coupled(
        1,
        factory.problem(1),
        Box::new(source),
        factory.proposal(1),
        1,
        factory.starting_point(1),
    );
    let mut rng = StdRng::seed_from_u64(controller_seed(seed, requester_rank));
    let mut seq_theta = Vec::with_capacity(n);
    for i in 0..burn[1] + n {
        fine.step(&mut rng);
        if i >= burn[1] {
            seq_theta.push(fine.state().theta[0]);
        }
    }

    assert_eq!(
        runtime_theta, seq_theta,
        "runtime (speculating) vs sequential ledger must agree bit-for-bit"
    );
    assert_eq!(
        thread_theta, seq_theta,
        "thread scheduler (speculating) vs sequential ledger must agree bit-for-bit"
    );
}

#[test]
fn speculation_hits_and_misses_leave_the_served_marginal_exact() {
    // statistical invariance on the tight ridge, in the regime where
    // bit-parity is NOT provable (4 workers, racing speculations): the
    // correction mean under the ledger pairing equals FINE − COARSE only
    // if the served pairing stream still has marginal exactly π_0, no
    // matter how many speculations were committed or discarded. The
    // config must actually exercise both paths.
    let truth = FINE_MEAN - COARSE_MEAN;
    let mut config = RuntimeConfig::new(vec![30_000, 15_000], vec![1, 1]);
    config.base.burn_in = vec![1_000, 500];
    config.n_workers = 4;
    let rt = run_runtime(&Ridge, &config, &Tracer::disabled());
    let corr = rt.report.levels[1].mean_correction[0];
    assert!(
        (corr - truth).abs() < 0.03,
        "correction mean {corr} drifted from {truth} under racing speculation"
    );
    let ledger = rt.phonebook.ledger;
    assert!(ledger.spec_hits > 0, "hits must be exercised: {ledger:?}");
    assert!(
        ledger.spec_misses > 0,
        "misses must be exercised: {ledger:?}"
    );
    assert!(ledger.serves > 15_000);
    // accounting sanity: every commit was a launched speculation, and
    // hit fraction + diverged fraction stay inside [0, 1]
    assert!(ledger.spec_hits <= ledger.spec_launched);
    assert!((0.0..=1.0).contains(&ledger.hit_rate()));
    assert!((0.0..=1.0).contains(&ledger.diverged_fraction()));
}
