//! Integration test host crate (tests live in tests/tests/).

#![deny(rustdoc::broken_intra_doc_links)]
