//! Circulant-embedding sampling of stationary Gaussian processes
//! (Dietrich & Newsam 1997), the algorithm behind `dune-randomfield`.
//!
//! A stationary covariance on a regular grid yields a (block-)Toeplitz
//! covariance matrix which embeds into a (block-)circulant one; the
//! circulant is diagonalized by the FFT, so exact samples cost
//! `O(M log M)`. We provide the 1-D sampler and the 2-D sampler on
//! structured grids for the separable exponential kernel.

use rand::Rng;
use uq_linalg::fft::{fft2, fft_in_place, Complex};
use uq_linalg::prob::standard_normal;

/// Exact sampler for a stationary Gaussian process on a 1-D uniform grid.
#[derive(Clone, Debug)]
pub struct Circulant1d {
    n: usize,
    m: usize,
    /// Square roots of the circulant eigenvalues.
    sqrt_eig: Vec<f64>,
}

impl Circulant1d {
    /// Build the embedding for `n` grid points with spacing `h` and
    /// covariance function `cov(distance)`.
    ///
    /// Returns `None` if the minimal even embedding has a negative
    /// eigenvalue (does not happen for the exponential kernel).
    pub fn new(n: usize, h: f64, cov: impl Fn(f64) -> f64) -> Option<Self> {
        assert!(n >= 2, "Circulant1d: need at least two grid points");
        // embedding size: next power of two ≥ 2(n-1)
        let m = (2 * (n - 1)).next_power_of_two();
        let mut c = vec![Complex::ZERO; m];
        for (j, cj) in c.iter_mut().enumerate() {
            // wrap-around distance on the circulant
            let d = j.min(m - j) as f64 * h;
            *cj = Complex::new(cov(d), 0.0);
        }
        fft_in_place(&mut c, false);
        let mut sqrt_eig = Vec::with_capacity(m);
        for v in &c {
            let lam = v.re;
            if lam < -1e-10 {
                return None;
            }
            sqrt_eig.push(lam.max(0.0).sqrt());
        }
        Some(Self { n, m, sqrt_eig })
    }

    /// Number of target grid points.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draw two independent samples of the process (the real and imaginary
    /// parts of one complex FFT — both are returned, none are wasted).
    pub fn sample_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<f64>, Vec<f64>) {
        let m = self.m;
        let scale = 1.0 / (m as f64).sqrt();
        let mut z: Vec<Complex> = (0..m)
            .map(|k| {
                let a = standard_normal(rng);
                let b = standard_normal(rng);
                Complex::new(a, b) * (self.sqrt_eig[k] * scale)
            })
            .collect();
        fft_in_place(&mut z, false);
        let first = z[..self.n].iter().map(|v| v.re).collect();
        let second = z[..self.n].iter().map(|v| v.im).collect();
        (first, second)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.sample_pair(rng).0
    }
}

/// Exact sampler for a stationary Gaussian field on a 2-D structured grid
/// with a separable covariance `cov(dx, dy)`.
#[derive(Clone, Debug)]
pub struct Circulant2d {
    nx: usize,
    ny: usize,
    mx: usize,
    my: usize,
    sqrt_eig: Vec<f64>,
}

impl Circulant2d {
    /// Build the embedding for an `nx × ny` grid with spacings `hx`, `hy`.
    pub fn new(
        nx: usize,
        ny: usize,
        hx: f64,
        hy: f64,
        cov: impl Fn(f64, f64) -> f64,
    ) -> Option<Self> {
        assert!(nx >= 2 && ny >= 2, "Circulant2d: need at least 2×2 grid");
        let mx = (2 * (nx - 1)).next_power_of_two();
        let my = (2 * (ny - 1)).next_power_of_two();
        let mut c = vec![Complex::ZERO; mx * my];
        for i in 0..mx {
            let dx = i.min(mx - i) as f64 * hx;
            for j in 0..my {
                let dy = j.min(my - j) as f64 * hy;
                c[i * my + j] = Complex::new(cov(dx, dy), 0.0);
            }
        }
        fft2(&mut c, mx, my, false);
        let mut sqrt_eig = Vec::with_capacity(mx * my);
        for v in &c {
            let lam = v.re;
            if lam < -1e-8 {
                return None;
            }
            sqrt_eig.push(lam.max(0.0).sqrt());
        }
        Some(Self {
            nx,
            ny,
            mx,
            my,
            sqrt_eig,
        })
    }

    /// Grid shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Draw one row-major `nx × ny` sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mtot = self.mx * self.my;
        let scale = 1.0 / (mtot as f64).sqrt();
        let mut z: Vec<Complex> = (0..mtot)
            .map(|k| {
                let a = standard_normal(rng);
                let b = standard_normal(rng);
                Complex::new(a, b) * (self.sqrt_eig[k] * scale)
            })
            .collect();
        fft2(&mut z, self.mx, self.my, false);
        let mut out = Vec::with_capacity(self.nx * self.ny);
        for i in 0..self.nx {
            for j in 0..self.ny {
                out.push(z[i * self.my + j].re);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn expo(l: f64) -> impl Fn(f64) -> f64 {
        move |d: f64| (-d / l).exp()
    }

    #[test]
    fn embedding_exists_for_exponential() {
        assert!(Circulant1d::new(33, 1.0 / 32.0, expo(0.15)).is_some());
        assert!(Circulant1d::new(128, 1.0 / 127.0, expo(0.05)).is_some());
    }

    #[test]
    fn sample_has_unit_variance() {
        let c = Circulant1d::new(17, 1.0 / 16.0, expo(0.15)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n_rep = 4000;
        let mut acc = 0.0;
        for _ in 0..n_rep {
            let (a, b) = c.sample_pair(&mut rng);
            acc += a[8] * a[8] + b[8] * b[8];
        }
        let var = acc / (2 * n_rep) as f64;
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn sample_covariance_matches_kernel() {
        let l = 0.2;
        let h = 1.0 / 16.0;
        let c = Circulant1d::new(17, h, expo(l)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n_rep = 8000;
        let (i, j) = (4, 9);
        let mut acc = 0.0;
        for _ in 0..n_rep {
            let (a, b) = c.sample_pair(&mut rng);
            acc += a[i] * a[j] + b[i] * b[j];
        }
        let cov = acc / (2 * n_rep) as f64;
        let exact = (-((j - i) as f64 * h) / l).exp();
        assert!((cov - exact).abs() < 0.05, "cov {cov}, exact {exact}");
    }

    #[test]
    fn pair_samples_are_uncorrelated() {
        let c = Circulant1d::new(9, 0.125, expo(0.3)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n_rep = 8000;
        let mut acc = 0.0;
        for _ in 0..n_rep {
            let (a, b) = c.sample_pair(&mut rng);
            acc += a[4] * b[4];
        }
        let cross = acc / n_rep as f64;
        assert!(cross.abs() < 0.05, "cross-correlation {cross}");
    }

    #[test]
    fn sample_2d_shape_and_variance() {
        let c = Circulant2d::new(9, 9, 0.125, 0.125, |dx, dy| (-(dx + dy) / 0.15).exp()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let s = c.sample(&mut rng);
        assert_eq!(s.len(), 81);
        let n_rep = 3000;
        let mut acc = 0.0;
        for _ in 0..n_rep {
            let s = c.sample(&mut rng);
            acc += s[40] * s[40];
        }
        let var = acc / n_rep as f64;
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn sample_2d_covariance_separable() {
        let l = 0.25;
        let c = Circulant2d::new(9, 9, 0.125, 0.125, move |dx, dy| (-(dx + dy) / l).exp()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n_rep = 8000;
        // points (2,2) and (2,5): distance 3 cells in y only
        let (p, q) = (2 * 9 + 2, 2 * 9 + 5);
        let mut acc = 0.0;
        for _ in 0..n_rep {
            let s = c.sample(&mut rng);
            acc += s[p] * s[q];
        }
        let cov = acc / n_rep as f64;
        let exact = (-(3.0 * 0.125) / l).exp();
        assert!((cov - exact).abs() < 0.06, "cov {cov}, exact {exact}");
    }
}
