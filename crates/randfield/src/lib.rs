//! # uq-randfield
//!
//! Gaussian random field generation for the Bayesian inverse problems in the
//! parallel MLMCMC reproduction. This crate replaces `dune-randomfield`:
//!
//! * [`kl`] — analytic Karhunen–Loève expansion of the exponential
//!   covariance kernel on `[0, 1]` (transcendental eigenvalue equations
//!   solved by bisection + Newton), tensorized to the 2-D separable
//!   exponential kernel and truncated to the `m` largest modes. The paper's
//!   Poisson model uses `m = 113` KL coefficients.
//! * [`circulant`] — the Dietrich–Newsam circulant-embedding sampler the
//!   original `dune-randomfield` is built on, provided both in 1-D and on
//!   2-D structured grids, used here for validation and as an alternative
//!   sampling path.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod circulant;
pub mod kl;

pub use kl::{Kl1d, KlField2d};
