//! Analytic Karhunen–Loève expansion of the exponential covariance kernel.
//!
//! For the 1-D kernel `C(s,t) = exp(-|s-t|/ℓ)` on `[-a, a]` the eigenpairs
//! are known in closed form up to the roots of transcendental equations
//! (Ghanem & Spanos): with `c = 1/ℓ`,
//!
//! * cosine modes: `ω` solves `c = ω·tan(ω a)`, eigenfunction
//!   `φ(t) = cos(ω t) / √(a + sin(2ωa)/(2ω))`,
//! * sine modes: `ω` solves `ω = -c·tan(ω a)`, eigenfunction
//!   `φ(t) = sin(ω t) / √(a - sin(2ωa)/(2ω))`,
//!
//! both with eigenvalue `λ = 2c / (ω² + c²)`. We work on `[0, 1]` via the
//! shift `t = x - 1/2`, `a = 1/2`. The 2-D separable exponential kernel
//! `exp(-(|Δx| + |Δy|)/ℓ)` has tensor-product eigenpairs
//! `λ_{ij} = λ_i λ_j`, `φ_{ij}(x, y) = φ_i(x) φ_j(y)`; [`KlField2d`]
//! truncates to the `m` largest, matching the paper's `m = 113` setup.

use uq_linalg::dense::DenseMatrix;
use uq_linalg::roots::bisect_refine;

/// Parity of a 1-D KL mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeKind {
    Cosine,
    Sine,
}

/// One eigenpair of the 1-D exponential kernel.
#[derive(Clone, Copy, Debug)]
pub struct Kl1dMode {
    /// Frequency `ω` of the eigenfunction.
    pub omega: f64,
    /// Eigenvalue `λ` (unit-variance kernel).
    pub lambda: f64,
    /// Cosine (even) or sine (odd) about the interval midpoint.
    pub kind: ModeKind,
    /// Normalization constant of the eigenfunction.
    norm: f64,
}

/// 1-D KL expansion of `exp(-|s-t|/ℓ)` on `[0, 1]` (unit variance).
#[derive(Clone, Debug)]
pub struct Kl1d {
    corr_len: f64,
    modes: Vec<Kl1dMode>,
}

const HALF: f64 = 0.5; // interval half-width a for [0,1]

impl Kl1d {
    /// Compute the `n_modes` leading eigenpairs for correlation length
    /// `corr_len`.
    ///
    /// # Panics
    /// Panics if `corr_len <= 0` or `n_modes == 0`.
    pub fn new(corr_len: f64, n_modes: usize) -> Self {
        assert!(corr_len > 0.0, "Kl1d: correlation length must be positive");
        assert!(n_modes > 0, "Kl1d: need at least one mode");
        let c = 1.0 / corr_len;
        let a = HALF;
        let pi = std::f64::consts::PI;
        let mut modes = Vec::with_capacity(n_modes);
        for n in 0..n_modes {
            let mode = if n % 2 == 0 {
                // cosine mode k = n/2: root of c - w tan(w a) in (kπ/a, (k+1/2)π/a)
                let k = (n / 2) as f64;
                let lo = k * pi / a + 1e-9;
                let hi = (k + 0.5) * pi / a - 1e-9;
                let f = |w: f64| c - w * (w * a).tan();
                let omega = bisect_refine(f, lo, hi);
                let norm = (a + (2.0 * omega * a).sin() / (2.0 * omega)).sqrt();
                Kl1dMode {
                    omega,
                    lambda: 2.0 * c / (omega * omega + c * c),
                    kind: ModeKind::Cosine,
                    norm,
                }
            } else {
                // sine mode k = (n-1)/2: root of w + c tan(w a) in ((k+1/2)π/a, (k+1)π/a)
                let k = ((n - 1) / 2) as f64;
                let lo = (k + 0.5) * pi / a + 1e-9;
                let hi = (k + 1.0) * pi / a - 1e-9;
                let f = |w: f64| w + c * (w * a).tan();
                let omega = bisect_refine(f, lo, hi);
                let norm = (a - (2.0 * omega * a).sin() / (2.0 * omega)).sqrt();
                Kl1dMode {
                    omega,
                    lambda: 2.0 * c / (omega * omega + c * c),
                    kind: ModeKind::Sine,
                    norm,
                }
            };
            modes.push(mode);
        }
        Self { corr_len, modes }
    }

    pub fn corr_len(&self) -> f64 {
        self.corr_len
    }

    pub fn n_modes(&self) -> usize {
        self.modes.len()
    }

    /// Eigenvalue of mode `k` (decreasing in `k`).
    pub fn lambda(&self, k: usize) -> f64 {
        self.modes[k].lambda
    }

    /// Evaluate eigenfunction `φ_k` at `x ∈ [0, 1]`.
    pub fn eval(&self, k: usize, x: f64) -> f64 {
        let m = &self.modes[k];
        let t = x - 0.5;
        match m.kind {
            ModeKind::Cosine => (m.omega * t).cos() / m.norm,
            ModeKind::Sine => (m.omega * t).sin() / m.norm,
        }
    }

    /// Mercer partial sum `Σ_k λ_k φ_k(s) φ_k(t)` — converges to the kernel.
    pub fn mercer_sum(&self, s: f64, t: f64) -> f64 {
        (0..self.n_modes())
            .map(|k| self.lambda(k) * self.eval(k, s) * self.eval(k, t))
            .sum()
    }
}

/// One retained 2-D tensor mode.
#[derive(Clone, Copy, Debug)]
pub struct Mode2d {
    /// 2-D eigenvalue `σ² λ_i λ_j`.
    pub lambda: f64,
    /// 1-D mode index in `x`.
    pub i: usize,
    /// 1-D mode index in `y`.
    pub j: usize,
}

/// Truncated 2-D KL expansion of a stationary Gaussian field
/// `log κ(x, θ) = Σ_k √λ_k φ_k(x) θ_k`, `θ_k ~ N(0, 1)` iid.
#[derive(Clone, Debug)]
pub struct KlField2d {
    kl1d: Kl1d,
    variance: f64,
    modes: Vec<Mode2d>,
}

impl KlField2d {
    /// Build the `m`-term expansion for correlation length `corr_len` and
    /// (marginal) variance `variance`.
    ///
    /// The paper's Poisson problem uses `corr_len = 0.15`, `variance = 1`,
    /// `m = 113`.
    pub fn new(corr_len: f64, variance: f64, m: usize) -> Self {
        assert!(variance > 0.0, "KlField2d: variance must be positive");
        assert!(m > 0, "KlField2d: need at least one mode");
        // enough 1-D modes that the top-m products are exact: the m-th
        // largest product never needs 1-D index beyond m (λ decreasing).
        let n1d = (m as f64).sqrt().ceil() as usize * 2 + 4;
        let kl1d = Kl1d::new(corr_len, n1d.min(m + 1));
        let n = kl1d.n_modes();
        let mut all: Vec<Mode2d> = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                all.push(Mode2d {
                    lambda: variance * kl1d.lambda(i) * kl1d.lambda(j),
                    i,
                    j,
                });
            }
        }
        all.sort_by(|a, b| b.lambda.partial_cmp(&a.lambda).unwrap());
        all.truncate(m);
        Self {
            kl1d,
            variance,
            modes: all,
        }
    }

    /// Number of retained modes `m` (the stochastic dimension).
    pub fn dim(&self) -> usize {
        self.modes.len()
    }

    pub fn variance(&self) -> f64 {
        self.variance
    }

    pub fn modes(&self) -> &[Mode2d] {
        &self.modes
    }

    /// Evaluate the `k`-th (λ-scaled) basis function `√λ_k φ_k(x, y)`.
    pub fn basis(&self, k: usize, x: f64, y: f64) -> f64 {
        let m = &self.modes[k];
        m.lambda.sqrt() * self.kl1d.eval(m.i, x) * self.kl1d.eval(m.j, y)
    }

    /// Evaluate `log κ(x, y; θ) = Σ_k √λ_k φ_k(x, y) θ_k`.
    ///
    /// # Panics
    /// Panics if `theta.len() != self.dim()`.
    pub fn log_kappa(&self, theta: &[f64], x: f64, y: f64) -> f64 {
        assert_eq!(
            theta.len(),
            self.dim(),
            "log_kappa: wrong parameter dimension"
        );
        (0..self.dim())
            .map(|k| self.basis(k, x, y) * theta[k])
            .sum()
    }

    /// Evaluate `κ = exp(log κ)`.
    pub fn kappa(&self, theta: &[f64], x: f64, y: f64) -> f64 {
        self.log_kappa(theta, x, y).exp()
    }

    /// Tabulate the λ-scaled basis at a list of points, returning the
    /// `n_points × m` matrix `Φ` with `Φ θ = log κ` at those points.
    ///
    /// This is the fast path used by the FEM forward model: the basis is
    /// tabulated once per mesh, and each sample costs one mat-vec.
    pub fn tabulate(&self, points: &[(f64, f64)]) -> DenseMatrix {
        DenseMatrix::from_fn(points.len(), self.dim(), |p, k| {
            self.basis(k, points[p].0, points[p].1)
        })
    }

    /// Truncated pointwise variance `Σ_k λ_k φ_k(x,y)²` — approaches
    /// `variance` as `m → ∞` (used to quantify truncation error).
    pub fn truncated_variance(&self, x: f64, y: f64) -> f64 {
        (0..self.dim()).map(|k| self.basis(k, x, y).powi(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uq_linalg::quadrature::gauss_legendre_on;

    const CORR_LEN: f64 = 0.15;

    #[test]
    fn eigenvalues_decrease() {
        let kl = Kl1d::new(CORR_LEN, 20);
        for k in 1..20 {
            assert!(
                kl.lambda(k) < kl.lambda(k - 1),
                "λ_{k} = {} >= λ_{} = {}",
                kl.lambda(k),
                k - 1,
                kl.lambda(k - 1)
            );
        }
    }

    #[test]
    fn eigenvalues_satisfy_transcendental_equations() {
        let kl = Kl1d::new(CORR_LEN, 10);
        let c = 1.0 / CORR_LEN;
        for m in &kl.modes {
            let res = match m.kind {
                ModeKind::Cosine => c - m.omega * (m.omega * 0.5).tan(),
                ModeKind::Sine => m.omega + c * (m.omega * 0.5).tan(),
            };
            assert!(res.abs() < 1e-6, "residual {res} for ω = {}", m.omega);
        }
    }

    #[test]
    fn eigenfunctions_orthonormal() {
        let kl = Kl1d::new(CORR_LEN, 8);
        let (xs, ws) = gauss_legendre_on(0.0, 1.0, 64);
        for i in 0..8 {
            for j in i..8 {
                let ip: f64 = xs
                    .iter()
                    .zip(&ws)
                    .map(|(x, w)| w * kl.eval(i, *x) * kl.eval(j, *x))
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (ip - expect).abs() < 1e-8,
                    "⟨φ_{i}, φ_{j}⟩ = {ip}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn mercer_sum_approximates_kernel() {
        // with many modes the Mercer sum reproduces exp(-|s-t|/l) away from
        // the diagonal kink
        let kl = Kl1d::new(CORR_LEN, 200);
        for (s, t) in [(0.2f64, 0.6), (0.5, 0.5), (0.1, 0.9), (0.45, 0.55)] {
            let exact = (-(s - t).abs() / CORR_LEN).exp();
            let approx = kl.mercer_sum(s, t);
            assert!(
                (exact - approx).abs() < 0.02,
                "C({s},{t}) = {exact}, Mercer = {approx}"
            );
        }
    }

    #[test]
    fn eigenfunction_is_kernel_eigenfunction() {
        // ∫ C(s,t) φ(t) dt = λ φ(s)
        let kl = Kl1d::new(CORR_LEN, 4);
        let (xs, ws) = gauss_legendre_on(0.0, 1.0, 200);
        for k in 0..4 {
            let s = 0.37;
            let integral: f64 = xs
                .iter()
                .zip(&ws)
                .map(|(t, w)| w * (-(s - t).abs() / CORR_LEN).exp() * kl.eval(k, *t))
                .sum();
            let expect = kl.lambda(k) * kl.eval(k, s);
            assert!(
                (integral - expect).abs() < 1e-4,
                "mode {k}: ∫Cφ = {integral}, λφ = {expect}"
            );
        }
    }

    #[test]
    fn field2d_dimension_and_sorting() {
        let f = KlField2d::new(CORR_LEN, 1.0, 113);
        assert_eq!(f.dim(), 113);
        for k in 1..f.dim() {
            assert!(f.modes()[k].lambda <= f.modes()[k - 1].lambda);
        }
    }

    #[test]
    fn field2d_leading_mode_is_product_of_leading_1d() {
        let f = KlField2d::new(CORR_LEN, 1.0, 10);
        let kl = Kl1d::new(CORR_LEN, 2);
        let expect = kl.lambda(0) * kl.lambda(0);
        assert!((f.modes()[0].lambda - expect).abs() < 1e-10);
        assert_eq!((f.modes()[0].i, f.modes()[0].j), (0, 0));
    }

    #[test]
    fn log_kappa_is_linear_in_theta() {
        let f = KlField2d::new(CORR_LEN, 1.0, 12);
        let theta1: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let theta2: Vec<f64> = (0..12).map(|i| (i as f64 * 0.11).cos()).collect();
        let sum: Vec<f64> = theta1.iter().zip(&theta2).map(|(a, b)| a + b).collect();
        let (x, y) = (0.3, 0.8);
        let lhs = f.log_kappa(&sum, x, y);
        let rhs = f.log_kappa(&theta1, x, y) + f.log_kappa(&theta2, x, y);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn tabulate_matches_pointwise_eval() {
        let f = KlField2d::new(CORR_LEN, 1.0, 20);
        let pts = vec![(0.1, 0.2), (0.5, 0.5), (0.9, 0.3)];
        let phi = f.tabulate(&pts);
        let theta: Vec<f64> = (0..20).map(|i| 0.1 * i as f64 - 1.0).collect();
        let by_matvec = phi.matvec(&theta);
        for (p, &(x, y)) in pts.iter().enumerate() {
            assert!((by_matvec[p] - f.log_kappa(&theta, x, y)).abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_variance_below_and_approaching_total() {
        let f_small = KlField2d::new(CORR_LEN, 1.0, 20);
        let f_big = KlField2d::new(CORR_LEN, 1.0, 400);
        let (x, y) = (0.5, 0.5);
        let v_small = f_small.truncated_variance(x, y);
        let v_big = f_big.truncated_variance(x, y);
        assert!(v_small < v_big);
        assert!(v_big <= 1.0 + 1e-6);
        assert!(
            v_big > 0.9,
            "400 modes should capture >90% variance, got {v_big}"
        );
    }

    #[test]
    fn variance_scales_field() {
        let f1 = KlField2d::new(CORR_LEN, 1.0, 15);
        let f4 = KlField2d::new(CORR_LEN, 4.0, 15);
        let theta: Vec<f64> = (0..15).map(|i| ((i * 13) % 7) as f64 / 7.0).collect();
        let a = f1.log_kappa(&theta, 0.4, 0.6);
        let b = f4.log_kappa(&theta, 0.4, 0.6);
        assert!((b - 2.0 * a).abs() < 1e-12, "variance 4 doubles the field");
    }
}
