//! The Bayesian inverse problem for the Poisson model as a
//! [`uq_mcmc::SamplingProblem`], plus the paper's three-level hierarchy.
//!
//! Likelihood: `y | θ ~ N(F(θ), σ_F² I)` with `σ_F = 0.01`; prior
//! `θ ~ N(0, 4I)`; synthetic data generated from a fixed draw
//! `θ̂ ~ N(0, I)` (the paper's deliberate "inverse crime", Sec. 3.1).

use crate::grid::StructuredGrid;
use crate::poisson::{paper_qoi_points, PoissonModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::prob::{isotropic_gaussian_logpdf, standard_normal_vec};
use uq_mcmc::SamplingProblem;
use uq_randfield::KlField2d;

/// Paper constants for the Poisson application.
pub mod constants {
    /// Measurement noise standard deviation `σ_F`.
    pub const SIGMA_F: f64 = 0.01;
    /// Prior standard deviation (`π = N(0, 4I)` ⇒ sd 2).
    pub const PRIOR_SD: f64 = 2.0;
    /// KL truncation dimension.
    pub const PARAM_DIM: usize = 113;
    /// Random-field correlation length.
    pub const CORR_LEN: f64 = 0.15;
    /// Random-field variance.
    pub const FIELD_VARIANCE: f64 = 1.0;
    /// Mesh resolutions (elements per direction) of levels 0, 1, 2.
    pub const LEVEL_N: [usize; 3] = [16, 64, 256];
    /// Seed for the synthetic "true" parameter `θ̂ ~ N(0, I)`.
    pub const TRUTH_SEED: u64 = 20210730;
}

/// Bayesian inverse problem on one level of the hierarchy.
pub struct PoissonProblem {
    model: PoissonModel,
    data: Vec<f64>,
    sigma_f: f64,
    prior_sd: f64,
}

impl PoissonProblem {
    /// Wrap a model with measurement data.
    pub fn new(model: PoissonModel, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            model.observation_points().len(),
            "PoissonProblem: one datum per observation point"
        );
        Self {
            model,
            data,
            sigma_f: constants::SIGMA_F,
            prior_sd: constants::PRIOR_SD,
        }
    }

    pub fn model(&self) -> &PoissonModel {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut PoissonModel {
        &mut self.model
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Log-likelihood `log N(y; F(θ), σ_F² I)` — one PDE solve.
    pub fn log_likelihood(&mut self, theta: &[f64]) -> f64 {
        let prediction = self.model.forward(theta);
        isotropic_gaussian_logpdf(&self.data, &prediction, self.sigma_f)
    }

    /// Log-prior `log N(θ; 0, prior_sd² I)`.
    pub fn log_prior(&self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &vec![0.0; theta.len()], self.prior_sd)
    }
}

impl SamplingProblem for PoissonProblem {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        self.log_prior(theta) + self.log_likelihood(theta)
    }

    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        self.model.qoi(theta)
    }

    fn qoi_dim(&self) -> usize {
        crate::poisson::paper_qoi_points().len()
    }
}

/// The paper's three-level Poisson hierarchy (mesh widths 1/16, 1/64,
/// 1/256) sharing one KL field, one synthetic truth and one data vector.
///
/// The KL basis tabulations (`Φ_e` per level, `Φ_q` once) are computed
/// here a single time and handed to every model via `Arc`, so spawning a
/// per-chain/per-worker [`PoissonProblem`] costs only the (cheap)
/// solver-pipeline setup instead of re-tabulating the random field.
pub struct PoissonHierarchy {
    field: KlField2d,
    truth: Vec<f64>,
    data: Vec<f64>,
    level_n: Vec<usize>,
    /// Tabulated KL basis at element centers, one per level.
    phi_elements: Vec<Arc<DenseMatrix>>,
    /// Tabulated KL basis at the (level-independent) QOI points.
    phi_qoi: Arc<DenseMatrix>,
}

impl PoissonHierarchy {
    /// Build the full paper setup (`m = 113`, levels 16/64/256). Synthetic
    /// data is generated **on the finest level** from `θ̂ ~ N(0, I)`.
    pub fn paper() -> Self {
        Self::new(
            constants::PARAM_DIM,
            constants::LEVEL_N.to_vec(),
            constants::TRUTH_SEED,
        )
    }

    /// Scaled-down hierarchy for tests and CI-sized experiments.
    pub fn new(param_dim: usize, level_n: Vec<usize>, truth_seed: u64) -> Self {
        assert!(
            !level_n.is_empty(),
            "PoissonHierarchy: need at least one level"
        );
        let field = KlField2d::new(constants::CORR_LEN, constants::FIELD_VARIANCE, param_dim);
        let mut rng = StdRng::seed_from_u64(truth_seed);
        let truth = standard_normal_vec(&mut rng, param_dim);
        let phi_elements: Vec<Arc<DenseMatrix>> = level_n
            .iter()
            .map(|&n| Arc::new(field.tabulate(&StructuredGrid::new(n).element_centers())))
            .collect();
        let phi_qoi = Arc::new(field.tabulate(&paper_qoi_points()));
        let finest = *level_n.last().unwrap();
        let mut data_model = PoissonModel::with_tabulated(
            finest,
            Arc::clone(phi_elements.last().unwrap()),
            Arc::clone(&phi_qoi),
        );
        let data = data_model.forward(&truth);
        Self {
            field,
            truth,
            data,
            level_n,
            phi_elements,
            phi_qoi,
        }
    }

    /// Number of levels `L + 1`.
    pub fn n_levels(&self) -> usize {
        self.level_n.len()
    }

    /// Stochastic dimension `m`.
    pub fn dim(&self) -> usize {
        self.truth.len()
    }

    /// The synthetic "true" KL coefficients `θ̂`.
    pub fn truth(&self) -> &[f64] {
        &self.truth
    }

    /// The noiseless synthetic data vector `y = F_L(θ̂)`.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn field(&self) -> &KlField2d {
        &self.field
    }

    /// Mesh resolution of level `l`.
    pub fn level_resolution(&self, level: usize) -> usize {
        self.level_n[level]
    }

    /// Build the sampling problem for level `l` (fresh model instance, so
    /// independent chains/workers can own one each; the heavy KL
    /// tabulations are shared, each worker only builds its own solver
    /// pipeline and warm-start state).
    pub fn problem(&self, level: usize) -> PoissonProblem {
        let model = PoissonModel::with_tabulated(
            self.level_n[level],
            Arc::clone(&self.phi_elements[level]),
            Arc::clone(&self.phi_qoi),
        );
        PoissonProblem::new(model, self.data.clone())
    }

    /// The true QOI field `κ(x_k, θ̂)` on the QOI grid (for Fig. 10-style
    /// recovery-error reporting).
    pub fn true_qoi(&self) -> Vec<f64> {
        let model = PoissonModel::with_tabulated(
            self.level_n[0],
            Arc::clone(&self.phi_elements[0]),
            Arc::clone(&self.phi_qoi),
        );
        model.qoi(&self.truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> PoissonHierarchy {
        PoissonHierarchy::new(8, vec![4, 8, 16], 1234)
    }

    #[test]
    fn posterior_peaks_near_truth() {
        let h = tiny_hierarchy();
        let mut p = h.problem(2);
        let at_truth = p.log_density(h.truth());
        // random other points should have (much) lower posterior density
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let other = standard_normal_vec(&mut rng, h.dim());
            let off = p.log_density(&other);
            assert!(at_truth > off, "posterior at truth {at_truth} vs {off}");
        }
    }

    #[test]
    fn likelihood_at_truth_on_finest_is_noiseless_max() {
        let h = tiny_hierarchy();
        let mut p = h.problem(2);
        // data was generated on level 2 with zero noise: residual is zero
        let ll = p.log_likelihood(h.truth());
        let max_ll = isotropic_gaussian_logpdf(
            &vec![0.0; p.data().len()],
            &vec![0.0; p.data().len()],
            constants::SIGMA_F,
        );
        assert!((ll - max_ll).abs() < 1e-3, "ll {ll} vs max {max_ll}");
    }

    #[test]
    fn coarse_levels_approximate_fine_likelihood() {
        let h = tiny_hierarchy();
        let theta = h.truth().to_vec();
        let mut l1 = h.problem(1);
        let mut l2 = h.problem(2);
        // coarse prediction differs from fine, but not wildly (κ smooth-ish)
        let p1 = l1.model_mut().forward(&theta);
        let p2 = l2.model_mut().forward(&theta);
        let diff = uq_linalg::vector::max_abs_diff(&p1, &p2);
        assert!(diff < 0.05, "levels should roughly agree, diff = {diff}");
        assert!(diff > 0.0);
    }

    #[test]
    fn qoi_dimension_is_qoi_grid() {
        let h = tiny_hierarchy();
        let mut p = h.problem(0);
        assert_eq!(p.qoi(&[0.0; 8]).len(), 1089);
        assert_eq!(p.qoi_dim(), 1089);
    }

    #[test]
    fn hierarchy_shares_data_across_levels() {
        let h = tiny_hierarchy();
        let p0 = h.problem(0);
        let p2 = h.problem(2);
        assert_eq!(p0.data(), p2.data());
    }

    #[test]
    fn log_prior_is_gaussian() {
        let h = tiny_hierarchy();
        let p = h.problem(0);
        let theta = vec![0.0; 8];
        let expect = isotropic_gaussian_logpdf(&theta, &theta, constants::PRIOR_SD);
        assert!((p.log_prior(&theta) - expect).abs() < 1e-13);
    }
}

/// Coarsest-level proposal choice for [`PoissonFactory`].
///
/// The paper sets "a Gaussian proposal `N(0, 3I)`" on the coarsest level;
/// we default to preconditioned Crank–Nicolson (dimension-robust for the
/// 113-dimensional KL prior) and also provide the random-walk,
/// independence and Adaptive Metropolis variants for the proposal
/// ablation study.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProposalKind {
    /// pCN with the given `β` against the `N(0, 4I)` prior.
    Pcn { beta: f64 },
    /// Isotropic Gaussian random walk with step `sd`.
    RandomWalk { sd: f64 },
    /// Independence sampler `N(0, sd² I)` (the paper's literal reading).
    Independence { sd: f64 },
    /// Haario Adaptive Metropolis (initial step `sd`, adapt every 100).
    AdaptiveMetropolis { sd: f64 },
}

/// [`uq_mlmcmc::LevelFactory`] for the Poisson hierarchy.
pub struct PoissonFactory {
    hierarchy: PoissonHierarchy,
    /// Coarsest-level proposal.
    pub proposal_kind: ProposalKind,
    /// Subsampling rates `ρ_l` (length ≥ levels − 1).
    pub subsampling: Vec<usize>,
}

impl PoissonFactory {
    /// Wrap a hierarchy with the paper's Table-3 subsampling rates and
    /// the default pCN coarsest proposal.
    pub fn new(hierarchy: PoissonHierarchy, subsampling: Vec<usize>) -> Self {
        Self {
            hierarchy,
            proposal_kind: ProposalKind::Pcn { beta: 0.08 },
            subsampling,
        }
    }

    pub fn hierarchy(&self) -> &PoissonHierarchy {
        &self.hierarchy
    }
}

impl uq_mlmcmc::LevelFactory for PoissonFactory {
    fn n_levels(&self) -> usize {
        self.hierarchy.n_levels()
    }

    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(self.hierarchy.problem(level))
    }

    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        let dim = self.hierarchy.dim();
        match self.proposal_kind {
            ProposalKind::Pcn { beta } => Box::new(uq_mcmc::PcnProposal::new(
                beta,
                vec![0.0; dim],
                constants::PRIOR_SD,
            )),
            ProposalKind::RandomWalk { sd } => Box::new(uq_mcmc::GaussianRandomWalk::new(sd)),
            ProposalKind::Independence { sd } => {
                Box::new(uq_mcmc::IndependenceProposal::isotropic(vec![0.0; dim], sd))
            }
            ProposalKind::AdaptiveMetropolis { sd } => {
                Box::new(uq_mcmc::AdaptiveMetropolis::new(dim, sd, 100))
            }
        }
    }

    fn subsampling_rate(&self, level: usize) -> usize {
        self.subsampling.get(level).copied().unwrap_or(0)
    }

    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0; self.hierarchy.dim()]
    }
}

#[cfg(test)]
mod factory_tests {
    use super::*;
    use uq_mlmcmc::LevelFactory;

    #[test]
    fn factory_is_wired() {
        let h = PoissonHierarchy::new(6, vec![4, 8], 7);
        let f = PoissonFactory::new(h, vec![5]);
        assert_eq!(f.n_levels(), 2);
        assert_eq!(f.subsampling_rate(0), 5);
        assert_eq!(f.subsampling_rate(1), 0);
        assert_eq!(f.starting_point(1).len(), 6);
        let mut p = f.problem(0);
        assert!(p.log_density(&[0.0; 6]).is_finite());
    }

    #[test]
    fn sequential_mlmcmc_runs_on_poisson() {
        use rand::SeedableRng;
        let h = PoissonHierarchy::new(6, vec![4, 8], 7);
        let f = PoissonFactory::new(h, vec![3]);
        let config = uq_mlmcmc::MlmcmcConfig::new(vec![150, 40]).with_burn_in(vec![30, 10]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let report = uq_mlmcmc::run_sequential(&f, &config, &mut rng);
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.levels[0].n_samples, 150);
        let est = report.expectation();
        assert_eq!(est.len(), 1089);
        assert!(est.iter().all(|v| v.is_finite() && *v > 0.0));
    }
}
