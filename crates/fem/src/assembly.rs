//! Q1 stiffness assembly for `-∇·(κ∇u) = 0` on a [`StructuredGrid`].
//!
//! `κ` is element-wise constant (evaluated at element centers from the
//! random field). Dirichlet conditions are eliminated symmetrically so the
//! assembled system stays SPD for conjugate gradients.

use crate::grid::StructuredGrid;
use uq_linalg::quadrature::gauss_legendre;
use uq_linalg::sparse::{CooMatrix, CsrMatrix};

/// Reference Q1 stiffness matrix on a square element (unit coefficient).
///
/// For bilinear elements on squares the element stiffness is independent
/// of the mesh width in 2-D; the entries are computed once by 2×2 Gauss
/// quadrature of `∫ ∇φ_a · ∇φ_b`.
pub fn reference_stiffness() -> [[f64; 4]; 4] {
    // shape function gradients on the reference square [0,1]²:
    // φ0 = (1-ξ)(1-η), φ1 = ξ(1-η), φ2 = ξη, φ3 = (1-ξ)η
    let grad = |a: usize, xi: f64, eta: f64| -> (f64, f64) {
        match a {
            0 => (-(1.0 - eta), -(1.0 - xi)),
            1 => (1.0 - eta, -xi),
            2 => (eta, xi),
            3 => (-eta, 1.0 - xi),
            _ => unreachable!(),
        }
    };
    let (nodes, weights) = gauss_legendre(2);
    let mut k = [[0.0; 4]; 4];
    for (i, &xq) in nodes.iter().enumerate() {
        for (j, &yq) in nodes.iter().enumerate() {
            let xi = 0.5 * (xq + 1.0);
            let eta = 0.5 * (yq + 1.0);
            let w = 0.25 * weights[i] * weights[j]; // Jacobian of [-1,1]²→[0,1]²
            for a in 0..4 {
                let (gax, gay) = grad(a, xi, eta);
                for b in 0..4 {
                    let (gbx, gby) = grad(b, xi, eta);
                    k[a][b] += w * (gax * gbx + gay * gby);
                }
            }
        }
    }
    k
}

/// Assembled SPD system `A u = b` with Dirichlet rows eliminated.
pub struct AssembledSystem {
    pub matrix: CsrMatrix,
    pub rhs: Vec<f64>,
}

/// Assemble the stiffness system for element-wise diffusion coefficients
/// `kappa` (one value per element, element-index order).
///
/// Dirichlet nodes (left/right edges) are eliminated symmetrically: their
/// rows become identity, their values move to the right-hand side, and
/// the couplings are dropped from both row and column.
///
/// # Panics
/// Panics if `kappa.len() != grid.n_elements()`.
pub fn assemble(grid: &StructuredGrid, kappa: &[f64]) -> AssembledSystem {
    assert_eq!(
        kappa.len(),
        grid.n_elements(),
        "assemble: one kappa per element required"
    );
    let k_ref = reference_stiffness();
    let n_nodes = grid.n_nodes();
    let n = grid.n();
    let mut coo = CooMatrix::new(n_nodes, n_nodes);
    let mut rhs = vec![0.0; n_nodes];
    // Dirichlet values by node (None = free)
    let bc: Vec<Option<f64>> = (0..n_nodes).map(|idx| grid.dirichlet_value(idx)).collect();
    for ey in 0..n {
        for ex in 0..n {
            let kap = kappa[ey * n + ex];
            let nodes = grid.element_nodes(ex, ey);
            for a in 0..4 {
                let ga = nodes[a];
                if bc[ga].is_some() {
                    continue; // row handled as identity below
                }
                for b in 0..4 {
                    let gb = nodes[b];
                    let kab = kap * k_ref[a][b];
                    match bc[gb] {
                        Some(g) => rhs[ga] -= kab * g,
                        None => coo.push(ga, gb, kab),
                    }
                }
            }
        }
    }
    for (idx, bcv) in bc.iter().enumerate() {
        if let Some(g) = bcv {
            coo.push(idx, idx, 1.0);
            rhs[idx] = *g;
        }
    }
    AssembledSystem {
        matrix: coo.to_csr(),
        rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uq_linalg::solvers::{cg, SolverOptions, SsorPrecond};

    #[test]
    fn reference_stiffness_known_values() {
        // classical Q1 Laplace element matrix: diag 2/3, edge -1/6, diag -1/3
        let k = reference_stiffness();
        for a in 0..4 {
            assert!((k[a][a] - 2.0 / 3.0).abs() < 1e-12);
        }
        assert!((k[0][1] + 1.0 / 6.0).abs() < 1e-12);
        assert!((k[0][2] + 1.0 / 3.0).abs() < 1e-12);
        assert!((k[0][3] + 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn reference_stiffness_rows_sum_to_zero() {
        // constants are in the kernel of the element stiffness
        let k = reference_stiffness();
        for a in 0..4 {
            let s: f64 = k[a].iter().sum();
            assert!(s.abs() < 1e-13);
        }
    }

    #[test]
    fn assembled_matrix_is_symmetric() {
        let grid = StructuredGrid::new(8);
        let kappa: Vec<f64> = (0..64).map(|e| 1.0 + 0.1 * (e % 5) as f64).collect();
        let sys = assemble(&grid, &kappa);
        assert!(sys.matrix.is_symmetric(1e-12));
    }

    fn solve(grid: &StructuredGrid, kappa: &[f64]) -> Vec<f64> {
        let sys = assemble(grid, kappa);
        let pre = SsorPrecond::new(&sys.matrix, 1.0);
        let r = cg(&sys.matrix, &sys.rhs, None, &pre, SolverOptions::default());
        assert!(r.converged, "CG failed: {}", r.residual);
        r.x
    }

    #[test]
    fn constant_kappa_gives_linear_solution() {
        // with κ = 1, u = x exactly (representable in Q1)
        let grid = StructuredGrid::new(8);
        let u = solve(&grid, &vec![1.0; 64]);
        for idx in 0..grid.n_nodes() {
            let (x, _) = grid.node_coords(idx);
            assert!(
                (u[idx] - x).abs() < 1e-8,
                "u({idx}) = {} vs x = {x}",
                u[idx]
            );
        }
    }

    #[test]
    fn solution_invariant_under_kappa_scaling() {
        // the PDE has no source: scaling κ globally leaves u unchanged
        let grid = StructuredGrid::new(8);
        let kappa: Vec<f64> = (0..64).map(|e| 1.0 + 0.3 * ((e * 7) % 4) as f64).collect();
        let scaled: Vec<f64> = kappa.iter().map(|k| 10.0 * k).collect();
        let u1 = solve(&grid, &kappa);
        let u2 = solve(&grid, &scaled);
        assert!(uq_linalg::vector::max_abs_diff(&u1, &u2) < 1e-7);
    }

    #[test]
    fn two_layer_interface_matches_1d_theory() {
        // κ = k1 for x < 1/2, k2 for x > 1/2, BCs 0/1: the y-independent
        // 1-D solution has interface value k1/(k1+k2)... flux continuity:
        // k1 u'(left) = k2 u'(right) → u(1/2) = k1/(k1+k2)
        let n = 32;
        let grid = StructuredGrid::new(n);
        let (k1, k2) = (1.0, 4.0);
        let mut kappa = vec![0.0; n * n];
        for ey in 0..n {
            for ex in 0..n {
                kappa[ey * n + ex] = if ex < n / 2 { k1 } else { k2 };
            }
        }
        let u = solve(&grid, &kappa);
        let mid = grid.interpolate(&u, 0.5, 0.5);
        // u(1/2) from flux continuity; derive exactly: u(x) = A x for
        // x < 1/2, u = 1 - B(1-x) for x > 1/2; A/2 = 1 - B/2, k1 A = k2 B
        // → A = 2 k2/(k1+k2), u(1/2) = k2/(k1+k2)
        let expect_exact = k2 / (k1 + k2);
        assert!(
            (mid - expect_exact).abs() < 1e-6,
            "interface value {mid} vs {expect_exact}"
        );
    }

    #[test]
    fn dirichlet_rows_are_identity() {
        let grid = StructuredGrid::new(4);
        let sys = assemble(&grid, &[1.0; 16]);
        for idx in 0..grid.n_nodes() {
            if let Some(g) = grid.dirichlet_value(idx) {
                assert_eq!(sys.matrix.get(idx, idx), 1.0);
                assert_eq!(sys.rhs[idx], g);
                let (cols, _) = sys.matrix.row(idx);
                assert_eq!(cols.len(), 1, "Dirichlet row must be identity");
            }
        }
    }

    #[test]
    fn solution_bounded_by_boundary_values() {
        // discrete maximum principle for M-matrix-ish Q1 discretization:
        // solution stays within [0, 1] for positive κ
        let grid = StructuredGrid::new(16);
        let kappa: Vec<f64> = (0..256)
            .map(|e| (0.5 + ((e * 13) % 7) as f64).exp())
            .collect();
        let u = solve(&grid, &kappa);
        for &v in &u {
            assert!(v > -1e-6 && v < 1.0 + 1e-6, "u = {v} escapes [0,1]");
        }
    }
}
