//! Structured quadrilateral grids on the unit square.

/// A uniform `n × n` element grid on `[0, 1]²` with `(n+1)²` nodes.
///
/// Node `(i, j)` sits at `(i·h, j·h)` and has linear index `j·(n+1) + i`
/// (x fastest). Element `(ex, ey)` covers `[ex·h, (ex+1)·h] × [ey·h,
/// (ey+1)·h]` with linear index `ey·n + ex`.
#[derive(Clone, Debug)]
pub struct StructuredGrid {
    n: usize,
    h: f64,
}

impl StructuredGrid {
    /// Grid with `n` elements per direction (mesh width `1/n`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "StructuredGrid: need at least one element");
        Self {
            n,
            h: 1.0 / n as f64,
        }
    }

    /// Elements per direction.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Mesh width `h = 1/n`.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Nodes per direction.
    pub fn nodes_per_dim(&self) -> usize {
        self.n + 1
    }

    /// Total node count (the number of degrees of freedom).
    pub fn n_nodes(&self) -> usize {
        (self.n + 1) * (self.n + 1)
    }

    /// Total element count.
    pub fn n_elements(&self) -> usize {
        self.n * self.n
    }

    /// Linear node index of node `(i, j)`.
    #[inline]
    pub fn node_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= self.n && j <= self.n);
        j * (self.n + 1) + i
    }

    /// Coordinates of node with linear index `idx`.
    #[inline]
    pub fn node_coords(&self, idx: usize) -> (f64, f64) {
        let np = self.n + 1;
        let i = idx % np;
        let j = idx / np;
        (i as f64 * self.h, j as f64 * self.h)
    }

    /// The four node indices of element `(ex, ey)` in counter-clockwise
    /// order starting at the lower-left corner.
    #[inline]
    pub fn element_nodes(&self, ex: usize, ey: usize) -> [usize; 4] {
        debug_assert!(ex < self.n && ey < self.n);
        [
            self.node_index(ex, ey),
            self.node_index(ex + 1, ey),
            self.node_index(ex + 1, ey + 1),
            self.node_index(ex, ey + 1),
        ]
    }

    /// Center coordinates of element `(ex, ey)`.
    #[inline]
    pub fn element_center(&self, ex: usize, ey: usize) -> (f64, f64) {
        ((ex as f64 + 0.5) * self.h, (ey as f64 + 0.5) * self.h)
    }

    /// Centers of all elements, in element-index order.
    pub fn element_centers(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.n_elements());
        for ey in 0..self.n {
            for ex in 0..self.n {
                out.push(self.element_center(ex, ey));
            }
        }
        out
    }

    /// Whether node `idx` lies on the left boundary `x = 0`.
    pub fn on_left(&self, idx: usize) -> bool {
        idx.is_multiple_of(self.n + 1)
    }

    /// Whether node `idx` lies on the right boundary `x = 1`.
    pub fn on_right(&self, idx: usize) -> bool {
        idx % (self.n + 1) == self.n
    }

    /// Dirichlet value at node `idx` for the paper's boundary conditions
    /// (`u = 0` on the left edge, `u = 1` on the right edge), or `None`
    /// for free nodes.
    pub fn dirichlet_value(&self, idx: usize) -> Option<f64> {
        if self.on_left(idx) {
            Some(0.0)
        } else if self.on_right(idx) {
            Some(1.0)
        } else {
            None
        }
    }

    /// Evaluate a nodal field by bilinear interpolation at `(x, y) ∈
    /// [0, 1]²`.
    ///
    /// # Panics
    /// Panics (debug) if the point lies outside the unit square or the
    /// field has the wrong length.
    pub fn interpolate(&self, nodal: &[f64], x: f64, y: f64) -> f64 {
        assert_eq!(nodal.len(), self.n_nodes(), "interpolate: wrong field size");
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&x) && (-1e-12..=1.0 + 1e-12).contains(&y));
        let ex = ((x / self.h) as usize).min(self.n - 1);
        let ey = ((y / self.h) as usize).min(self.n - 1);
        let xi = (x - ex as f64 * self.h) / self.h;
        let eta = (y - ey as f64 * self.h) / self.h;
        let [a, b, c, d] = self.element_nodes(ex, ey);
        nodal[a] * (1.0 - xi) * (1.0 - eta)
            + nodal[b] * xi * (1.0 - eta)
            + nodal[c] * xi * eta
            + nodal[d] * (1.0 - xi) * eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_levels() {
        // Table 3: DOFs 289, 4225, 66049 for h = 1/16, 1/64, 1/256
        assert_eq!(StructuredGrid::new(16).n_nodes(), 289);
        assert_eq!(StructuredGrid::new(64).n_nodes(), 4225);
        assert_eq!(StructuredGrid::new(256).n_nodes(), 66049);
    }

    #[test]
    fn node_index_roundtrip() {
        let g = StructuredGrid::new(8);
        for j in 0..=8 {
            for i in 0..=8 {
                let idx = g.node_index(i, j);
                let (x, y) = g.node_coords(idx);
                assert!((x - i as f64 / 8.0).abs() < 1e-15);
                assert!((y - j as f64 / 8.0).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn element_nodes_counter_clockwise() {
        let g = StructuredGrid::new(2);
        // element (0,0): nodes 0, 1, 4, 3 on the 3x3 node grid
        assert_eq!(g.element_nodes(0, 0), [0, 1, 4, 3]);
        assert_eq!(g.element_nodes(1, 1), [4, 5, 8, 7]);
    }

    #[test]
    fn boundary_classification() {
        let g = StructuredGrid::new(4);
        assert!(g.on_left(g.node_index(0, 2)));
        assert!(g.on_right(g.node_index(4, 0)));
        assert!(!g.on_left(g.node_index(1, 2)));
        assert_eq!(g.dirichlet_value(g.node_index(0, 3)), Some(0.0));
        assert_eq!(g.dirichlet_value(g.node_index(4, 4)), Some(1.0));
        assert_eq!(g.dirichlet_value(g.node_index(2, 0)), None);
    }

    #[test]
    fn interpolation_reproduces_bilinear() {
        let g = StructuredGrid::new(5);
        // field f(x,y) = 2x + 3y + xy is bilinear per element only if it is
        // globally bilinear — it is, so interpolation must be exact.
        let f: Vec<f64> = (0..g.n_nodes())
            .map(|idx| {
                let (x, y) = g.node_coords(idx);
                2.0 * x + 3.0 * y + x * y
            })
            .collect();
        for &(x, y) in &[(0.11, 0.97), (0.5, 0.5), (0.999, 0.001), (0.0, 1.0)] {
            let got = g.interpolate(&f, x, y);
            let expect = 2.0 * x + 3.0 * y + x * y;
            assert!(
                (got - expect).abs() < 1e-12,
                "at ({x},{y}): {got} vs {expect}"
            );
        }
    }

    #[test]
    fn element_centers_ordering() {
        let g = StructuredGrid::new(2);
        let c = g.element_centers();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], (0.25, 0.25));
        assert_eq!(c[1], (0.75, 0.25));
        assert_eq!(c[3], (0.75, 0.75));
    }
}
