//! Reusable stiffness operators: symbolic CSR pattern + in-place refill.
//!
//! [`crate::assembly::assemble`] rebuilds a COO triplet list and
//! re-sorts it into CSR on every call — fine for setup code, far too
//! expensive for the MCMC hot loop where only the diffusion field `κ`
//! changes between solves. [`StiffnessPattern`] computes everything
//! `κ`-independent **once per grid**:
//!
//! * the symbolic CSR pattern (row pointers + sorted column indices);
//! * an element → nnz *scatter map*: for each of the 16 local stiffness
//!   entries of each element, the destination index in the CSR value
//!   array (or a skip marker for Dirichlet-eliminated couplings);
//! * the Dirichlet contributions to the right-hand side, reduced to
//!   `(node, element, coefficient)` triples;
//! * the identity rows of eliminated boundary nodes.
//!
//! A refill is then a single fused pass over the scatter map — no COO
//! build, no sort, no allocation — and produces values **bit-identical**
//! to a from-scratch [`assemble`] (both sum element contributions in the
//! same element-loop order; the COO→CSR conversion sorts stably to
//! preserve it).

use crate::assembly::{assemble, reference_stiffness};
use crate::grid::StructuredGrid;
use uq_linalg::sparse::CsrMatrix;

/// Skip marker in the value scatter map (entry eliminated by a
/// Dirichlet row or column).
const SKIP: u32 = u32::MAX;

/// A right-hand-side contribution `rhs[node] += κ[element] · coeff`
/// arising from symmetric elimination of a Dirichlet column.
#[derive(Clone, Copy, Debug)]
struct RhsContribution {
    node: u32,
    element: u32,
    /// `−k_ref[a][b] · g` for boundary value `g` (the sign is folded in).
    coeff: f64,
}

/// An eliminated Dirichlet row: identity diagonal + fixed rhs value.
#[derive(Clone, Copy, Debug)]
struct DirichletRow {
    /// Index of the diagonal entry in the CSR value array.
    value_pos: u32,
    node: u32,
    value: f64,
}

/// κ-independent symbolic structure of the Q1 stiffness system on a
/// [`StructuredGrid`], enabling allocation-free per-`κ` refills.
pub struct StiffnessPattern {
    n_elements: usize,
    n_nodes: usize,
    /// Flattened reference element stiffness, `k_ref[a][b]` at `a*4+b`.
    kref: [f64; 16],
    /// `n_elements × 16` destination indices into the CSR value array.
    val_scatter: Vec<u32>,
    rhs_contributions: Vec<RhsContribution>,
    dirichlet_rows: Vec<DirichletRow>,
    /// Symbolic CSR structure (no values — minted matrices get fresh
    /// value storage, so the pattern does not double operator memory).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Per-node Dirichlet mask (shared with the multigrid layer).
    fixed: Vec<bool>,
}

impl StiffnessPattern {
    /// Analyse the grid once: assemble a prototype system for `κ ≡ 1`
    /// and record where every element contribution lands in it.
    pub fn new(grid: &StructuredGrid) -> Self {
        let n = grid.n();
        let n_elements = grid.n_elements();
        let n_nodes = grid.n_nodes();
        let k_ref = reference_stiffness();
        let mut kref = [0.0; 16];
        for a in 0..4 {
            for b in 0..4 {
                kref[a * 4 + b] = k_ref[a][b];
            }
        }
        let proto = assemble(grid, &vec![1.0; n_elements]).matrix;
        let bc: Vec<Option<f64>> = (0..n_nodes).map(|idx| grid.dirichlet_value(idx)).collect();
        let fixed: Vec<bool> = bc.iter().map(Option::is_some).collect();

        let mut val_scatter = vec![SKIP; n_elements * 16];
        let mut rhs_contributions = Vec::new();
        for ey in 0..n {
            for ex in 0..n {
                let e = ey * n + ex;
                let nodes = grid.element_nodes(ex, ey);
                for a in 0..4 {
                    let ga = nodes[a];
                    if bc[ga].is_some() {
                        continue; // eliminated row: stays identity
                    }
                    for b in 0..4 {
                        let gb = nodes[b];
                        match bc[gb] {
                            Some(g) => {
                                if g != 0.0 {
                                    rhs_contributions.push(RhsContribution {
                                        node: ga as u32,
                                        element: e as u32,
                                        coeff: -kref[a * 4 + b] * g,
                                    });
                                }
                            }
                            None => {
                                let pos = proto
                                    .entry_position(ga, gb)
                                    .expect("pattern entry must exist in prototype");
                                val_scatter[e * 16 + a * 4 + b] = pos as u32;
                            }
                        }
                    }
                }
            }
        }
        let dirichlet_rows = bc
            .iter()
            .enumerate()
            .filter_map(|(idx, bcv)| {
                bcv.map(|g| DirichletRow {
                    value_pos: proto
                        .entry_position(idx, idx)
                        .expect("Dirichlet diagonal must exist")
                        as u32,
                    node: idx as u32,
                    value: g,
                })
            })
            .collect();
        let (row_ptr, col_idx) = (proto.row_ptr().to_vec(), proto.col_indices().to_vec());
        Self {
            n_elements,
            n_nodes,
            kref,
            val_scatter,
            rhs_contributions,
            dirichlet_rows,
            row_ptr,
            col_idx,
            fixed,
        }
    }

    /// Number of degrees of freedom (nodes).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of elements (`κ` entries per refill).
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Per-node Dirichlet mask (`true` = eliminated identity row).
    pub fn fixed_mask(&self) -> &[bool] {
        &self.fixed
    }

    /// A fresh matrix with this pattern (values for `κ ≡ 1`); refill it
    /// through [`refill_values`](Self::refill_values).
    pub fn build_matrix(&self) -> CsrMatrix {
        let mut m = CsrMatrix::from_raw(
            self.n_nodes,
            self.n_nodes,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            vec![0.0; self.col_idx.len()],
        );
        self.refill_values(&vec![1.0; self.n_elements], m.values_mut());
        m
    }

    /// Refill `values` (the value array of a matrix minted by
    /// [`build_matrix`](Self::build_matrix)) in place for the given
    /// element-wise diffusion coefficients.
    ///
    /// # Panics
    /// Panics if `kappa` or `values` have the wrong length.
    pub fn refill_values(&self, kappa: &[f64], values: &mut [f64]) {
        assert_eq!(
            kappa.len(),
            self.n_elements,
            "refill_values: one kappa per element required"
        );
        assert_eq!(
            values.len(),
            self.col_idx.len(),
            "refill_values: value array does not match pattern"
        );
        values.fill(0.0);
        for (e, &kap) in kappa.iter().enumerate() {
            let scatter = &self.val_scatter[e * 16..e * 16 + 16];
            for (pos, kref) in scatter.iter().zip(&self.kref) {
                if *pos != SKIP {
                    values[*pos as usize] += kap * kref;
                }
            }
        }
        for d in &self.dirichlet_rows {
            values[d.value_pos as usize] = 1.0;
        }
    }

    /// Refill the right-hand side in place for the given coefficients.
    ///
    /// # Panics
    /// Panics if `kappa` or `rhs` have the wrong length.
    pub fn refill_rhs(&self, kappa: &[f64], rhs: &mut [f64]) {
        assert_eq!(
            kappa.len(),
            self.n_elements,
            "refill_rhs: one kappa per element required"
        );
        assert_eq!(rhs.len(), self.n_nodes, "refill_rhs: wrong rhs length");
        rhs.fill(0.0);
        for c in &self.rhs_contributions {
            rhs[c.node as usize] += kappa[c.element as usize] * c.coeff;
        }
        for d in &self.dirichlet_rows {
            rhs[d.node as usize] = d.value;
        }
    }
}

/// A single-level convenience wrapper owning the matrix and rhs: the
/// drop-in replacement for calling [`assemble`] per solve.
pub struct StiffnessOperator {
    pattern: StiffnessPattern,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
}

impl StiffnessOperator {
    /// Build the pattern and a matrix/rhs pair for `κ ≡ 1`.
    pub fn new(grid: &StructuredGrid) -> Self {
        let pattern = StiffnessPattern::new(grid);
        let matrix = pattern.build_matrix();
        let mut rhs = vec![0.0; pattern.n_nodes()];
        pattern.refill_rhs(&vec![1.0; pattern.n_elements()], &mut rhs);
        Self {
            pattern,
            matrix,
            rhs,
        }
    }

    /// Refill matrix values and rhs in place for new coefficients.
    pub fn refill(&mut self, kappa: &[f64]) {
        self.pattern.refill_values(kappa, self.matrix.values_mut());
        self.pattern.refill_rhs(kappa, &mut self.rhs);
    }

    /// The symbolic pattern.
    pub fn pattern(&self) -> &StiffnessPattern {
        &self.pattern
    }

    /// The current matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The current right-hand side.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varied_kappa(n_elements: usize) -> Vec<f64> {
        (0..n_elements)
            .map(|e| (0.3 * ((e * 31 % 17) as f64 - 8.0) / 8.0).exp())
            .collect()
    }

    #[test]
    fn refill_matches_assemble_exactly() {
        for n in [3usize, 4, 8, 16] {
            let grid = StructuredGrid::new(n);
            let kappa = varied_kappa(grid.n_elements());
            let reference = assemble(&grid, &kappa);
            let mut op = StiffnessOperator::new(&grid);
            op.refill(&kappa);
            assert_eq!(op.matrix().nnz(), reference.matrix.nnz());
            // bit-identical, not just close: same summation order
            assert_eq!(op.matrix().values(), reference.matrix.values());
            assert_eq!(op.rhs(), &reference.rhs[..]);
        }
    }

    #[test]
    fn repeated_refills_are_idempotent() {
        let grid = StructuredGrid::new(8);
        let k1 = varied_kappa(grid.n_elements());
        let k2: Vec<f64> = k1.iter().map(|k| 2.0 * k).collect();
        let mut op = StiffnessOperator::new(&grid);
        op.refill(&k2);
        op.refill(&k1);
        // going through a different kappa must leave no residue
        let reference = assemble(&grid, &k1);
        assert_eq!(op.matrix().values(), reference.matrix.values());
        assert_eq!(op.rhs(), &reference.rhs[..]);
    }

    #[test]
    fn fixed_mask_marks_left_and_right_boundaries() {
        let grid = StructuredGrid::new(4);
        let pattern = StiffnessPattern::new(&grid);
        for idx in 0..grid.n_nodes() {
            assert_eq!(
                pattern.fixed_mask()[idx],
                grid.dirichlet_value(idx).is_some()
            );
        }
    }

    #[test]
    #[should_panic(expected = "one kappa per element")]
    fn refill_rejects_wrong_kappa_length() {
        let grid = StructuredGrid::new(4);
        let mut op = StiffnessOperator::new(&grid);
        op.refill(&[1.0; 3]);
    }
}
