//! The Poisson forward model `F: θ ↦ u(x_obs)`.
//!
//! Maps KL coefficients to the PDE solution evaluated at observation
//! points, exactly the paper's Section 3.1 setup: the log-diffusion field
//! is `log κ = Σ_k √λ_k φ_k θ_k` (correlation length 0.15, variance 1,
//! `m = 113`), discretized with Q1 elements on a structured grid.
//!
//! ## Solver pipeline
//!
//! The model is built for the MCMC hot loop: everything `θ`-independent
//! is constructed once and reused across chain steps, so a steady-state
//! forward evaluation performs **no heap allocation** besides the small
//! returned observation vector:
//!
//! 1. `κ = exp(Φ_e θ)` is evaluated into a reusable buffer;
//! 2. a [`StiffnessPattern`] per mesh level refills CSR values and rhs
//!    in place (no COO rebuild, no sort);
//! 3. on meshes with an even `n ≥ 8` the system is solved by conjugate
//!    gradients preconditioned with a geometric multigrid V-cycle whose
//!    coarse operators are re-discretizations on the coarsened `κ`
//!    (cached and refilled the same way); smaller/odd meshes fall back
//!    to SSOR-preconditioned CG;
//! 4. the previous solution warm-starts the next solve, and all Krylov
//!    scratch lives in a persistent [`SolverWorkspace`].
//!
//! A stalled solve **panics in every profile** — a silently unconverged
//! forward model would corrupt the posterior, which is strictly worse
//! than crashing the chain. Per-solve iteration/residual statistics are
//! recorded for the paper's cost tables.

use crate::grid::StructuredGrid;
use crate::operator::{StiffnessOperator, StiffnessPattern};
use std::sync::Arc;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::mg::{GmgHierarchy, GmgLevelSpec, Smoother};
use uq_linalg::solvers::{cg_into, CachedSsorPrecond, SolveStats, SolverOptions, SolverWorkspace};
use uq_randfield::KlField2d;

/// The paper's 36 observation points `{2/32, 7/32, 13/32, 19/32, 25/32,
/// 3/32}²` (used verbatim, including the likely-typo `3/32`).
pub fn paper_observation_points() -> Vec<(f64, f64)> {
    let coords = [
        2.0 / 32.0,
        7.0 / 32.0,
        13.0 / 32.0,
        19.0 / 32.0,
        25.0 / 32.0,
        3.0 / 32.0,
    ];
    let mut pts = Vec::with_capacity(36);
    for &x in &coords {
        for &y in &coords {
            pts.push((x, y));
        }
    }
    pts
}

/// QOI evaluation grid of width 1/32 (33×33 points) from the paper:
/// `Q(θ)_k = κ(x_k, θ)`.
pub fn paper_qoi_points() -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(33 * 33);
    for j in 0..33 {
        for i in 0..33 {
            pts.push((i as f64 / 32.0, j as f64 / 32.0));
        }
    }
    pts
}

/// Average the four fine child elements of each coarse element
/// (arithmetic mean — adequate for building coarse *preconditioner*
/// operators; the fine operator is always the exact one).
pub fn coarsen_kappa(fine_n: usize, fine: &[f64], coarse: &mut [f64]) {
    let nc = fine_n / 2;
    debug_assert_eq!(fine.len(), fine_n * fine_n);
    debug_assert_eq!(coarse.len(), nc * nc);
    for ey in 0..nc {
        for ex in 0..nc {
            let (fx, fy) = (2 * ex, 2 * ey);
            coarse[ey * nc + ex] = 0.25
                * (fine[fy * fine_n + fx]
                    + fine[fy * fine_n + fx + 1]
                    + fine[(fy + 1) * fine_n + fx]
                    + fine[(fy + 1) * fine_n + fx + 1]);
        }
    }
}

/// Mesh sizes of the multigrid hierarchy built on an `n × n` grid:
/// `n, n/2, …` down to the first odd or `≤ 4` size. A hierarchy exists
/// (and [`PoissonModel`] uses multigrid) only when this has at least two
/// entries.
pub fn mg_level_sizes(fine_n: usize) -> Vec<usize> {
    let mut sizes = vec![fine_n];
    loop {
        let n = *sizes.last().expect("non-empty");
        if n.is_multiple_of(2) && n > 4 {
            sizes.push(n / 2);
        } else {
            break;
        }
    }
    sizes
}

/// Patterns and level specs (values filled for `κ ≡ 1`) for the given
/// level sizes — the single construction path shared by the model, the
/// benches and the regression tests.
fn mg_components(level_sizes: &[usize]) -> (Vec<StiffnessPattern>, Vec<GmgLevelSpec>) {
    let mut patterns = Vec::with_capacity(level_sizes.len());
    let mut specs = Vec::with_capacity(level_sizes.len());
    for &n in level_sizes {
        let level_grid = StructuredGrid::new(n);
        let pattern = StiffnessPattern::new(&level_grid);
        specs.push(GmgLevelSpec {
            n,
            matrix: pattern.build_matrix(),
            fixed: pattern.fixed_mask().to_vec(),
        });
        patterns.push(pattern);
    }
    (patterns, specs)
}

/// Build exactly the multigrid hierarchy [`PoissonModel`] solves with
/// (same level sizes, same symbolic patterns, same 2×2-averaged coarse
/// `κ`), refilled for the given fine-level coefficients. Returns `None`
/// when the mesh cannot be coarsened (odd or `n ≤ 4`). Benches and
/// regression tests use this so they measure the production hierarchy
/// rather than a reimplementation.
pub fn build_mg_hierarchy(fine_n: usize, kappa: &[f64]) -> Option<GmgHierarchy> {
    let sizes = mg_level_sizes(fine_n);
    if sizes.len() < 2 {
        return None;
    }
    assert_eq!(
        kappa.len(),
        fine_n * fine_n,
        "build_mg_hierarchy: one kappa per fine element required"
    );
    let (patterns, mut specs) = mg_components(&sizes);
    let mut current = kappa.to_vec();
    for (l, (pattern, spec)) in patterns.iter().zip(&mut specs).enumerate() {
        if l > 0 {
            let mut coarse = vec![0.0; sizes[l] * sizes[l]];
            coarsen_kappa(sizes[l - 1], &current, &mut coarse);
            current = coarse;
        }
        pattern.refill_values(&current, spec.matrix.values_mut());
    }
    Some(GmgHierarchy::new(
        specs,
        Smoother::RedBlackGaussSeidel,
        1,
        1,
    ))
}

/// Reusable solve machinery, constructed once per model.
enum SolverBackend {
    /// Geometric multigrid V(1,1)-preconditioned CG; requires an even
    /// `n ≥ 8` so at least one coarser level exists.
    Multigrid {
        gmg: GmgHierarchy,
        /// Symbolic assembly patterns per level, finest first.
        patterns: Vec<StiffnessPattern>,
        /// Elements per direction per level, finest first.
        level_n: Vec<usize>,
        /// Coarsened-κ buffers for levels `1..` (level `l` at `l − 1`).
        coarse_kappa: Vec<Vec<f64>>,
    },
    /// Single-level SSOR-preconditioned CG fallback for meshes too small
    /// or odd to coarsen. The reciprocal-diagonal cache persists across
    /// solves (refreshed in place after each refill) like the MG path's
    /// buffers, so this path is allocation-free in steady state too.
    Ssor {
        op: StiffnessOperator,
        inv_diag: Vec<f64>,
    },
}

impl SolverBackend {
    fn build(grid: &StructuredGrid) -> Self {
        let level_n = mg_level_sizes(grid.n());
        if level_n.len() < 2 {
            let op = StiffnessOperator::new(grid);
            let inv_diag = vec![0.0; op.matrix().rows()];
            return Self::Ssor { op, inv_diag };
        }
        let (patterns, specs) = mg_components(&level_n);
        let gmg = GmgHierarchy::new(specs, Smoother::RedBlackGaussSeidel, 1, 1);
        let coarse_kappa = level_n[1..].iter().map(|&n| vec![0.0; n * n]).collect();
        Self::Multigrid {
            gmg,
            patterns,
            level_n,
            coarse_kappa,
        }
    }

    /// Human-readable name for logs and cost tables.
    fn name(&self) -> &'static str {
        match self {
            Self::Multigrid { .. } => "mg-cg",
            Self::Ssor { .. } => "ssor-cg",
        }
    }
}

/// One level of the Poisson forward-model hierarchy.
pub struct PoissonModel {
    grid: StructuredGrid,
    /// Tabulated KL basis at element centers: `log κ_elems = Φ_e θ`.
    phi_elements: Arc<DenseMatrix>,
    /// Tabulated KL basis at QOI points: `Q(θ) = exp(Φ_q θ)`.
    phi_qoi: Arc<DenseMatrix>,
    obs_points: Vec<(f64, f64)>,
    opts: SolverOptions,
    backend: SolverBackend,
    /// Fine-level rhs buffer (multigrid path).
    rhs: Vec<f64>,
    /// Fine-level κ buffer, refilled per solve.
    kappa: Vec<f64>,
    /// Current solution; doubles as the warm start for the next solve.
    solution: Vec<f64>,
    workspace: SolverWorkspace,
    /// Count of forward solves (cost bookkeeping for the tables).
    evaluations: usize,
    last_stats: Option<SolveStats>,
    total_cg_iterations: usize,
}

impl PoissonModel {
    /// Build a model on an `n × n` grid with the given KL field.
    pub fn new(n: usize, field: &KlField2d) -> Self {
        let grid = StructuredGrid::new(n);
        let phi_elements = Arc::new(field.tabulate(&grid.element_centers()));
        let phi_qoi = Arc::new(field.tabulate(&paper_qoi_points()));
        Self::with_tabulated(n, phi_elements, phi_qoi)
    }

    /// Build a model from pre-tabulated KL bases (shared via `Arc`
    /// across the chains/workers of a hierarchy so each worker skips the
    /// expensive tabulation).
    ///
    /// # Panics
    /// Panics if `phi_elements` does not have one row per element of the
    /// `n × n` grid.
    pub fn with_tabulated(
        n: usize,
        phi_elements: Arc<DenseMatrix>,
        phi_qoi: Arc<DenseMatrix>,
    ) -> Self {
        let grid = StructuredGrid::new(n);
        assert_eq!(
            phi_elements.rows(),
            grid.n_elements(),
            "PoissonModel: tabulated basis does not match the grid"
        );
        let backend = SolverBackend::build(&grid);
        let n_nodes = grid.n_nodes();
        let n_elements = grid.n_elements();
        Self {
            grid,
            phi_elements,
            phi_qoi,
            obs_points: paper_observation_points(),
            opts: SolverOptions {
                rel_tol: 1e-8,
                ..Default::default()
            },
            backend,
            rhs: vec![0.0; n_nodes],
            kappa: vec![0.0; n_elements],
            solution: vec![0.0; n_nodes],
            workspace: SolverWorkspace::new(),
            evaluations: 0,
            last_stats: None,
            total_cg_iterations: 0,
        }
    }

    /// Parameter dimension `m`.
    pub fn dim(&self) -> usize {
        self.phi_elements.cols()
    }

    /// Number of degrees of freedom (nodes).
    pub fn n_dofs(&self) -> usize {
        self.grid.n_nodes()
    }

    pub fn grid(&self) -> &StructuredGrid {
        &self.grid
    }

    pub fn observation_points(&self) -> &[(f64, f64)] {
        &self.obs_points
    }

    /// Forward solves performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// CG iterations of the most recent solve (`0` before any solve).
    pub fn last_iterations(&self) -> usize {
        self.last_stats.map_or(0, |s| s.iterations)
    }

    /// Final residual of the most recent solve (`0.0` before any solve).
    pub fn last_residual(&self) -> f64 {
        self.last_stats.map_or(0.0, |s| s.residual)
    }

    /// Total CG iterations across all solves — the `t_l`-style cost
    /// counter the paper's tables aggregate per level.
    pub fn total_cg_iterations(&self) -> usize {
        self.total_cg_iterations
    }

    /// Which solve backend this model uses (`"mg-cg"` or `"ssor-cg"`).
    pub fn solver_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Override the iteration controls (tests and experiments).
    pub fn set_solver_options(&mut self, opts: SolverOptions) {
        self.opts = opts;
    }

    /// Element-wise diffusion coefficients `κ = exp(Φ_e θ)`.
    pub fn kappa_elements(&self, theta: &[f64]) -> Vec<f64> {
        self.phi_elements
            .matvec(theta)
            .into_iter()
            .map(f64::exp)
            .collect()
    }

    /// Evaluate `κ` into the reusable buffer.
    fn update_kappa(&mut self, theta: &[f64]) {
        self.phi_elements.matvec_into(theta, &mut self.kappa);
        for k in &mut self.kappa {
            *k = k.exp();
        }
    }

    /// Refill the per-level operators and solve; the solution lands in
    /// `self.solution`.
    ///
    /// # Panics
    /// Panics if CG stalls: an unconverged forward solve would silently
    /// poison the posterior, so it is fatal in every build profile.
    fn solve_in_place(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), self.dim(), "PoissonModel::solve: wrong dim");
        self.update_kappa(theta);
        let stats = match &mut self.backend {
            SolverBackend::Multigrid {
                gmg,
                patterns,
                level_n,
                coarse_kappa,
            } => {
                patterns[0].refill_values(&self.kappa, gmg.matrix_mut(0).values_mut());
                patterns[0].refill_rhs(&self.kappa, &mut self.rhs);
                for l in 1..level_n.len() {
                    let (done, rest) = coarse_kappa.split_at_mut(l - 1);
                    let src: &[f64] = if l == 1 { &self.kappa } else { &done[l - 2] };
                    coarsen_kappa(level_n[l - 1], src, &mut rest[0]);
                    patterns[l].refill_values(&rest[0], gmg.matrix_mut(l).values_mut());
                }
                gmg.refresh();
                cg_into(
                    gmg.matrix(0),
                    &self.rhs,
                    &mut self.solution,
                    &*gmg,
                    self.opts,
                    &mut self.workspace,
                )
            }
            SolverBackend::Ssor { op, inv_diag } => {
                op.refill(&self.kappa);
                op.matrix().recip_diagonal_into(inv_diag);
                let pre = CachedSsorPrecond::new(op.matrix(), 1.0, inv_diag);
                cg_into(
                    op.matrix(),
                    op.rhs(),
                    &mut self.solution,
                    &pre,
                    self.opts,
                    &mut self.workspace,
                )
            }
        };
        assert!(
            stats.converged,
            "PoissonModel::solve ({}): CG stalled after {} iterations at residual {:.3e} \
             (n = {}) — aborting rather than corrupting the posterior",
            self.backend.name(),
            stats.iterations,
            stats.residual,
            self.grid.n(),
        );
        self.evaluations += 1;
        self.total_cg_iterations += stats.iterations;
        self.last_stats = Some(stats);
    }

    /// Solve the PDE for parameters `theta`, returning the nodal solution.
    pub fn solve(&mut self, theta: &[f64]) -> Vec<f64> {
        self.solve_in_place(theta);
        self.solution.clone()
    }

    /// Forward map: PDE solution at the observation points.
    pub fn forward(&mut self, theta: &[f64]) -> Vec<f64> {
        self.solve_in_place(theta);
        self.obs_points
            .iter()
            .map(|&(x, y)| self.grid.interpolate(&self.solution, x, y))
            .collect()
    }

    /// The paper's QOI: the diffusion field `κ(x_k, θ)` on the 33×33 QOI
    /// grid. Does not require a PDE solve.
    pub fn qoi(&self, theta: &[f64]) -> Vec<f64> {
        self.phi_qoi
            .matvec(theta)
            .into_iter()
            .map(f64::exp)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble;
    use uq_linalg::solvers::{cg, IdentityPrecond};

    fn small_field() -> KlField2d {
        KlField2d::new(0.15, 1.0, 16)
    }

    #[test]
    fn observation_points_count() {
        assert_eq!(paper_observation_points().len(), 36);
        assert_eq!(paper_qoi_points().len(), 1089);
    }

    #[test]
    fn zero_theta_gives_linear_solution() {
        // θ = 0 ⇒ κ ≡ 1 ⇒ u = x
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let obs = model.forward(&[0.0; 16]);
        for (o, &(x, _)) in obs.iter().zip(model.observation_points()) {
            assert!((o - x).abs() < 1e-6, "obs {o} vs x {x}");
        }
    }

    #[test]
    fn qoi_at_zero_theta_is_one() {
        let field = small_field();
        let model = PoissonModel::new(16, &field);
        for q in model.qoi(&[0.0; 16]) {
            assert!((q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_is_deterministic_and_counts_evals() {
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let theta: Vec<f64> = (0..16).map(|i| 0.2 * ((i % 5) as f64 - 2.0)).collect();
        let a = model.forward(&theta);
        let b = model.forward(&theta);
        assert_eq!(model.evaluations(), 2);
        assert!(uq_linalg::vector::max_abs_diff(&a, &b) < 1e-7);
    }

    #[test]
    fn mesh_refinement_converges() {
        // same θ on h = 1/8, 1/16, 1/32: successive differences shrink
        let field = small_field();
        let theta: Vec<f64> = (0..16).map(|i| 0.3 * ((i as f64 * 1.7).sin())).collect();
        let mut coarse = PoissonModel::new(8, &field);
        let mut mid = PoissonModel::new(16, &field);
        let mut fine = PoissonModel::new(32, &field);
        let oc = coarse.forward(&theta);
        let om = mid.forward(&theta);
        let of = fine.forward(&theta);
        let d1 = uq_linalg::vector::max_abs_diff(&oc, &om);
        let d2 = uq_linalg::vector::max_abs_diff(&om, &of);
        assert!(
            d2 < d1,
            "refinement should contract: |F8-F16| = {d1}, |F16-F32| = {d2}"
        );
    }

    #[test]
    fn kappa_elements_positive() {
        let field = small_field();
        let model = PoissonModel::new(8, &field);
        let theta: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 0.4).collect();
        for k in model.kappa_elements(&theta) {
            assert!(k > 0.0);
        }
    }

    #[test]
    fn backend_selection_by_mesh_size() {
        let field = small_field();
        assert_eq!(PoissonModel::new(16, &field).solver_name(), "mg-cg");
        assert_eq!(PoissonModel::new(8, &field).solver_name(), "mg-cg");
        assert_eq!(PoissonModel::new(4, &field).solver_name(), "ssor-cg");
        assert_eq!(PoissonModel::new(7, &field).solver_name(), "ssor-cg");
    }

    #[test]
    fn mg_solution_matches_direct_solve() {
        // the full pipeline (refill + MG-CG) against a from-scratch
        // assemble + plain CG, on a non-trivial κ
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let theta: Vec<f64> = (0..16).map(|i| 0.4 * ((i as f64 * 2.3).cos())).collect();
        let u = model.solve(&theta);
        let kappa = model.kappa_elements(&theta);
        let sys = assemble(model.grid(), &kappa);
        let reference = cg(
            &sys.matrix,
            &sys.rhs,
            None,
            &IdentityPrecond,
            SolverOptions::default(),
        );
        assert!(reference.converged);
        assert!(
            uq_linalg::vector::max_abs_diff(&u, &reference.x) < 1e-6,
            "pipeline and direct solve disagree"
        );
    }

    #[test]
    fn ssor_fallback_matches_direct_solve() {
        // odd mesh: the SSOR-CG fallback path with the persistent
        // reciprocal-diagonal cache, re-solved with changing κ so stale
        // cache entries would be caught
        let field = small_field();
        let mut model = PoissonModel::new(7, &field);
        assert_eq!(model.solver_name(), "ssor-cg");
        for scale in [0.3f64, -0.5, 0.8] {
            let theta: Vec<f64> = (0..16).map(|i| scale * ((i as f64 * 1.3).sin())).collect();
            let u = model.solve(&theta);
            let kappa = model.kappa_elements(&theta);
            let sys = assemble(model.grid(), &kappa);
            let reference = cg(
                &sys.matrix,
                &sys.rhs,
                None,
                &IdentityPrecond,
                SolverOptions::default(),
            );
            assert!(reference.converged);
            assert!(
                uq_linalg::vector::max_abs_diff(&u, &reference.x) < 1e-6,
                "ssor fallback diverged from direct solve at scale {scale}"
            );
        }
    }

    #[test]
    fn solve_records_iteration_stats() {
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        assert_eq!(model.last_iterations(), 0);
        model.forward(&[0.1; 16]);
        assert!(model.last_iterations() > 0);
        assert!(model.last_residual() >= 0.0);
        assert_eq!(model.total_cg_iterations(), model.last_iterations());
        let first = model.total_cg_iterations();
        model.forward(&[0.0; 16]);
        assert!(model.total_cg_iterations() >= first);
    }

    #[test]
    #[should_panic(expected = "CG stalled")]
    fn stalled_solve_panics_in_all_profiles() {
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        model.set_solver_options(SolverOptions {
            rel_tol: 1e-14,
            abs_tol: 1e-300,
            max_iter: 1,
        });
        model.forward(&[0.3; 16]);
    }

    #[test]
    fn build_mg_hierarchy_matches_model_solve() {
        // the public hierarchy builder must reproduce the model's
        // internal solve exactly: same fine operator, same coarse
        // operators, hence the same CG iteration count from a cold start
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let theta: Vec<f64> = (0..16).map(|i| 0.3 * ((i as f64 * 1.1).sin())).collect();
        model.forward(&theta); // first solve: cold start from zeros
        let kappa = model.kappa_elements(&theta);
        let h = build_mg_hierarchy(16, &kappa).expect("n = 16 supports MG");
        let sys = assemble(model.grid(), &kappa);
        assert_eq!(h.matrix(0).values(), sys.matrix.values());
        let r = cg(
            h.matrix(0),
            &sys.rhs,
            None,
            &h,
            SolverOptions {
                rel_tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(r.converged);
        assert_eq!(
            r.iterations,
            model.last_iterations(),
            "helper hierarchy diverged from the model's"
        );
    }

    #[test]
    fn coarsen_kappa_averages_children() {
        let fine = vec![
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            1.0, 1.0, 2.0, 2.0, //
            1.0, 1.0, 2.0, 2.0,
        ];
        let mut coarse = vec![0.0; 4];
        coarsen_kappa(4, &fine, &mut coarse);
        assert_eq!(coarse, vec![2.5, 6.5, 1.0, 2.0]);
    }
}
