//! The Poisson forward model `F: θ ↦ u(x_obs)`.
//!
//! Maps KL coefficients to the PDE solution evaluated at observation
//! points, exactly the paper's Section 3.1 setup: the log-diffusion field
//! is `log κ = Σ_k √λ_k φ_k θ_k` (correlation length 0.15, variance 1,
//! `m = 113`), discretized with Q1 elements on a structured grid.

use crate::assembly::assemble;
use crate::grid::StructuredGrid;
use uq_linalg::dense::DenseMatrix;
use uq_linalg::solvers::{cg, SolverOptions, SsorPrecond};
use uq_randfield::KlField2d;

/// The paper's 36 observation points `{2/32, 7/32, 13/32, 19/32, 25/32,
/// 3/32}²` (used verbatim, including the likely-typo `3/32`).
pub fn paper_observation_points() -> Vec<(f64, f64)> {
    let coords = [
        2.0 / 32.0,
        7.0 / 32.0,
        13.0 / 32.0,
        19.0 / 32.0,
        25.0 / 32.0,
        3.0 / 32.0,
    ];
    let mut pts = Vec::with_capacity(36);
    for &x in &coords {
        for &y in &coords {
            pts.push((x, y));
        }
    }
    pts
}

/// QOI evaluation grid of width 1/32 (33×33 points) from the paper:
/// `Q(θ)_k = κ(x_k, θ)`.
pub fn paper_qoi_points() -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(33 * 33);
    for j in 0..33 {
        for i in 0..33 {
            pts.push((i as f64 / 32.0, j as f64 / 32.0));
        }
    }
    pts
}

/// One level of the Poisson forward-model hierarchy.
pub struct PoissonModel {
    grid: StructuredGrid,
    /// Tabulated KL basis at element centers: `log κ_elems = Φ_e θ`.
    phi_elements: DenseMatrix,
    /// Tabulated KL basis at QOI points: `Q(θ) = exp(Φ_q θ)`.
    phi_qoi: DenseMatrix,
    obs_points: Vec<(f64, f64)>,
    opts: SolverOptions,
    /// Warm-start cache: last solution (same BCs, nearby κ ⇒ few CG iters).
    last_solution: Option<Vec<f64>>,
    /// Count of forward solves (cost bookkeeping for the tables).
    evaluations: usize,
}

impl PoissonModel {
    /// Build a model on an `n × n` grid with the given KL field.
    pub fn new(n: usize, field: &KlField2d) -> Self {
        let grid = StructuredGrid::new(n);
        let phi_elements = field.tabulate(&grid.element_centers());
        let phi_qoi = field.tabulate(&paper_qoi_points());
        Self {
            grid,
            phi_elements,
            phi_qoi,
            obs_points: paper_observation_points(),
            opts: SolverOptions {
                rel_tol: 1e-8,
                ..Default::default()
            },
            last_solution: None,
            evaluations: 0,
        }
    }

    /// Parameter dimension `m`.
    pub fn dim(&self) -> usize {
        self.phi_elements.cols()
    }

    /// Number of degrees of freedom (nodes).
    pub fn n_dofs(&self) -> usize {
        self.grid.n_nodes()
    }

    pub fn grid(&self) -> &StructuredGrid {
        &self.grid
    }

    pub fn observation_points(&self) -> &[(f64, f64)] {
        &self.obs_points
    }

    /// Forward solves performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Element-wise diffusion coefficients `κ = exp(Φ_e θ)`.
    pub fn kappa_elements(&self, theta: &[f64]) -> Vec<f64> {
        self.phi_elements
            .matvec(theta)
            .into_iter()
            .map(f64::exp)
            .collect()
    }

    /// Solve the PDE for parameters `theta`, returning the nodal solution.
    pub fn solve(&mut self, theta: &[f64]) -> Vec<f64> {
        assert_eq!(theta.len(), self.dim(), "PoissonModel::solve: wrong dim");
        let kappa = self.kappa_elements(theta);
        let sys = assemble(&self.grid, &kappa);
        let pre = SsorPrecond::new(&sys.matrix, 1.0);
        let warm = self.last_solution.as_deref();
        let result = cg(&sys.matrix, &sys.rhs, warm, &pre, self.opts);
        debug_assert!(
            result.converged,
            "CG stalled at residual {}",
            result.residual
        );
        self.evaluations += 1;
        self.last_solution = Some(result.x.clone());
        result.x
    }

    /// Forward map: PDE solution at the observation points.
    pub fn forward(&mut self, theta: &[f64]) -> Vec<f64> {
        let u = self.solve(theta);
        self.obs_points
            .iter()
            .map(|&(x, y)| self.grid.interpolate(&u, x, y))
            .collect()
    }

    /// The paper's QOI: the diffusion field `κ(x_k, θ)` on the 33×33 QOI
    /// grid. Does not require a PDE solve.
    pub fn qoi(&self, theta: &[f64]) -> Vec<f64> {
        self.phi_qoi
            .matvec(theta)
            .into_iter()
            .map(f64::exp)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field() -> KlField2d {
        KlField2d::new(0.15, 1.0, 16)
    }

    #[test]
    fn observation_points_count() {
        assert_eq!(paper_observation_points().len(), 36);
        assert_eq!(paper_qoi_points().len(), 1089);
    }

    #[test]
    fn zero_theta_gives_linear_solution() {
        // θ = 0 ⇒ κ ≡ 1 ⇒ u = x
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let obs = model.forward(&[0.0; 16]);
        for (o, &(x, _)) in obs.iter().zip(model.observation_points()) {
            assert!((o - x).abs() < 1e-6, "obs {o} vs x {x}");
        }
    }

    #[test]
    fn qoi_at_zero_theta_is_one() {
        let field = small_field();
        let model = PoissonModel::new(16, &field);
        for q in model.qoi(&[0.0; 16]) {
            assert!((q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_is_deterministic_and_counts_evals() {
        let field = small_field();
        let mut model = PoissonModel::new(16, &field);
        let theta: Vec<f64> = (0..16).map(|i| 0.2 * ((i % 5) as f64 - 2.0)).collect();
        let a = model.forward(&theta);
        let b = model.forward(&theta);
        assert_eq!(model.evaluations(), 2);
        assert!(uq_linalg::vector::max_abs_diff(&a, &b) < 1e-7);
    }

    #[test]
    fn mesh_refinement_converges() {
        // same θ on h = 1/8, 1/16, 1/32: successive differences shrink
        let field = small_field();
        let theta: Vec<f64> = (0..16).map(|i| 0.3 * ((i as f64 * 1.7).sin())).collect();
        let mut coarse = PoissonModel::new(8, &field);
        let mut mid = PoissonModel::new(16, &field);
        let mut fine = PoissonModel::new(32, &field);
        let oc = coarse.forward(&theta);
        let om = mid.forward(&theta);
        let of = fine.forward(&theta);
        let d1 = uq_linalg::vector::max_abs_diff(&oc, &om);
        let d2 = uq_linalg::vector::max_abs_diff(&om, &of);
        assert!(
            d2 < d1,
            "refinement should contract: |F8-F16| = {d1}, |F16-F32| = {d2}"
        );
    }

    #[test]
    fn kappa_elements_positive() {
        let field = small_field();
        let model = PoissonModel::new(8, &field);
        let theta: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 0.4).collect();
        for k in model.kappa_elements(&theta) {
            assert!(k > 0.0);
        }
    }
}
