//! # uq-fem
//!
//! A from-scratch Q1 finite-element solver for the paper's Poisson
//! subsurface-flow model (the role DUNE plays in the original):
//!
//! * [`grid`] — structured quadrilateral grids on `[0, 1]²`;
//! * [`assembly`] — Q1 stiffness assembly for `-∇·(κ∇u) = 0` with
//!   element-wise constant `κ`, symmetric Dirichlet elimination
//!   (`u = 0` left, `u = 1` right, natural Neumann top/bottom);
//! * [`poisson`] — the forward model `θ ↦ u(x_obs)` with the KL-expanded
//!   log-normal diffusion field, preconditioned-CG solve and warm starts;
//! * [`problem`] — the Bayesian inverse problem (Gaussian likelihood
//!   `N(F(θ), σ_F² I)`, prior `N(0, 4I)`) as a
//!   [`uq_mcmc::SamplingProblem`], plus the three-level hierarchy with
//!   mesh widths 1/16, 1/64, 1/256 used throughout the paper.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod assembly;
pub mod grid;
pub mod operator;
pub mod poisson;
pub mod problem;

pub use grid::StructuredGrid;
pub use operator::{StiffnessOperator, StiffnessPattern};
pub use poisson::PoissonModel;
pub use problem::{PoissonHierarchy, PoissonProblem};
