//! Integration tests of the allocation-free forward-solve pipeline:
//! in-place refill correctness (property-based) and the multigrid
//! iteration-count regression guarding the PR's mesh-independence claim.

use proptest::prelude::*;
use uq_fem::assembly::assemble;
use uq_fem::poisson::build_mg_hierarchy;
use uq_fem::{StiffnessOperator, StructuredGrid};
use uq_linalg::solvers::{cg, SolverOptions, SsorPrecond};

proptest! {
    /// The scatter-map refill must reproduce a from-scratch assembly
    /// *bit for bit* (same contributions summed in the same order), for
    /// arbitrary positive coefficient fields.
    #[test]
    fn refill_is_bit_identical_to_assemble(
        seed_vals in prop::collection::vec(0.1f64..10.0, 64),
        n in 3usize..9,
    ) {
        let grid = StructuredGrid::new(n);
        let kappa: Vec<f64> = (0..grid.n_elements())
            .map(|e| seed_vals[e % seed_vals.len()])
            .collect();
        let reference = assemble(&grid, &kappa);
        let mut op = StiffnessOperator::new(&grid);
        op.refill(&kappa);
        prop_assert_eq!(op.matrix().nnz(), reference.matrix.nnz());
        // exact equality on purpose: bitwise, not within-tolerance
        prop_assert_eq!(op.matrix().values(), reference.matrix.values());
        prop_assert_eq!(op.rhs(), &reference.rhs[..]);
    }

    /// Refilling through intermediate κ draws leaves no residue.
    #[test]
    fn refill_history_independent(
        a in prop::collection::vec(0.2f64..5.0, 16),
        b in prop::collection::vec(0.2f64..5.0, 16),
    ) {
        let grid = StructuredGrid::new(4);
        let mut op = StiffnessOperator::new(&grid);
        op.refill(&b);
        op.refill(&a);
        let reference = assemble(&grid, &a);
        prop_assert_eq!(op.matrix().values(), reference.matrix.values());
        prop_assert_eq!(op.rhs(), &reference.rhs[..]);
    }
}

/// Smooth positive diffusion field evaluated at element centers.
fn smooth_kappa(grid: &StructuredGrid) -> Vec<f64> {
    grid.element_centers()
        .iter()
        .map(|&(x, y)| (0.8 * (3.0 * x + 1.0).sin() * (2.0 * y).cos()).exp())
        .collect()
}

/// The headline regression: MG-preconditioned CG iteration counts stay
/// flat (±2) from n = 16 to n = 64 while SSOR's grow with the mesh.
/// Uses [`build_mg_hierarchy`], i.e. the production hierarchy with its
/// 2×2-averaged coarse κ — not a test reimplementation.
#[test]
fn mg_cg_iterations_mesh_independent_while_ssor_grows() {
    let opts = SolverOptions {
        rel_tol: 1e-8,
        ..Default::default()
    };
    let mut mg_iters = Vec::new();
    let mut ssor_iters = Vec::new();
    for n in [16usize, 32, 64] {
        let grid = StructuredGrid::new(n);
        let sys = assemble(&grid, &smooth_kappa(&grid));
        let h = build_mg_hierarchy(n, &smooth_kappa(&grid)).expect("even n > 4");
        let mg = cg(h.matrix(0), &sys.rhs, None, &h, opts);
        assert!(mg.converged, "MG-CG stalled at n = {n}");
        let pre = SsorPrecond::new(&sys.matrix, 1.0);
        let ssor = cg(&sys.matrix, &sys.rhs, None, &pre, opts);
        assert!(ssor.converged, "SSOR-CG stalled at n = {n}");
        mg_iters.push(mg.iterations);
        ssor_iters.push(ssor.iterations);
    }
    let (mg_min, mg_max) = (
        *mg_iters.iter().min().unwrap(),
        *mg_iters.iter().max().unwrap(),
    );
    assert!(
        mg_max <= mg_min + 2,
        "MG-CG iterations should be mesh-independent (±2): {mg_iters:?}"
    );
    assert!(
        ssor_iters[2] > ssor_iters[0],
        "SSOR-CG iterations should grow with the mesh: {ssor_iters:?}"
    );
    assert!(
        ssor_iters[2] > mg_iters[2],
        "at n = 64 MG ({}) must beat SSOR ({})",
        mg_iters[2],
        ssor_iters[2]
    );
}

/// The refilled fine operator really is the one `assemble` would build,
/// end to end through the production hierarchy builder.
#[test]
fn hierarchy_fine_level_matches_assembly() {
    let grid = StructuredGrid::new(16);
    let sys = assemble(&grid, &smooth_kappa(&grid));
    let h = build_mg_hierarchy(16, &smooth_kappa(&grid)).expect("even n > 4");
    assert_eq!(h.matrix(0).values(), sys.matrix.values());
}
