//! The per-requester **rewind ledger**: exact multilevel coupling state.
//!
//! ## Why a ledger
//!
//! The coupled kernel (paper Algorithm 2) is only exact if each fine
//! chain's coarse proposals are drawn from the coarse kernel `K_{l-1}^ρ`
//! **started at the coarse state paired with the requester's current fine
//! state** (the *anchor*) — by reversibility the `K^ρ` proposal densities
//! then cancel into the coarse density ratio. The telescoping estimator,
//! on the other hand, needs a coarse stream whose marginal is exactly
//! `π_{l-1}` to pair against: an autonomous subchain **continued from the
//! last sample served to that requester**, never rewound. No single
//! stream can satisfy both at once — rewinding to the anchor gives the
//! served stream the marginal `π_l K^ρ`, while continuing from the last
//! served sample makes the acceptance ratio inexact after a rejection
//! (both effects are `O(contraction^ρ)`; DESIGN.md §5 derives them).
//!
//! The ledger therefore maintains, per requester, a **session** with two
//! coupled tracks:
//!
//! * the **proposal track** rewinds the serving chain to the requester's
//!   anchor and advances `ρ` steps — the Algorithm-2 proposal, keeping
//!   the fine marginal exact for every `ρ`;
//! * the **pairing track** continues from the session's last pairing
//!   state (initially the requester's starting anchor) and advances `ρ`
//!   steps with the same driving randomness — an autonomous `K^ρ`
//!   subchain whose marginal is exactly `π_{l-1}`, the correction mate
//!   the estimator pairs against under [`PairingMode::Ledger`].
//!
//! While the requester keeps accepting, anchor and pairing state are
//! bit-identical and one `ρ`-step run serves both tracks; after the
//! first rejection they diverge and the pairing leg runs separately,
//! driven by the *same* per-serve random substream (common random
//! numbers), which keeps the mate tightly correlated with the proposal
//! without ever feeding fine-chain acceptances back into the pairing
//! track (that feedback is exactly what would bias it).
//!
//! ## Determinism and migration
//!
//! A session is identified by a seed; the randomness of serve `k` is a
//! substream derived from `(session_seed, k)`, **not** from any caller
//! RNG or server-resident state. A serve is therefore a pure function of
//! `(lease, serving problem)`: any server can execute any session's next
//! serve from a [`LedgerLease`], sessions migrate between servers as
//! plain data, and the sequential backend reproduces a runtime
//! controller's serves bit-for-bit (pinned by the parity suite in
//! `tests/ledger_exactness.rs`).

use crate::coupled::{CoarseSample, MlChain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Which coarse stream the telescoping estimator pairs corrections with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PairingMode {
    /// Pair with the served proposal (`MlChain::last_coarse`). This is
    /// the historical pairing: lowest correction variance (the proposal
    /// couples tightly to the fine state) but an `O(contraction^ρ)` bias
    /// in the correction mean — the served-proposal marginal is
    /// `π_l K^ρ`, not `π_{l-1}`.
    #[default]
    Proposal,
    /// Pair with the ledger's pairing mate (`MlChain::last_pairing`):
    /// the autonomous per-requester subchain with marginal exactly
    /// `π_{l-1}`, making the correction mean unbiased for every `ρ`. The
    /// mate decouples from the fine state after rejections, so the
    /// correction variance is higher than [`PairingMode::Proposal`]'s —
    /// the measured trade-off is documented in DESIGN.md §5.
    Ledger,
}

/// Mix function (splitmix64 finalizer) used for all ledger seed
/// derivations.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of a requester's session stream: every backend derives it the
/// same way so ledgers are comparable across backends.
pub fn session_seed(base: u64, coarse_level: usize, requester: u64) -> u64 {
    mix(base
        .wrapping_add(mix(coarse_level as u64 ^ 0x1EDA_6E55))
        .wrapping_add(mix(requester ^ 0x9E37_79B9_7F4A_7C15)))
}

/// Seed of serve `serve_index`'s driving substream. Both tracks of a
/// diverged serve reuse the same substream (common random numbers), so
/// the mate stays coupled to the proposal without acceptance feedback.
pub fn leg_seed(session_seed: u64, serve_index: u64) -> u64 {
    mix(session_seed ^ serve_index.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Salt a session seed with the session's **generation**: a requester
/// whose session was dropped by a migration (`LedgerBook::forget_requester`)
/// and later re-opened must not replay the substreams of its previous
/// life, so each re-opened session advances a generation counter.
/// Generation 0 is the identity, preserving the cross-backend parity of
/// first-generation sessions (the bit-parity suites pin that).
pub fn generation_seed(session_seed: u64, generation: u64) -> u64 {
    if generation == 0 {
        session_seed
    } else {
        mix(session_seed ^ generation.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }
}

/// Seed namespace of a **tenant** sharing a long-lived service
/// (`uq_parallel::service`): every job a tenant submits derives its
/// effective base seed through this, so two tenants submitting the very
/// same config can never collide on a [`session_seed`] (and hence never
/// share a [`leg_seed`] substream). Deliberately *not* the identity for
/// any tenant — a serviced job is always namespaced, and the standalone
/// run it must be bit-identical to uses the same derived seed.
pub fn tenant_seed(base: u64, tenant: u64) -> u64 {
    mix(base.wrapping_add(mix(tenant ^ 0xB5AD_4ECE_DA1C_E2A9)))
}

/// Everything a (stateless) server needs to execute one serve of a
/// session: the requester's current anchor, the session's pairing state
/// and stream position. Sessions are plain data — the ledger can live at
/// the phonebook and leases travel in messages.
#[derive(Clone, Debug)]
pub struct LedgerLease {
    /// Session stream identity (see [`session_seed`]).
    pub session_seed: u64,
    /// Serves completed so far (the stream position).
    pub serves: u64,
    /// The pairing track's current state — `None` before the first serve
    /// (the track then starts merged at the requester's anchor).
    pub pairing: Option<CoarseSample>,
    /// The coarse state paired with the requester's current fine state.
    pub anchor: CoarseSample,
}

impl LedgerLease {
    /// A fresh session lease for `anchor`.
    pub fn fresh(session_seed: u64, anchor: CoarseSample) -> Self {
        Self {
            session_seed,
            serves: 0,
            pairing: None,
            anchor,
        }
    }

    /// Whether the pairing track currently coincides with the anchor
    /// (one `ρ`-step run then serves both tracks).
    pub fn merged(&self) -> bool {
        match &self.pairing {
            None => true,
            Some(p) => p.theta == self.anchor.theta,
        }
    }
}

/// One executed serve: the Algorithm-2 proposal (with the pairing mate
/// piggybacked in [`CoarseSample::mate`]), the session's advanced pairing
/// state, and whether the tracks were diverged.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The proposal to fulfill the requester's step with; its `mate`
    /// field carries the pairing state served alongside.
    pub proposal: CoarseSample,
    /// The pairing track's new state (becomes the session's `pairing`).
    pub pairing: CoarseSample,
    /// The pairing leg ran separately from the proposal leg.
    pub diverged: bool,
}

/// Execute one ledger serve on `chain` (the serving chain for the
/// lease's coarse level), advancing `rho` kernel steps per track.
///
/// The chain is left at the end of the last leg run — callers whose
/// chain has its own trajectory (parallel serving controllers) snapshot
/// with [`MlChain::current_as_sample`] before and
/// [`MlChain::restore`] after; the sequential source's chain exists only
/// to serve, so it skips that. Only the kernel is re-evaluated: restores
/// use the cached densities/QOIs inside the lease samples, never the
/// forward model.
pub fn serve(chain: &mut MlChain, rho: usize, lease: &LedgerLease) -> ServeOutcome {
    let rho = rho.max(1);
    let merged = lease.merged();
    // proposal track: the exactness rewind to the requester's anchor
    let mut rng = StdRng::seed_from_u64(leg_seed(lease.session_seed, lease.serves));
    chain.restore(&lease.anchor);
    for _ in 0..rho {
        chain.step(&mut rng);
    }
    let mut proposal = chain.current_as_sample();
    // pairing track: continue the autonomous subchain from the last
    // pairing state, re-using the same substream (common random numbers)
    let pairing = if merged {
        proposal.clone()
    } else {
        let mut rng = StdRng::seed_from_u64(leg_seed(lease.session_seed, lease.serves));
        chain.restore(lease.pairing.as_ref().expect("diverged lease has pairing"));
        for _ in 0..rho {
            chain.step(&mut rng);
        }
        chain.current_as_sample()
    };
    proposal.mate = Some(Box::new(pairing.clone()));
    ServeOutcome {
        proposal,
        pairing,
        diverged: !merged,
    }
}

/// Aggregate ledger statistics (kept by the phonebooks, reported with
/// the run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Sessions opened (one per requester/coarse-level pair and
    /// generation).
    pub sessions: usize,
    /// Serves committed to a session (real serves plus speculative
    /// hits).
    pub serves: usize,
    /// Committed serves whose pairing track had diverged from the anchor
    /// (each costs a second `ρ`-step leg on the server).
    pub diverged: usize,
    /// Speculative serves dispatched to idle servers.
    pub spec_launched: usize,
    /// Requests answered from a stored speculation (the serve never
    /// touched the requester's critical path).
    pub spec_hits: usize,
    /// Speculations discarded: anchor mismatch at commit time, or a
    /// speculative outcome arriving after its stream position was
    /// already served for real.
    pub spec_misses: usize,
}

impl LedgerStats {
    /// Fraction of committed serves that needed the separate pairing leg.
    pub fn diverged_fraction(&self) -> f64 {
        if self.serves == 0 {
            0.0
        } else {
            self.diverged as f64 / self.serves as f64
        }
    }

    /// Fraction of committed serves answered from a speculation.
    pub fn hit_rate(&self) -> f64 {
        if self.serves == 0 {
            0.0
        } else {
            self.spec_hits as f64 / self.serves as f64
        }
    }

    /// Wasted speculative serve-legs per committed serve (the extra
    /// server work speculation spends on discards) — the DES `spec_waste`
    /// input.
    pub fn waste_per_serve(&self) -> f64 {
        if self.serves == 0 {
            0.0
        } else {
            self.spec_launched.saturating_sub(self.spec_hits) as f64 / self.serves as f64
        }
    }
}

/// A completed speculative serve parked at the phonebook, awaiting the
/// requester's next `CoarseRequest`.
#[derive(Clone, Debug)]
struct Speculation {
    /// Stream position the speculation was computed for; valid only
    /// while it equals the session's `serves`.
    serves: u64,
    outcome: ServeOutcome,
}

/// Phonebook-side record of one requester's ledger session.
#[derive(Clone, Debug)]
struct LedgerSession {
    seed: u64,
    serves: u64,
    pairing: Option<CoarseSample>,
    /// Accept-case prediction of the requester's next anchor: the last
    /// served proposal (mate stripped). A speculation serves exactly
    /// this anchor; the requester's next request matches it bit-for-bit
    /// whenever the served proposal was accepted (and also after a
    /// full-rejection serve that ended where it started).
    next_anchor: Option<CoarseSample>,
    /// Stream position a dispatched speculative serve is computing
    /// (`None` when no speculation is in flight).
    spec_inflight: Option<u64>,
    /// A stored speculation awaiting commit or discard.
    spec: Option<Speculation>,
    /// Exponential miss backoff: consecutive misses double it, a hit
    /// resets it. While > 0, that many write-backs pass before the
    /// session becomes a speculation candidate again — reject-heavy
    /// sessions stop burning wasted serve legs, accept streaks keep
    /// full speculation throughput.
    spec_backoff: u32,
    /// Write-backs left to skip before re-candidacy (loaded from
    /// `spec_backoff` after a miss).
    spec_cooldown: u32,
    /// A real serve of the current stream position is outstanding (lease
    /// issued, write-back not yet applied). While set, commits are
    /// refused: the phonebooks' messaging order (write-back enqueued
    /// before the proposal reaches the requester) makes this state
    /// unreachable from a request, but the book defends the no-replay
    /// invariant on its own.
    real_inflight: bool,
}

/// Cap on the per-session speculation miss backoff (write-backs skipped
/// between speculation attempts after repeated misses).
const SPEC_BACKOFF_CAP: u32 = 16;

/// Checkpoint state of one parked speculation (public mirror of the
/// private `Speculation`, flattened for serialization).
#[derive(Clone, Debug, PartialEq)]
pub struct SpeculationState {
    /// Stream position the speculation was computed for.
    pub serves: u64,
    pub proposal: CoarseSample,
    pub pairing: CoarseSample,
    pub diverged: bool,
}

/// Checkpoint state of one ledger session, keyed inline by
/// `(requester, level)` — the public mirror of the private
/// `LedgerSession`, with full speculation/backoff fidelity.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionState {
    pub requester: usize,
    pub level: usize,
    pub seed: u64,
    pub serves: u64,
    pub pairing: Option<CoarseSample>,
    pub next_anchor: Option<CoarseSample>,
    /// Stream position of a dispatched-but-unfinished speculation. At a
    /// quiesced cut this is `None` (the barrier drains in-flight
    /// serves); kept for fidelity regardless.
    pub spec_inflight: Option<u64>,
    pub spec: Option<SpeculationState>,
    pub spec_backoff: u32,
    pub spec_cooldown: u32,
    /// Outstanding real serve. `false` at a quiesced cut.
    pub real_inflight: bool,
}

/// The full [`LedgerBook`] as plain data, for checkpointing. All maps
/// are exported **sorted by key** so identical books always serialize
/// to identical bytes (the content-addressed store relies on that);
/// candidate queues preserve their round-robin order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerState {
    /// Sessions sorted by `(requester, level)`.
    pub sessions: Vec<SessionState>,
    /// Generation counters sorted by `(requester, level)`.
    pub generations: Vec<(usize, usize, u64)>,
    /// Speculation candidate queues sorted by level, each in queue
    /// order.
    pub candidates: Vec<(usize, Vec<usize>)>,
    pub stats: LedgerStats,
}

/// The phonebook's per-requester session registry — the rewind ledger
/// plus its speculation store. Keyed by `(requester rank, coarse
/// level)`; both parallel phonebooks (thread scheduler and cooperative
/// runtime) drive the same book, which is what keeps their serves
/// comparable bit-for-bit.
///
/// ## Speculation protocol
///
/// A serve's write-back records the served proposal as the session's
/// *predicted next anchor* (the accept case). While a server is idle
/// and no real request is queued anywhere, the phonebook may dispatch a
/// **speculative serve** for the predicted lease
/// ([`speculative_lease`](Self::speculative_lease)); the completed
/// outcome is parked ([`store_speculation`](Self::store_speculation))
/// and the next `CoarseRequest` whose anchor matches the prediction is
/// answered from it directly ([`try_commit`](Self::try_commit)) —
/// bit-for-bit what a fresh serve of the same lease would produce,
/// because serves are pure functions of the lease. A mismatching or
/// stale speculation is discarded without touching session state, so a
/// miss has **zero statistical effect**: the real serve that follows
/// derives the identical substream from `(session_seed, serves)`.
#[derive(Default)]
pub struct LedgerBook {
    sessions: HashMap<(usize, usize), LedgerSession>,
    /// Per-key generation counters; survive `forget_requester` so
    /// re-opened sessions never replay substreams (see
    /// [`generation_seed`]).
    generations: HashMap<(usize, usize), u64>,
    /// Sessions eligible for a speculative serve, per coarse level
    /// (lazily validated at pop time).
    candidates: HashMap<usize, VecDeque<usize>>,
    /// Aggregate counters, reported with the run.
    pub stats: LedgerStats,
}

impl LedgerBook {
    /// Build the lease for the next **real** serve of
    /// `(reply_to, level)`, opening the session on first contact.
    pub fn lease(
        &mut self,
        base_seed: u64,
        level: usize,
        reply_to: usize,
        anchor: CoarseSample,
    ) -> Box<LedgerLease> {
        let stats = &mut self.stats;
        let generation = self
            .generations
            .get(&(reply_to, level))
            .copied()
            .unwrap_or(0);
        let session = self.sessions.entry((reply_to, level)).or_insert_with(|| {
            stats.sessions += 1;
            LedgerSession {
                seed: generation_seed(session_seed(base_seed, level, reply_to as u64), generation),
                serves: 0,
                pairing: None,
                next_anchor: None,
                spec_inflight: None,
                spec: None,
                spec_backoff: 0,
                spec_cooldown: 0,
                real_inflight: false,
            }
        });
        session.real_inflight = true;
        Box::new(LedgerLease {
            session_seed: session.seed,
            serves: session.serves,
            pairing: session.pairing.clone(),
            anchor,
        })
    }

    /// Apply a **real** serve's write-back: advance the stream position,
    /// store the pairing state, record the served proposal as the
    /// accept-case prediction and invalidate any speculation overtaken
    /// by this serve. `session_seed` is echoed from the lease the serve
    /// executed; a write-back whose seed does not match the open session
    /// belongs to a dead generation (a migration raced the serve) and is
    /// dropped, as is one whose stream position already advanced.
    pub fn write_back(
        &mut self,
        requester: usize,
        level: usize,
        session_seed: u64,
        serves: u64,
        outcome: &ServeOutcome,
    ) {
        let Some(session) = self.sessions.get_mut(&(requester, level)) else {
            return;
        };
        if session.seed != session_seed {
            // dead-generation write-back: the session this serve
            // belonged to no longer exists
            return;
        }
        session.real_inflight = false;
        if serves <= session.serves {
            // stale write-back: the stream position already advanced
            return;
        }
        // a serve counts only once its write-back commits (poisoned or
        // dead-generation serves never inflate hit_rate/waste_per_serve)
        self.stats.serves += 1;
        self.stats.diverged += usize::from(outcome.diverged);
        session.serves = serves;
        session.pairing = Some(outcome.pairing.clone());
        let mut predicted = outcome.proposal.clone();
        predicted.mate = None;
        session.next_anchor = Some(predicted);
        if session.spec.take().is_some() {
            self.stats.spec_misses += 1;
            session.spec_backoff = (session.spec_backoff * 2 + 1).min(SPEC_BACKOFF_CAP);
            session.spec_cooldown = session.spec_backoff;
        }
        // an in-flight speculation for an older position can never be
        // stored now; forget it so the session may speculate again even
        // if its outcome message was dropped at a teardown
        if session.spec_inflight.is_some_and(|idx| idx < serves) {
            session.spec_inflight = None;
        }
        // miss backoff: reject-heavy sessions sit out a stretch of
        // serves before speculation retries, so waste stays bounded
        if session.spec_cooldown > 0 {
            session.spec_cooldown -= 1;
        } else {
            self.push_candidate(level, requester);
        }
    }

    /// Dispatchable speculative work on `level`: the lease of an
    /// accept-case serve for some session with a predicted anchor and
    /// no speculation already in flight or stored. Returns the
    /// requester the speculation belongs to alongside the lease.
    pub fn speculative_lease(&mut self, level: usize) -> Option<(usize, Box<LedgerLease>)> {
        let queue = self.candidates.get_mut(&level)?;
        while let Some(requester) = queue.pop_front() {
            let Some(session) = self.sessions.get_mut(&(requester, level)) else {
                continue;
            };
            // a session already speculating, holding a stored outcome,
            // or with a real serve of this position in flight would only
            // produce a guaranteed-discarded duplicate
            if session.spec_inflight.is_some() || session.spec.is_some() || session.real_inflight {
                continue;
            }
            let Some(anchor) = session.next_anchor.clone() else {
                continue;
            };
            session.spec_inflight = Some(session.serves);
            self.stats.spec_launched += 1;
            return Some((
                requester,
                Box::new(LedgerLease {
                    session_seed: session.seed,
                    serves: session.serves,
                    pairing: session.pairing.clone(),
                    anchor,
                }),
            ));
        }
        None
    }

    /// Park a completed speculative serve. Returns `false` (counting a
    /// miss) if the speculation went stale while in flight — its stream
    /// position was served for real, or the session migrated away
    /// (`session_seed` mismatch, echoed from the speculative lease).
    pub fn store_speculation(
        &mut self,
        requester: usize,
        level: usize,
        session_seed: u64,
        serves: u64,
        outcome: ServeOutcome,
    ) -> bool {
        let position = serves.saturating_sub(1);
        let Some(session) = self.sessions.get_mut(&(requester, level)) else {
            self.stats.spec_misses += 1;
            return false;
        };
        if session.seed != session_seed {
            self.stats.spec_misses += 1;
            return false;
        }
        if session.spec_inflight == Some(position) {
            session.spec_inflight = None;
        }
        if session.serves == position && session.spec.is_none() {
            session.spec = Some(Speculation {
                serves: position,
                outcome,
            });
            true
        } else {
            // overtaken while in flight (the speculation lost a race
            // with a real serve): back off like any other miss, so a
            // session whose requests persistently outrun its
            // speculations stops burning duplicate legs
            self.stats.spec_misses += 1;
            session.spec_backoff = (session.spec_backoff * 2 + 1).min(SPEC_BACKOFF_CAP);
            session.spec_cooldown = session.spec_backoff;
            false
        }
    }

    /// Answer a `CoarseRequest` from the stored speculation if its
    /// stream position is current and its anchor matches the incoming
    /// one bit-for-bit. On a hit the session advances exactly as a real
    /// write-back would and the precomputed proposal (pairing mate
    /// piggybacked) is returned for direct delivery; on a miss the
    /// speculation is discarded with session state untouched.
    pub fn try_commit(
        &mut self,
        requester: usize,
        level: usize,
        anchor: &CoarseSample,
    ) -> Option<CoarseSample> {
        let session = self.sessions.get_mut(&(requester, level))?;
        if session.real_inflight {
            // a real serve of this position is outstanding; its
            // write-back must land before anything may commit — leave
            // the speculation for the write-back to reconcile
            return None;
        }
        let spec = session.spec.take()?;
        let valid = spec.serves == session.serves
            && session
                .next_anchor
                .as_ref()
                .is_some_and(|predicted| predicted.theta == anchor.theta);
        if !valid {
            self.stats.spec_misses += 1;
            session.spec_backoff = (session.spec_backoff * 2 + 1).min(SPEC_BACKOFF_CAP);
            session.spec_cooldown = session.spec_backoff;
            return None;
        }
        session.serves += 1;
        session.pairing = Some(spec.outcome.pairing.clone());
        let mut predicted = spec.outcome.proposal.clone();
        predicted.mate = None;
        session.next_anchor = Some(predicted);
        self.stats.serves += 1;
        self.stats.spec_hits += 1;
        self.stats.diverged += usize::from(spec.outcome.diverged);
        // a hit clears the miss backoff: accept streaks chain
        // speculations back-to-back
        session.spec_backoff = 0;
        session.spec_cooldown = 0;
        self.push_candidate(level, requester);
        Some(spec.outcome.proposal)
    }

    /// Drop a requester's sessions (its chain was rebuilt by a
    /// reassignment; the fresh chain starts a fresh logical subchain)
    /// and advance their generations so re-opened sessions derive new
    /// substreams.
    pub fn forget_requester(&mut self, requester: usize) {
        let dropped: Vec<(usize, usize)> = self
            .sessions
            .keys()
            .filter(|&&(r, _)| r == requester)
            .copied()
            .collect();
        for key in dropped {
            self.sessions.remove(&key);
            *self.generations.entry(key).or_insert(0) += 1;
        }
    }

    /// Stream position of `(requester, level)`'s session, if open.
    pub fn session_serves(&self, requester: usize, level: usize) -> Option<u64> {
        self.sessions.get(&(requester, level)).map(|s| s.serves)
    }

    /// Session-stream seed of `(requester, level)`, if open (exposed so
    /// the fuzz/parity suites can pin generation separation).
    pub fn session_seed_of(&self, requester: usize, level: usize) -> Option<u64> {
        self.sessions.get(&(requester, level)).map(|s| s.seed)
    }

    fn push_candidate(&mut self, level: usize, requester: usize) {
        let queue = self.candidates.entry(level).or_default();
        if !queue.contains(&requester) {
            queue.push_back(requester);
        }
    }

    /// Export the whole book as deterministic plain data (sorted keys,
    /// full session fidelity) for checkpointing.
    pub fn export_state(&self) -> LedgerState {
        let mut sessions: Vec<SessionState> = self
            .sessions
            .iter()
            .map(|(&(requester, level), s)| SessionState {
                requester,
                level,
                seed: s.seed,
                serves: s.serves,
                pairing: s.pairing.clone(),
                next_anchor: s.next_anchor.clone(),
                spec_inflight: s.spec_inflight,
                spec: s.spec.as_ref().map(|sp| SpeculationState {
                    serves: sp.serves,
                    proposal: sp.outcome.proposal.clone(),
                    pairing: sp.outcome.pairing.clone(),
                    diverged: sp.outcome.diverged,
                }),
                spec_backoff: s.spec_backoff,
                spec_cooldown: s.spec_cooldown,
                real_inflight: s.real_inflight,
            })
            .collect();
        sessions.sort_by_key(|s| (s.requester, s.level));
        let mut generations: Vec<(usize, usize, u64)> = self
            .generations
            .iter()
            .map(|(&(r, l), &g)| (r, l, g))
            .collect();
        generations.sort_unstable();
        let mut candidates: Vec<(usize, Vec<usize>)> = self
            .candidates
            .iter()
            .map(|(&level, queue)| (level, queue.iter().copied().collect()))
            .collect();
        candidates.sort_by_key(|&(level, _)| level);
        LedgerState {
            sessions,
            generations,
            candidates,
            stats: self.stats,
        }
    }

    /// Rebuild a book from state captured by
    /// [`export_state`](Self::export_state): sessions resume at their
    /// exact stream positions, so post-resume serves derive the very
    /// substreams the uninterrupted run would have.
    pub fn import_state(state: LedgerState) -> Self {
        let mut book = LedgerBook {
            stats: state.stats,
            ..Default::default()
        };
        for s in state.sessions {
            book.sessions.insert(
                (s.requester, s.level),
                LedgerSession {
                    seed: s.seed,
                    serves: s.serves,
                    pairing: s.pairing,
                    next_anchor: s.next_anchor,
                    spec_inflight: s.spec_inflight,
                    spec: s.spec.map(|sp| Speculation {
                        serves: sp.serves,
                        outcome: ServeOutcome {
                            proposal: sp.proposal,
                            pairing: sp.pairing,
                            diverged: sp.diverged,
                        },
                    }),
                    spec_backoff: s.spec_backoff,
                    spec_cooldown: s.spec_cooldown,
                    real_inflight: s.real_inflight,
                },
            );
        }
        for (r, l, g) in state.generations {
            book.generations.insert((r, l), g);
        }
        for (level, queue) in state.candidates {
            book.candidates.insert(level, queue.into_iter().collect());
        }
        book
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupled::MlChain;
    use uq_mcmc::problem::GaussianTarget;
    use uq_mcmc::proposal::GaussianRandomWalk;

    fn base_chain(mean: f64, sd: f64) -> MlChain {
        MlChain::base(
            Box::new(GaussianTarget::new(vec![mean], sd)),
            Box::new(GaussianRandomWalk::new(0.6)),
            vec![0.0],
        )
    }

    fn anchor(chain: &mut MlChain, theta: f64) -> CoarseSample {
        chain.anchor_at(&[theta])
    }

    #[test]
    fn tenant_seed_namespaces_are_disjoint() {
        // distinct tenants on the same base seed must land on distinct
        // session streams for every (level, requester) pair — the
        // cross-tenant isolation the service conformance suite relies on
        let base = 0xDEAD_2026;
        let seeds: Vec<u64> = (0..64).map(|t| tenant_seed(base, t)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "tenant seeds collided");
        assert!(
            seeds.iter().all(|&s| s != base),
            "tenant namespacing must never be the identity"
        );
        for (a, &sa) in seeds.iter().enumerate() {
            for &sb in &seeds[a + 1..] {
                for level in 0..3 {
                    for requester in 0..8 {
                        assert_ne!(
                            session_seed(sa, level, requester),
                            session_seed(sb, level, requester),
                            "session streams of two tenants collided"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serve_is_deterministic_in_the_lease() {
        // a serve is a pure function of the lease: two different chain
        // instances (different trajectories) produce identical serves
        let mut a = base_chain(0.3, 0.8);
        let mut b = base_chain(0.3, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            b.step(&mut rng); // desynchronize b's own trajectory
        }
        let lease = LedgerLease::fresh(session_seed(7, 0, 4), anchor(&mut a, 0.1));
        let oa = serve(&mut a, 3, &lease);
        let ob = serve(&mut b, 3, &lease);
        assert_eq!(oa.proposal.theta, ob.proposal.theta);
        assert_eq!(oa.pairing.theta, ob.pairing.theta);
        assert_eq!(oa.proposal.log_density, ob.proposal.log_density);
    }

    #[test]
    fn merged_session_serves_one_leg() {
        let mut chain = base_chain(0.0, 1.0);
        let lease = LedgerLease::fresh(1, anchor(&mut chain, 0.0));
        assert!(lease.merged());
        let out = serve(&mut chain, 2, &lease);
        assert!(!out.diverged);
        assert_eq!(out.proposal.theta, out.pairing.theta);
        // accepted proposal keeps the session merged
        let accepted = LedgerLease {
            serves: 1,
            pairing: Some(out.pairing.clone()),
            anchor: out.pairing,
            ..lease
        };
        assert!(accepted.merged());
    }

    #[test]
    fn rejected_proposal_diverges_the_session() {
        let mut chain = base_chain(0.0, 1.0);
        let a0 = anchor(&mut chain, 0.0);
        let lease = LedgerLease::fresh(2, a0.clone());
        let out = serve(&mut chain, 2, &lease);
        // requester rejected: anchor stays, pairing advanced
        let rejected = LedgerLease {
            serves: 1,
            pairing: Some(out.pairing),
            anchor: a0,
            ..lease
        };
        assert!(!rejected.merged());
        let out2 = serve(&mut chain, 2, &rejected);
        assert!(out2.diverged);
        // the proposal still starts from the anchor (exactness rewind):
        // with common random numbers from distinct starts the two tracks
        // generally end at distinct states
        assert_ne!(out2.proposal.theta, out2.pairing.theta);
        assert_eq!(
            out2.proposal.mate.as_ref().map(|m| m.theta.clone()),
            Some(out2.pairing.theta.clone())
        );
    }

    #[test]
    fn pairing_track_ignores_the_anchor_when_diverged() {
        // the pairing track is autonomous: with identical session state,
        // different anchors change the proposal but not the mate
        let mut chain = base_chain(0.2, 0.7);
        let p = anchor(&mut chain, -0.4);
        let mk = |theta: f64, chain: &mut MlChain| LedgerLease {
            session_seed: 11,
            serves: 3,
            pairing: Some(p.clone()),
            anchor: anchor(chain, theta),
        };
        let la = mk(1.0, &mut chain);
        let lb = mk(-1.0, &mut chain);
        let oa = serve(&mut chain, 2, &la);
        let ob = serve(&mut chain, 2, &lb);
        assert_eq!(oa.pairing.theta, ob.pairing.theta);
        assert_ne!(oa.proposal.theta, ob.proposal.theta);
    }

    #[test]
    fn seeds_are_distinct_across_sessions_and_serves() {
        let s1 = session_seed(9, 0, 4);
        let s2 = session_seed(9, 0, 5);
        let s3 = session_seed(9, 1, 4);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(leg_seed(s1, 0), leg_seed(s1, 1));
    }

    #[test]
    fn stats_report_diverged_fraction() {
        let mut s = LedgerStats::default();
        assert_eq!(s.diverged_fraction(), 0.0);
        s.serves = 4;
        s.diverged = 1;
        assert!((s.diverged_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats_report_hit_rate_and_waste() {
        let mut s = LedgerStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.waste_per_serve(), 0.0);
        s.serves = 10;
        s.spec_launched = 6;
        s.spec_hits = 4;
        s.spec_misses = 2;
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.waste_per_serve() - 0.2).abs() < 1e-12);
    }

    /// Drive one full speculation round through a [`LedgerBook`]:
    /// real serve → write-back → speculative serve → store → commit.
    #[test]
    fn speculation_commit_is_bit_identical_to_the_real_serve() {
        let mut chain = base_chain(0.1, 0.9);
        let mut book = LedgerBook::default();
        let requester = 7usize;
        let a0 = anchor(&mut chain, 0.0);

        // real serve 0
        let lease = book.lease(3, 0, requester, a0);
        let out = serve(&mut chain, 2, &lease);
        book.write_back(requester, 0, lease.session_seed, 1, &out);
        assert_eq!(book.session_serves(requester, 0), Some(1));

        // the book now offers the accept-case speculation for serve 1
        let (spec_for, spec_lease) = book
            .speculative_lease(0)
            .expect("candidate after write-back");
        assert_eq!(spec_for, requester);
        assert_eq!(spec_lease.serves, 1);
        assert_eq!(spec_lease.anchor.theta, out.proposal.theta);
        let spec_out = serve(&mut chain, 2, &spec_lease);
        assert!(book.store_speculation(requester, 0, spec_lease.session_seed, 2, spec_out.clone()));

        // the requester accepted: its next request carries the served
        // proposal as anchor — commit must return the speculative
        // outcome and advance the session exactly like a real serve
        let mut accepted_anchor = out.proposal.clone();
        accepted_anchor.mate = None;
        let committed = book
            .try_commit(requester, 0, &accepted_anchor)
            .expect("matching anchor must hit");
        assert_eq!(committed.theta, spec_out.proposal.theta);
        assert_eq!(book.session_serves(requester, 0), Some(2));
        assert_eq!(book.stats.spec_hits, 1);
        // and the committed serve is bit-identical to what a fresh real
        // serve of the same lease would have produced
        let replay = serve(&mut chain, 2, &spec_lease);
        assert_eq!(committed.theta, replay.proposal.theta);
        assert_eq!(committed.log_density, replay.proposal.log_density);
    }

    #[test]
    fn mismatched_anchor_discards_speculation_without_side_effects() {
        let mut chain = base_chain(0.0, 1.0);
        let mut book = LedgerBook::default();
        let requester = 2usize;
        let lease = book.lease(5, 0, requester, anchor(&mut chain, 0.0));
        let out = serve(&mut chain, 2, &lease);
        book.write_back(requester, 0, lease.session_seed, 1, &out);
        let (_, spec_lease) = book.speculative_lease(0).expect("candidate");
        let spec_out = serve(&mut chain, 2, &spec_lease);
        assert!(book.store_speculation(requester, 0, spec_lease.session_seed, 2, spec_out));

        // the requester rejected: its anchor is NOT the served proposal
        let rejected_anchor = anchor(&mut chain, 0.0);
        assert!(book.try_commit(requester, 0, &rejected_anchor).is_none());
        assert_eq!(book.stats.spec_misses, 1);
        // session untouched: the real serve that follows reuses the same
        // stream position and substream
        assert_eq!(book.session_serves(requester, 0), Some(1));
        let real = book.lease(5, 0, requester, rejected_anchor);
        assert_eq!(real.serves, 1);
        assert_eq!(real.session_seed, spec_lease.session_seed);
    }

    #[test]
    fn stale_speculation_and_dead_generation_write_backs_are_dropped() {
        let mut chain = base_chain(0.3, 0.8);
        let mut book = LedgerBook::default();
        let requester = 4usize;
        let lease = book.lease(9, 0, requester, anchor(&mut chain, 0.1));
        let out = serve(&mut chain, 3, &lease);
        book.write_back(requester, 0, lease.session_seed, 1, &out);
        let (_, spec_lease) = book.speculative_lease(0).expect("candidate");
        let spec_out = serve(&mut chain, 3, &spec_lease);

        // a real serve for the same position commits first (raced)
        let real = book.lease(9, 0, requester, anchor(&mut chain, 0.2));
        assert_eq!(real.serves, 1);
        let real_out = serve(&mut chain, 3, &real);
        book.write_back(requester, 0, real.session_seed, 2, &real_out);
        // the speculative outcome is now stale and must be discarded
        assert!(!book.store_speculation(requester, 0, spec_lease.session_seed, 2, spec_out));
        assert_eq!(book.session_serves(requester, 0), Some(2));

        // a dead-generation write-back must not resurrect old positions
        let old_seed = real.session_seed;
        book.forget_requester(requester);
        let fresh = book.lease(9, 0, requester, anchor(&mut chain, 0.0));
        assert_eq!(fresh.serves, 0);
        assert_ne!(
            fresh.session_seed, old_seed,
            "generations must not share seeds"
        );
        book.write_back(requester, 0, old_seed, 2, &real_out);
        assert_eq!(
            book.session_serves(requester, 0),
            Some(0),
            "old-generation write-back must be a no-op"
        );
    }

    #[test]
    fn export_import_resumes_sessions_at_exact_positions() {
        // run a real serve + a parked speculation, export, rebuild the
        // book, and require (a) the export to round-trip exactly and
        // (b) the resumed book to answer the commit path identically
        let mut chain = base_chain(0.1, 0.9);
        let mut book = LedgerBook::default();
        let requester = 3usize;
        let lease = book.lease(13, 0, requester, anchor(&mut chain, 0.0));
        let out = serve(&mut chain, 2, &lease);
        book.write_back(requester, 0, lease.session_seed, 1, &out);
        let (_, spec_lease) = book.speculative_lease(0).expect("candidate");
        let spec_out = serve(&mut chain, 2, &spec_lease);
        assert!(book.store_speculation(requester, 0, spec_lease.session_seed, 2, spec_out.clone()));
        book.forget_requester(9); // a nontrivial generation entry

        let state = book.export_state();
        assert_eq!(state.sessions.len(), 1);
        assert!(state.sessions[0].spec.is_some());
        let mut resumed = LedgerBook::import_state(state.clone());
        assert_eq!(resumed.export_state(), state, "round-trip must be exact");

        let mut accepted_anchor = out.proposal.clone();
        accepted_anchor.mate = None;
        let a = book.try_commit(requester, 0, &accepted_anchor);
        let b = resumed.try_commit(requester, 0, &accepted_anchor);
        assert_eq!(a.as_ref().map(|s| &s.theta), b.as_ref().map(|s| &s.theta));
        assert_eq!(a.expect("hit").theta, spec_out.proposal.theta);
        assert_eq!(resumed.session_serves(requester, 0), Some(2));
        assert_eq!(resumed.stats.spec_hits, book.stats.spec_hits);
    }

    #[test]
    fn generation_seed_is_identity_at_generation_zero() {
        let s = session_seed(7, 1, 3);
        assert_eq!(generation_seed(s, 0), s);
        assert_ne!(generation_seed(s, 1), s);
        assert_ne!(generation_seed(s, 1), generation_seed(s, 2));
    }
}
