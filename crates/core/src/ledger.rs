//! The per-requester **rewind ledger**: exact multilevel coupling state.
//!
//! ## Why a ledger
//!
//! The coupled kernel (paper Algorithm 2) is only exact if each fine
//! chain's coarse proposals are drawn from the coarse kernel `K_{l-1}^ρ`
//! **started at the coarse state paired with the requester's current fine
//! state** (the *anchor*) — by reversibility the `K^ρ` proposal densities
//! then cancel into the coarse density ratio. The telescoping estimator,
//! on the other hand, needs a coarse stream whose marginal is exactly
//! `π_{l-1}` to pair against: an autonomous subchain **continued from the
//! last sample served to that requester**, never rewound. No single
//! stream can satisfy both at once — rewinding to the anchor gives the
//! served stream the marginal `π_l K^ρ`, while continuing from the last
//! served sample makes the acceptance ratio inexact after a rejection
//! (both effects are `O(contraction^ρ)`; DESIGN.md §5 derives them).
//!
//! The ledger therefore maintains, per requester, a **session** with two
//! coupled tracks:
//!
//! * the **proposal track** rewinds the serving chain to the requester's
//!   anchor and advances `ρ` steps — the Algorithm-2 proposal, keeping
//!   the fine marginal exact for every `ρ`;
//! * the **pairing track** continues from the session's last pairing
//!   state (initially the requester's starting anchor) and advances `ρ`
//!   steps with the same driving randomness — an autonomous `K^ρ`
//!   subchain whose marginal is exactly `π_{l-1}`, the correction mate
//!   the estimator pairs against under [`PairingMode::Ledger`].
//!
//! While the requester keeps accepting, anchor and pairing state are
//! bit-identical and one `ρ`-step run serves both tracks; after the
//! first rejection they diverge and the pairing leg runs separately,
//! driven by the *same* per-serve random substream (common random
//! numbers), which keeps the mate tightly correlated with the proposal
//! without ever feeding fine-chain acceptances back into the pairing
//! track (that feedback is exactly what would bias it).
//!
//! ## Determinism and migration
//!
//! A session is identified by a seed; the randomness of serve `k` is a
//! substream derived from `(session_seed, k)`, **not** from any caller
//! RNG or server-resident state. A serve is therefore a pure function of
//! `(lease, serving problem)`: any server can execute any session's next
//! serve from a [`LedgerLease`], sessions migrate between servers as
//! plain data, and the sequential backend reproduces a runtime
//! controller's serves bit-for-bit (pinned by the parity suite in
//! `tests/ledger_exactness.rs`).

use crate::coupled::{CoarseSample, MlChain};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which coarse stream the telescoping estimator pairs corrections with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PairingMode {
    /// Pair with the served proposal (`MlChain::last_coarse`). This is
    /// the historical pairing: lowest correction variance (the proposal
    /// couples tightly to the fine state) but an `O(contraction^ρ)` bias
    /// in the correction mean — the served-proposal marginal is
    /// `π_l K^ρ`, not `π_{l-1}`.
    #[default]
    Proposal,
    /// Pair with the ledger's pairing mate (`MlChain::last_pairing`):
    /// the autonomous per-requester subchain with marginal exactly
    /// `π_{l-1}`, making the correction mean unbiased for every `ρ`. The
    /// mate decouples from the fine state after rejections, so the
    /// correction variance is higher than [`PairingMode::Proposal`]'s —
    /// the measured trade-off is documented in DESIGN.md §5.
    Ledger,
}

/// Mix function (splitmix64 finalizer) used for all ledger seed
/// derivations.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of a requester's session stream: every backend derives it the
/// same way so ledgers are comparable across backends.
pub fn session_seed(base: u64, coarse_level: usize, requester: u64) -> u64 {
    mix(base
        .wrapping_add(mix(coarse_level as u64 ^ 0x1EDA_6E55))
        .wrapping_add(mix(requester ^ 0x9E37_79B9_7F4A_7C15)))
}

/// Seed of serve `serve_index`'s driving substream. Both tracks of a
/// diverged serve reuse the same substream (common random numbers), so
/// the mate stays coupled to the proposal without acceptance feedback.
pub fn leg_seed(session_seed: u64, serve_index: u64) -> u64 {
    mix(session_seed ^ serve_index.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Everything a (stateless) server needs to execute one serve of a
/// session: the requester's current anchor, the session's pairing state
/// and stream position. Sessions are plain data — the ledger can live at
/// the phonebook and leases travel in messages.
#[derive(Clone, Debug)]
pub struct LedgerLease {
    /// Session stream identity (see [`session_seed`]).
    pub session_seed: u64,
    /// Serves completed so far (the stream position).
    pub serves: u64,
    /// The pairing track's current state — `None` before the first serve
    /// (the track then starts merged at the requester's anchor).
    pub pairing: Option<CoarseSample>,
    /// The coarse state paired with the requester's current fine state.
    pub anchor: CoarseSample,
}

impl LedgerLease {
    /// A fresh session lease for `anchor`.
    pub fn fresh(session_seed: u64, anchor: CoarseSample) -> Self {
        Self {
            session_seed,
            serves: 0,
            pairing: None,
            anchor,
        }
    }

    /// Whether the pairing track currently coincides with the anchor
    /// (one `ρ`-step run then serves both tracks).
    pub fn merged(&self) -> bool {
        match &self.pairing {
            None => true,
            Some(p) => p.theta == self.anchor.theta,
        }
    }
}

/// One executed serve: the Algorithm-2 proposal (with the pairing mate
/// piggybacked in [`CoarseSample::mate`]), the session's advanced pairing
/// state, and whether the tracks were diverged.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The proposal to fulfill the requester's step with; its `mate`
    /// field carries the pairing state served alongside.
    pub proposal: CoarseSample,
    /// The pairing track's new state (becomes the session's `pairing`).
    pub pairing: CoarseSample,
    /// The pairing leg ran separately from the proposal leg.
    pub diverged: bool,
}

/// Execute one ledger serve on `chain` (the serving chain for the
/// lease's coarse level), advancing `rho` kernel steps per track.
///
/// The chain is left at the end of the last leg run — callers whose
/// chain has its own trajectory (parallel serving controllers) snapshot
/// with [`MlChain::current_as_sample`] before and
/// [`MlChain::restore`] after; the sequential source's chain exists only
/// to serve, so it skips that. Only the kernel is re-evaluated: restores
/// use the cached densities/QOIs inside the lease samples, never the
/// forward model.
pub fn serve(chain: &mut MlChain, rho: usize, lease: &LedgerLease) -> ServeOutcome {
    let rho = rho.max(1);
    let merged = lease.merged();
    // proposal track: the exactness rewind to the requester's anchor
    let mut rng = StdRng::seed_from_u64(leg_seed(lease.session_seed, lease.serves));
    chain.restore(&lease.anchor);
    for _ in 0..rho {
        chain.step(&mut rng);
    }
    let mut proposal = chain.current_as_sample();
    // pairing track: continue the autonomous subchain from the last
    // pairing state, re-using the same substream (common random numbers)
    let pairing = if merged {
        proposal.clone()
    } else {
        let mut rng = StdRng::seed_from_u64(leg_seed(lease.session_seed, lease.serves));
        chain.restore(lease.pairing.as_ref().expect("diverged lease has pairing"));
        for _ in 0..rho {
            chain.step(&mut rng);
        }
        chain.current_as_sample()
    };
    proposal.mate = Some(Box::new(pairing.clone()));
    ServeOutcome {
        proposal,
        pairing,
        diverged: !merged,
    }
}

/// Aggregate ledger statistics (kept by the phonebooks, reported with
/// the run).
#[derive(Clone, Copy, Debug, Default)]
pub struct LedgerStats {
    /// Sessions opened (one per requester/coarse-level pair).
    pub sessions: usize,
    /// Serves executed through the ledger.
    pub serves: usize,
    /// Serves whose pairing track had diverged from the anchor (each
    /// costs a second `ρ`-step leg on the server).
    pub diverged: usize,
}

impl LedgerStats {
    /// Fraction of serves that needed the separate pairing leg.
    pub fn diverged_fraction(&self) -> f64 {
        if self.serves == 0 {
            0.0
        } else {
            self.diverged as f64 / self.serves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupled::MlChain;
    use uq_mcmc::problem::GaussianTarget;
    use uq_mcmc::proposal::GaussianRandomWalk;

    fn base_chain(mean: f64, sd: f64) -> MlChain {
        MlChain::base(
            Box::new(GaussianTarget::new(vec![mean], sd)),
            Box::new(GaussianRandomWalk::new(0.6)),
            vec![0.0],
        )
    }

    fn anchor(chain: &mut MlChain, theta: f64) -> CoarseSample {
        chain.anchor_at(&[theta])
    }

    #[test]
    fn serve_is_deterministic_in_the_lease() {
        // a serve is a pure function of the lease: two different chain
        // instances (different trajectories) produce identical serves
        let mut a = base_chain(0.3, 0.8);
        let mut b = base_chain(0.3, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            b.step(&mut rng); // desynchronize b's own trajectory
        }
        let lease = LedgerLease::fresh(session_seed(7, 0, 4), anchor(&mut a, 0.1));
        let oa = serve(&mut a, 3, &lease);
        let ob = serve(&mut b, 3, &lease);
        assert_eq!(oa.proposal.theta, ob.proposal.theta);
        assert_eq!(oa.pairing.theta, ob.pairing.theta);
        assert_eq!(oa.proposal.log_density, ob.proposal.log_density);
    }

    #[test]
    fn merged_session_serves_one_leg() {
        let mut chain = base_chain(0.0, 1.0);
        let lease = LedgerLease::fresh(1, anchor(&mut chain, 0.0));
        assert!(lease.merged());
        let out = serve(&mut chain, 2, &lease);
        assert!(!out.diverged);
        assert_eq!(out.proposal.theta, out.pairing.theta);
        // accepted proposal keeps the session merged
        let accepted = LedgerLease {
            serves: 1,
            pairing: Some(out.pairing.clone()),
            anchor: out.pairing,
            ..lease
        };
        assert!(accepted.merged());
    }

    #[test]
    fn rejected_proposal_diverges_the_session() {
        let mut chain = base_chain(0.0, 1.0);
        let a0 = anchor(&mut chain, 0.0);
        let lease = LedgerLease::fresh(2, a0.clone());
        let out = serve(&mut chain, 2, &lease);
        // requester rejected: anchor stays, pairing advanced
        let rejected = LedgerLease {
            serves: 1,
            pairing: Some(out.pairing),
            anchor: a0,
            ..lease
        };
        assert!(!rejected.merged());
        let out2 = serve(&mut chain, 2, &rejected);
        assert!(out2.diverged);
        // the proposal still starts from the anchor (exactness rewind):
        // with common random numbers from distinct starts the two tracks
        // generally end at distinct states
        assert_ne!(out2.proposal.theta, out2.pairing.theta);
        assert_eq!(
            out2.proposal.mate.as_ref().map(|m| m.theta.clone()),
            Some(out2.pairing.theta.clone())
        );
    }

    #[test]
    fn pairing_track_ignores_the_anchor_when_diverged() {
        // the pairing track is autonomous: with identical session state,
        // different anchors change the proposal but not the mate
        let mut chain = base_chain(0.2, 0.7);
        let p = anchor(&mut chain, -0.4);
        let mk = |theta: f64, chain: &mut MlChain| LedgerLease {
            session_seed: 11,
            serves: 3,
            pairing: Some(p.clone()),
            anchor: anchor(chain, theta),
        };
        let la = mk(1.0, &mut chain);
        let lb = mk(-1.0, &mut chain);
        let oa = serve(&mut chain, 2, &la);
        let ob = serve(&mut chain, 2, &lb);
        assert_eq!(oa.pairing.theta, ob.pairing.theta);
        assert_ne!(oa.proposal.theta, ob.proposal.theta);
    }

    #[test]
    fn seeds_are_distinct_across_sessions_and_serves() {
        let s1 = session_seed(9, 0, 4);
        let s2 = session_seed(9, 0, 5);
        let s3 = session_seed(9, 1, 4);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(leg_seed(s1, 0), leg_seed(s1, 1));
    }

    #[test]
    fn stats_report_diverged_fraction() {
        let mut s = LedgerStats::default();
        assert_eq!(s.diverged_fraction(), 0.0);
        s.serves = 4;
        s.diverged = 1;
        assert!((s.diverged_fraction() - 0.25).abs() < 1e-12);
    }
}
