//! The multilevel telescoping estimator (paper eq. 2) and the sequential
//! MLMCMC driver.
//!
//! `E[Q_L] ≈ E[Q_0] + Σ_{l=1}^{L} E[Q_l - Q_{l-1}]`: the level-0 term is
//! estimated by a conventional chain, each correction term by a coupled
//! chain whose coarse proposals come from the recursive stack below it.
//! The driver records everything the paper tabulates: per-level means,
//! correction variances, integrated autocorrelation times, acceptance
//! rates, evaluation counts and mean evaluation cost.
//!
//! **Estimator pairing.** Each correction sample is
//! `Q_l(θ_l) − Q_{l-1}(ψ)`; which stream supplies `ψ` is selected by
//! [`PairingMode`]. Under the default [`PairingMode::Proposal`], `ψ` is
//! the coarse proposal served for that step ([`MlChain::last_coarse`]) —
//! tightly coupled to the fine state (small correction variance) but
//! with marginal `π_l K_{l-1}^ρ` rather than `π_{l-1}`, an
//! `O(contraction^ρ)` bias that vanishes as the subsampling rate `ρ`
//! grows. Under [`PairingMode::Ledger`], `ψ` is the rewind ledger's
//! pairing mate ([`MlChain::last_pairing`]): the requester's autonomous
//! coarse subchain with marginal exactly `π_{l-1}` — unbiased for every
//! `ρ`, at the price of a looser coupling once the tracks diverge. The
//! coarse *anchor* cannot be used either way because an accepted fine
//! state equals its anchor whenever the levels share a parameter space,
//! degenerating the correction to zero. See DESIGN.md §5 for the full
//! discussion and measured trade-off.

use crate::counting::{CountingProblem, EvalCounter};
use crate::coupled::{build_chain_stack, MlChain};
use crate::factory::LevelFactory;
use crate::ledger::PairingMode;
use crate::store::{Backend, LevelReportCkpt, RunSnapshot, RunStore, SequentialCkpt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uq_mcmc::stats::{integrated_autocorrelation_time, VectorMoments};
use uq_mcmc::{Proposal, SamplingProblem};

/// Configuration of a sequential MLMCMC run.
#[derive(Clone, Debug)]
pub struct MlmcmcConfig {
    /// Samples per level (`N_l`), coarsest first. Length = number of
    /// levels to use (may be shorter than the factory's hierarchy).
    pub samples_per_level: Vec<usize>,
    /// Burn-in steps per level chain.
    pub burn_in: Vec<usize>,
    /// QOI component used for the IACT / variance columns of the report
    /// (the paper's "single representative component").
    pub representative_component: usize,
    /// Retain per-sample traces (parameters, QOIs and coarse/fine
    /// correction pairs) for figure generation. Off by default — the
    /// moments are accumulated streaming either way.
    pub record_samples: bool,
    /// Which coarse stream the correction moments pair against (the
    /// recorded `correction_pairs` always show the proposal coupling —
    /// they feed the Fig. 14-style coupling plots).
    pub pairing: PairingMode,
}

impl MlmcmcConfig {
    pub fn new(samples_per_level: Vec<usize>) -> Self {
        let n = samples_per_level.len();
        Self {
            samples_per_level,
            burn_in: vec![0; n],
            representative_component: 0,
            record_samples: false,
            pairing: PairingMode::default(),
        }
    }

    pub fn with_burn_in(mut self, burn_in: Vec<usize>) -> Self {
        assert_eq!(burn_in.len(), self.samples_per_level.len());
        self.burn_in = burn_in;
        self
    }

    pub fn recording(mut self) -> Self {
        self.record_samples = true;
        self
    }

    /// Pair correction moments with the ledger's unbiased mate stream.
    pub fn with_pairing(mut self, pairing: PairingMode) -> Self {
        self.pairing = pairing;
        self
    }
}

/// Per-level results: the rows of the paper's Tables 3 and 4.
#[derive(Clone, Debug)]
pub struct LevelReport {
    pub level: usize,
    /// Recorded samples `N_l`.
    pub n_samples: usize,
    /// Acceptance rate of the level-`l` chain.
    pub acceptance_rate: f64,
    /// `E[Q_0]` (level 0) or `E[Q_l - Q_{l-1}]` (corrections), per
    /// QOI component.
    pub mean_correction: Vec<f64>,
    /// `V[Q_0]` or `V[Q_l - Q_{l-1}]`, per QOI component.
    pub var_correction: Vec<f64>,
    /// IACT `τ_l` of the representative QOI component of the level-`l`
    /// chain trace.
    pub iact: f64,
    /// Model evaluations on this level accumulated across the whole run
    /// (all telescoping terms).
    pub evaluations: usize,
    /// Mean cost per evaluation in milliseconds (`t_l`).
    pub mean_eval_ms: f64,
    /// Retained parameter samples (empty unless `record_samples`).
    pub theta_samples: Vec<Vec<f64>>,
    /// Retained QOI samples (empty unless `record_samples`).
    pub qoi_samples: Vec<Vec<f64>>,
    /// Retained (coarse QOI, fine QOI) correction pairs — Fig. 14's
    /// arrows (empty for level 0 or unless `record_samples`).
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Results of a full multilevel run.
#[derive(Clone, Debug)]
pub struct MlmcmcReport {
    pub levels: Vec<LevelReport>,
}

impl MlmcmcReport {
    /// The telescoping-sum estimate `E[Q_0] + Σ E[Q_l - Q_{l-1}]`.
    pub fn expectation(&self) -> Vec<f64> {
        let dim = self.levels[0].mean_correction.len();
        let mut total = vec![0.0; dim];
        for lvl in &self.levels {
            for (t, m) in total.iter_mut().zip(&lvl.mean_correction) {
                *t += m;
            }
        }
        total
    }

    /// Partial sums `E[Q_0] + Σ_{k≤l} E[Q_k - Q_{k-1}]` per level —
    /// the last column of the paper's Table 4.
    pub fn partial_sums(&self) -> Vec<Vec<f64>> {
        let dim = self.levels[0].mean_correction.len();
        let mut acc = vec![0.0; dim];
        self.levels
            .iter()
            .map(|lvl| {
                for (a, m) in acc.iter_mut().zip(&lvl.mean_correction) {
                    *a += m;
                }
                acc.clone()
            })
            .collect()
    }

    /// Total model evaluations across all levels.
    pub fn total_evaluations(&self) -> usize {
        self.levels.iter().map(|l| l.evaluations).sum()
    }
}

/// A factory adapter that wraps every produced problem in a
/// [`CountingProblem`] sharing per-level counters.
struct CountingFactory<'a> {
    inner: &'a dyn LevelFactory,
    counters: Vec<EvalCounter>,
}

impl LevelFactory for CountingFactory<'_> {
    fn n_levels(&self) -> usize {
        self.inner.n_levels()
    }

    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(CountingProblem::new(
            self.inner.problem(level),
            self.counters[level].clone(),
        ))
    }

    fn proposal(&self, level: usize) -> Box<dyn Proposal> {
        self.inner.proposal(level)
    }

    fn subsampling_rate(&self, level: usize) -> usize {
        self.inner.subsampling_rate(level)
    }

    fn starting_point(&self, level: usize) -> Vec<f64> {
        self.inner.starting_point(level)
    }
}

/// Run one telescoping term (the level-`l` chain) and report it.
fn run_term(
    chain: &mut MlChain,
    level: usize,
    n_samples: usize,
    burn_in: usize,
    config: &MlmcmcConfig,
    rng: &mut dyn Rng,
) -> (VectorMoments, LevelReport) {
    for _ in 0..burn_in {
        chain.step(rng);
    }
    let qoi_dim = chain.state().qoi.len();
    let mut moments = VectorMoments::new(qoi_dim);
    let mut rep_trace = Vec::with_capacity(n_samples);
    let mut theta_samples = Vec::new();
    let mut qoi_samples = Vec::new();
    let mut correction_pairs = Vec::new();
    let rep = config
        .representative_component
        .min(qoi_dim.saturating_sub(1));
    for _ in 0..n_samples {
        chain.step(rng);
        let fine_qoi = chain.state().qoi.clone();
        let paired = match config.pairing {
            PairingMode::Proposal => chain.last_coarse(),
            PairingMode::Ledger => chain.last_pairing(),
        };
        let correction: Vec<f64> = match paired {
            None => fine_qoi.clone(),
            Some(coarse) => fine_qoi
                .iter()
                .zip(&coarse.qoi)
                .map(|(f, c)| f - c)
                .collect(),
        };
        moments.push(&correction);
        rep_trace.push(fine_qoi[rep]);
        if config.record_samples {
            theta_samples.push(chain.state().theta.clone());
            if let Some(coarse) = chain.last_coarse() {
                correction_pairs.push((coarse.qoi.clone(), fine_qoi.clone()));
            }
            qoi_samples.push(fine_qoi);
        }
    }
    let report = LevelReport {
        level,
        n_samples,
        acceptance_rate: chain.acceptance_rate(),
        mean_correction: moments.mean(),
        var_correction: moments.variance(),
        iact: integrated_autocorrelation_time(&rep_trace),
        evaluations: 0, // filled in by the driver from the counters
        mean_eval_ms: 0.0,
        theta_samples,
        qoi_samples,
        correction_pairs,
    };
    (moments, report)
}

/// Sequential multilevel MCMC (paper Algorithm 2 driven level by level).
///
/// Runs a conventional chain on level 0 and one coupled chain per
/// correction term, each with its own recursive coarse stack, and
/// assembles the telescoping report.
pub fn run_sequential(
    factory: &dyn LevelFactory,
    config: &MlmcmcConfig,
    rng: &mut dyn Rng,
) -> MlmcmcReport {
    let n_levels = config.samples_per_level.len();
    assert!(n_levels >= 1, "run_sequential: need at least one level");
    assert!(
        n_levels <= factory.n_levels(),
        "run_sequential: more levels requested than the factory provides"
    );
    let counting = CountingFactory {
        inner: factory,
        counters: (0..factory.n_levels())
            .map(|_| EvalCounter::new())
            .collect(),
    };
    let mut levels = Vec::with_capacity(n_levels);
    for level in 0..n_levels {
        let mut chain = build_chain_stack(&counting, level);
        let (_, mut report) = run_term(
            &mut chain,
            level,
            config.samples_per_level[level],
            config.burn_in[level],
            config,
            rng,
        );
        levels.push(report.clone());
        report.theta_samples.clear();
    }
    // distribute evaluation counts (shared across terms) to the reports
    for (level, report) in levels.iter_mut().enumerate() {
        report.evaluations = counting.counters[level].evaluations();
        report.mean_eval_ms = counting.counters[level].mean_eval_ms();
    }
    MlmcmcReport { levels }
}

impl LevelReportCkpt {
    fn from_report(report: &LevelReport) -> Self {
        LevelReportCkpt {
            level: report.level,
            n_samples: report.n_samples,
            acceptance_rate: report.acceptance_rate,
            mean_correction: report.mean_correction.clone(),
            var_correction: report.var_correction.clone(),
            iact: report.iact,
            theta_samples: report.theta_samples.clone(),
            qoi_samples: report.qoi_samples.clone(),
            correction_pairs: report.correction_pairs.clone(),
        }
    }

    fn into_report(self) -> LevelReport {
        LevelReport {
            level: self.level,
            n_samples: self.n_samples,
            acceptance_rate: self.acceptance_rate,
            mean_correction: self.mean_correction,
            var_correction: self.var_correction,
            iact: self.iact,
            evaluations: 0, // filled in by the driver from counters + offsets
            mean_eval_ms: 0.0,
            theta_samples: self.theta_samples,
            qoi_samples: self.qoi_samples,
            correction_pairs: self.correction_pairs,
        }
    }
}

/// Post-snapshot hook, called with `(snapshot ordinal, content hash)`.
pub type SnapshotHook<'a> = dyn Fn(usize, &str) + 'a;

/// Where and how often the checkpointable sequential driver snapshots.
pub struct CheckpointSpec<'a> {
    /// Destination run store.
    pub store: &'a RunStore,
    /// Configuration hash stamped into each snapshot header (resume
    /// refuses snapshots taken under a different configuration).
    pub config_hash: u64,
    /// Snapshot every `every` recorded samples (global count across
    /// all telescoping terms; burn-in steps never checkpoint).
    pub every: usize,
    /// Called after each snapshot with `(ordinal, content hash)` — the
    /// crash-injection harness aborts the process from here.
    pub on_snapshot: Option<&'a SnapshotHook<'a>>,
}

/// In-progress accumulators of one telescoping term.
struct TermCursor {
    moments: VectorMoments,
    rep_trace: Vec<f64>,
    theta_samples: Vec<Vec<f64>>,
    qoi_samples: Vec<Vec<f64>>,
    correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
    samples_done: usize,
}

impl TermCursor {
    fn fresh(qoi_dim: usize) -> Self {
        TermCursor {
            moments: VectorMoments::new(qoi_dim),
            rep_trace: Vec::new(),
            theta_samples: Vec::new(),
            qoi_samples: Vec::new(),
            correction_pairs: Vec::new(),
            samples_done: 0,
        }
    }
}

/// Checkpointable sequential MLMCMC: [`run_sequential`] with the same
/// step-for-step RNG call order, plus periodic consistent snapshots to
/// a [`RunStore`] and the ability to resume from one bit-for-bit.
///
/// Unlike [`run_sequential`] this driver owns its RNG (seeded from
/// `seed`, or restored from the snapshot's captured stream position on
/// resume) because checkpointing must capture the generator state.
/// With `checkpoint = None` and `resume = None` it produces exactly the
/// report `run_sequential` produces for an `StdRng` seeded with `seed`.
///
/// Timing columns (`mean_eval_ms`) are wall-clock measurements, not
/// logical state: a resumed run reports timings of the resumed portion
/// only. Evaluation *counts* are restored exactly via per-level offsets
/// recorded in the snapshot.
///
/// # Panics
///
/// Panics if `resume` holds a snapshot from a different backend or
/// base seed (config mismatches are already rejected at decode time
/// via the header hash).
pub fn run_sequential_ckpt(
    factory: &dyn LevelFactory,
    config: &MlmcmcConfig,
    seed: u64,
    checkpoint: Option<&CheckpointSpec<'_>>,
    resume: Option<&RunSnapshot>,
) -> MlmcmcReport {
    let n_levels = config.samples_per_level.len();
    assert!(
        n_levels >= 1,
        "run_sequential_ckpt: need at least one level"
    );
    assert!(
        n_levels <= factory.n_levels(),
        "run_sequential_ckpt: more levels requested than the factory provides"
    );
    let counting = CountingFactory {
        inner: factory,
        counters: (0..factory.n_levels())
            .map(|_| EvalCounter::new())
            .collect(),
    };

    let cursor = resume.map(|snap| {
        assert_eq!(
            snap.backend,
            Backend::Sequential,
            "run_sequential_ckpt: snapshot was taken by the {} backend",
            snap.backend
        );
        assert_eq!(
            snap.seed, seed,
            "run_sequential_ckpt: snapshot seed mismatch"
        );
        snap.sequential
            .as_ref()
            .expect("sequential snapshot missing its cursor section")
    });

    let mut rng = match cursor {
        None => StdRng::seed_from_u64(seed),
        Some(c) => StdRng::from_state(c.rng),
    };
    let mut eval_offsets = vec![0usize; factory.n_levels()];
    let mut levels: Vec<LevelReport> = Vec::with_capacity(n_levels);
    let start_level = match cursor {
        None => 0,
        Some(c) => {
            for (dst, &off) in eval_offsets.iter_mut().zip(&c.eval_offsets) {
                *dst = off;
            }
            levels.extend(
                c.completed
                    .iter()
                    .cloned()
                    .map(LevelReportCkpt::into_report),
            );
            c.level
        }
    };
    let mut total_recorded: usize = levels.iter().map(|l| l.n_samples).sum();
    let mut snapshots_taken = 0usize;

    for level in start_level..n_levels {
        let resuming_term = cursor.filter(|c| c.level == level);
        let pre_build: Vec<usize> = counting.counters.iter().map(|c| c.evaluations()).collect();
        let mut chain = build_chain_stack(&counting, level);
        if resuming_term.is_some() {
            // rebuilding the stack re-evaluates each level's initial
            // state; the original construction is already inside the
            // offsets, so discount the rebuild to keep counts exact
            for (k, counter) in counting.counters.iter().enumerate() {
                let rebuild = counter.evaluations() - pre_build[k];
                debug_assert!(eval_offsets[k] >= rebuild);
                eval_offsets[k] = eval_offsets[k].saturating_sub(rebuild);
            }
        }
        let mut term = match resuming_term {
            None => {
                for _ in 0..config.burn_in[level] {
                    chain.step(&mut rng);
                }
                TermCursor::fresh(chain.state().qoi.len())
            }
            Some(c) => {
                chain.import_state(c.chain.clone());
                TermCursor {
                    moments: VectorMoments::from_parts(&c.moments),
                    rep_trace: c.rep_trace.clone(),
                    theta_samples: c.theta_samples.clone(),
                    qoi_samples: c.qoi_samples.clone(),
                    correction_pairs: c.correction_pairs.clone(),
                    samples_done: c.samples_done,
                }
            }
        };
        let n_samples = config.samples_per_level[level];
        let qoi_dim = chain.state().qoi.len();
        let rep = config
            .representative_component
            .min(qoi_dim.saturating_sub(1));
        while term.samples_done < n_samples {
            chain.step(&mut rng);
            let fine_qoi = chain.state().qoi.clone();
            let paired = match config.pairing {
                PairingMode::Proposal => chain.last_coarse(),
                PairingMode::Ledger => chain.last_pairing(),
            };
            let correction: Vec<f64> = match paired {
                None => fine_qoi.clone(),
                Some(coarse) => fine_qoi
                    .iter()
                    .zip(&coarse.qoi)
                    .map(|(f, c)| f - c)
                    .collect(),
            };
            term.moments.push(&correction);
            term.rep_trace.push(fine_qoi[rep]);
            if config.record_samples {
                term.theta_samples.push(chain.state().theta.clone());
                if let Some(coarse) = chain.last_coarse() {
                    term.correction_pairs
                        .push((coarse.qoi.clone(), fine_qoi.clone()));
                }
                term.qoi_samples.push(fine_qoi);
            }
            term.samples_done += 1;
            total_recorded += 1;
            if let Some(spec) = checkpoint {
                if spec.every > 0 && total_recorded.is_multiple_of(spec.every) {
                    let snap = RunSnapshot {
                        backend: Backend::Sequential,
                        seed,
                        samples_done: total_recorded,
                        chains: Vec::new(),
                        collectors: Vec::new(),
                        ledger: None,
                        sequential: Some(SequentialCkpt {
                            level,
                            samples_done: term.samples_done,
                            chain: chain.export_state(),
                            rng: rng.state(),
                            moments: term.moments.parts(),
                            rep_trace: term.rep_trace.clone(),
                            theta_samples: term.theta_samples.clone(),
                            qoi_samples: term.qoi_samples.clone(),
                            correction_pairs: term.correction_pairs.clone(),
                            completed: levels.iter().map(LevelReportCkpt::from_report).collect(),
                            eval_offsets: counting
                                .counters
                                .iter()
                                .zip(&eval_offsets)
                                .map(|(c, off)| c.evaluations() + off)
                                .collect(),
                        }),
                    };
                    let hash = spec
                        .store
                        .put_snapshot(&snap, spec.config_hash)
                        .expect("run_sequential_ckpt: snapshot write failed");
                    snapshots_taken += 1;
                    if let Some(hook) = spec.on_snapshot {
                        hook(snapshots_taken, &hash);
                    }
                }
            }
        }
        levels.push(LevelReport {
            level,
            n_samples,
            acceptance_rate: chain.acceptance_rate(),
            mean_correction: term.moments.mean(),
            var_correction: term.moments.variance(),
            iact: integrated_autocorrelation_time(&term.rep_trace),
            evaluations: 0,
            mean_eval_ms: 0.0,
            theta_samples: term.theta_samples,
            qoi_samples: term.qoi_samples,
            correction_pairs: term.correction_pairs,
        });
    }
    for (level, report) in levels.iter_mut().enumerate() {
        report.evaluations = counting.counters[level].evaluations() + eval_offsets[level];
        report.mean_eval_ms = counting.counters[level].mean_eval_ms();
    }
    MlmcmcReport { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::test_support::GaussianHierarchy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_three_level(n: usize, seed: u64, record: bool) -> MlmcmcReport {
        let h = GaussianHierarchy::three_level(1);
        let mut config =
            MlmcmcConfig::new(vec![n, n / 4, n / 10]).with_burn_in(vec![500, 200, 100]);
        if record {
            config = config.recording();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        run_sequential(&h, &config, &mut rng)
    }

    #[test]
    fn telescoping_sum_recovers_finest_mean() {
        // levels target N(0.6), N(0.9), N(1.0): the telescoping estimate
        // must approach 1.0, not the coarse 0.6
        let report = run_three_level(40_000, 1, false);
        let est = report.expectation()[0];
        assert!((est - 1.0).abs() < 0.05, "telescoping estimate {est}");
    }

    #[test]
    fn correction_means_match_level_differences() {
        let report = run_three_level(40_000, 2, false);
        // E[Q_0] ≈ 0.6, E[Q_1 - Q_0] ≈ 0.3, E[Q_2 - Q_1] ≈ 0.1
        assert!((report.levels[0].mean_correction[0] - 0.6).abs() < 0.05);
        assert!((report.levels[1].mean_correction[0] - 0.3).abs() < 0.06);
        assert!((report.levels[2].mean_correction[0] - 0.1).abs() < 0.08);
    }

    #[test]
    fn partial_sums_are_cumulative() {
        let report = run_three_level(5_000, 3, false);
        let ps = report.partial_sums();
        assert_eq!(ps.len(), 3);
        let direct: f64 = report.levels.iter().map(|l| l.mean_correction[0]).sum();
        assert!((ps[2][0] - direct).abs() < 1e-12);
        assert!((ps[0][0] - report.levels[0].mean_correction[0]).abs() < 1e-12);
    }

    #[test]
    fn variance_decays_across_levels() {
        // the coupled corrections have (much) smaller variance than Q_0 —
        // the heart of the multilevel gain
        let report = run_three_level(30_000, 4, false);
        let v0 = report.levels[0].var_correction[0];
        let v1 = report.levels[1].var_correction[0];
        let v2 = report.levels[2].var_correction[0];
        assert!(v1 < v0, "V[Y_1] = {v1} should be below V[Q_0] = {v0}");
        assert!(v2 < v0, "V[Y_2] = {v2} should be below V[Q_0] = {v0}");
    }

    #[test]
    fn fine_levels_have_small_iact() {
        let report = run_three_level(20_000, 5, false);
        // coarse RW chain mixes slowly; coupled chains are near-iid
        assert!(report.levels[1].iact < report.levels[0].iact);
        assert!(report.levels[1].iact < 3.0);
    }

    #[test]
    fn evaluation_counts_respect_subsampling() {
        let report = run_three_level(2_000, 6, false);
        // level-0 evals ≫ level-2 evals: each level-1 sample costs ρ = 4
        // coarse steps, and level 0 also runs its own term
        assert!(report.levels[0].evaluations > 4 * report.levels[1].evaluations / 2);
        assert!(report.total_evaluations() > report.levels[2].evaluations);
        assert!(report.levels[2].evaluations >= 2_000 / 10);
    }

    #[test]
    fn recording_retains_samples_and_pairs() {
        let report = run_three_level(500, 7, true);
        assert_eq!(report.levels[0].theta_samples.len(), 500);
        assert!(report.levels[0].correction_pairs.is_empty());
        assert_eq!(report.levels[1].correction_pairs.len(), 125);
        // accepted coarse proposals appear as identical pairs (Fig. 14 dots)
        let identical = report.levels[1]
            .correction_pairs
            .iter()
            .filter(|(c, f)| c == f)
            .count();
        assert!(identical > 0, "some coarse proposals must be accepted");
    }

    #[test]
    fn without_recording_no_samples_retained() {
        let report = run_three_level(300, 8, false);
        assert!(report.levels[0].theta_samples.is_empty());
        assert!(report.levels[1].correction_pairs.is_empty());
    }

    #[test]
    fn single_level_run_is_plain_mcmc() {
        let h = GaussianHierarchy::three_level(1);
        let config = MlmcmcConfig::new(vec![20_000]).with_burn_in(vec![500]);
        let mut rng = StdRng::seed_from_u64(9);
        let report = run_sequential(&h, &config, &mut rng);
        assert_eq!(report.levels.len(), 1);
        assert!((report.expectation()[0] - 0.6).abs() < 0.05);
    }

    /// Bit-level equality of everything except wall-clock timing.
    fn assert_reports_identical(a: &MlmcmcReport, b: &MlmcmcReport) {
        assert_eq!(a.levels.len(), b.levels.len());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.level, y.level);
            assert_eq!(x.n_samples, y.n_samples);
            assert_eq!(x.acceptance_rate.to_bits(), y.acceptance_rate.to_bits());
            assert_eq!(x.mean_correction, y.mean_correction, "level {}", x.level);
            assert_eq!(x.var_correction, y.var_correction, "level {}", x.level);
            assert_eq!(x.iact.to_bits(), y.iact.to_bits(), "level {}", x.level);
            assert_eq!(x.evaluations, y.evaluations, "level {}", x.level);
            assert_eq!(x.theta_samples, y.theta_samples, "level {}", x.level);
            assert_eq!(x.qoi_samples, y.qoi_samples, "level {}", x.level);
            assert_eq!(x.correction_pairs, y.correction_pairs, "level {}", x.level);
        }
    }

    #[test]
    fn ckpt_driver_without_checkpoints_matches_plain_driver() {
        let h = GaussianHierarchy::three_level(1);
        let config = MlmcmcConfig::new(vec![800, 200, 80])
            .with_burn_in(vec![50, 30, 10])
            .recording();
        let mut rng = StdRng::seed_from_u64(2024);
        let plain = run_sequential(&h, &config, &mut rng);
        let ckpt = run_sequential_ckpt(&h, &config, 2024, None, None);
        assert_reports_identical(&plain, &ckpt);
    }

    #[test]
    fn resume_from_every_snapshot_is_bit_identical() {
        let h = GaussianHierarchy::three_level(1);
        let config = MlmcmcConfig::new(vec![300, 120, 50])
            .with_burn_in(vec![40, 20, 10])
            .recording();
        let seed = 77;
        let uninterrupted = run_sequential_ckpt(&h, &config, seed, None, None);

        let dir = std::env::temp_dir().join(format!("uq-seq-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let spec = CheckpointSpec {
            store: &store,
            config_hash: 11,
            every: 37, // lands mid-term on every level and across terms
            on_snapshot: None,
        };
        let with_ckpts = run_sequential_ckpt(&h, &config, seed, Some(&spec), None);
        assert_reports_identical(&uninterrupted, &with_ckpts);

        let records = store.manifest_records().unwrap();
        let hashes: Vec<String> = records
            .iter()
            .filter(|r| r.get("kind") == Some("snapshot"))
            .map(|r| r.get("hash").unwrap().to_string())
            .collect();
        assert!(
            hashes.len() >= 10,
            "expected many snapshots, got {}",
            hashes.len()
        );
        for hash in &hashes {
            let (snap, config_hash) = store.get_snapshot(hash).unwrap();
            assert_eq!(config_hash, 11);
            let resumed = run_sequential_ckpt(&h, &config, seed, None, Some(&snap));
            assert_reports_identical(&uninterrupted, &resumed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
