//! Instrumentation wrapper counting model evaluations and their
//! wall-clock cost — the data behind the `t_l` and evaluation-count
//! columns of the paper's Tables 3 and 4.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uq_mcmc::SamplingProblem;

/// Shared evaluation counters (clone-able handle, thread-safe so the
/// parallel scheduler's workers can share one per level).
#[derive(Clone, Debug, Default)]
pub struct EvalCounter {
    inner: Arc<CounterInner>,
}

#[derive(Debug, Default)]
struct CounterInner {
    evaluations: AtomicUsize,
    nanos: AtomicU64,
}

impl EvalCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one evaluation of `nanos` wall-clock nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.inner.evaluations.fetch_add(1, Ordering::Relaxed);
        self.inner.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total number of evaluations recorded.
    pub fn evaluations(&self) -> usize {
        self.inner.evaluations.load(Ordering::Relaxed)
    }

    /// Mean evaluation time in milliseconds (`t_l`), or 0 if none.
    pub fn mean_eval_ms(&self) -> f64 {
        let n = self.evaluations();
        if n == 0 {
            0.0
        } else {
            self.inner.nanos.load(Ordering::Relaxed) as f64 / n as f64 / 1.0e6
        }
    }

    /// Total evaluation time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.inner.nanos.load(Ordering::Relaxed) as f64 / 1.0e9
    }
}

/// Wraps a [`SamplingProblem`], timing every `log_density` call.
pub struct CountingProblem {
    inner: Box<dyn SamplingProblem>,
    counter: EvalCounter,
}

impl CountingProblem {
    pub fn new(inner: Box<dyn SamplingProblem>, counter: EvalCounter) -> Self {
        Self { inner, counter }
    }

    pub fn counter(&self) -> &EvalCounter {
        &self.counter
    }
}

impl SamplingProblem for CountingProblem {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn log_density(&mut self, theta: &[f64]) -> f64 {
        let start = Instant::now();
        let v = self.inner.log_density(theta);
        self.counter.record(start.elapsed().as_nanos() as u64);
        v
    }

    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        self.inner.qoi(theta)
    }

    fn qoi_dim(&self) -> usize {
        self.inner.qoi_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uq_mcmc::problem::GaussianTarget;

    #[test]
    fn counter_records_calls() {
        let counter = EvalCounter::new();
        let mut p = CountingProblem::new(Box::new(GaussianTarget::standard(2)), counter.clone());
        assert_eq!(counter.evaluations(), 0);
        p.log_density(&[0.0, 0.0]);
        p.log_density(&[1.0, 1.0]);
        assert_eq!(counter.evaluations(), 2);
        assert!(counter.total_secs() >= 0.0);
    }

    #[test]
    fn qoi_calls_are_not_counted() {
        let counter = EvalCounter::new();
        let mut p = CountingProblem::new(Box::new(GaussianTarget::standard(2)), counter.clone());
        p.qoi(&[0.5, 0.5]);
        assert_eq!(counter.evaluations(), 0);
    }

    #[test]
    fn shared_counter_aggregates_across_problems() {
        let counter = EvalCounter::new();
        let mut a = CountingProblem::new(Box::new(GaussianTarget::standard(1)), counter.clone());
        let mut b = CountingProblem::new(Box::new(GaussianTarget::standard(1)), counter.clone());
        a.log_density(&[0.0]);
        b.log_density(&[0.0]);
        assert_eq!(counter.evaluations(), 2);
    }

    #[test]
    fn counting_preserves_density_values() {
        let counter = EvalCounter::new();
        let mut plain = GaussianTarget::standard(3);
        let mut wrapped =
            CountingProblem::new(Box::new(GaussianTarget::standard(3)), counter.clone());
        let theta = [0.1, -0.2, 0.3];
        assert_eq!(plain.log_density(&theta), wrapped.log_density(&theta));
        assert_eq!(plain.qoi(&theta), wrapped.qoi(&theta));
        assert_eq!(wrapped.dim(), 3);
        assert_eq!(wrapped.qoi_dim(), 3);
    }
}
