//! Shared wire-format primitives: the hand-rolled little-endian codec
//! used by both the run store's snapshot format ([`crate::store`]) and
//! the multi-process net transport's frame format (`uq_parallel::net`).
//!
//! Everything here was hoisted out of `store.rs` once a second consumer
//! appeared; the public names are re-exported from [`crate::store`] so
//! existing paths keep working.
//!
//! Design rules, shared by every consumer:
//!
//! * little-endian integers, `f64` via `to_bits` (NaN payloads survive
//!   a round-trip bit-for-bit — content addressing and bit-parity
//!   conformance both rely on it);
//! * every decode is bounds-checked, and every collection length is
//!   validated against the remaining bytes **before** allocation, so a
//!   corrupt length fails cleanly instead of attempting an absurd
//!   allocation;
//! * encoding is deterministic: equal values produce equal bytes.

use std::fmt;

/// Errors raised by the wire codec, the snapshot format and the run
/// store. (Named for its original home in `store`; the net transport
/// reuses it for frame decoding, where "snapshot" reads as "frame".)
#[derive(Debug)]
pub enum StoreError {
    /// Fewer bytes than the format requires (torn/truncated input).
    Truncated {
        needed: usize,
        available: usize,
    },
    /// The input does not start with the expected magic.
    BadMagic,
    /// The format version is not the one this build reads.
    BadVersion {
        found: u32,
    },
    /// The trailing FNV-1a check does not match (bit rot / torn write).
    ChecksumMismatch {
        expected: u64,
        found: u64,
    },
    /// The snapshot was taken under a different configuration.
    ConfigMismatch {
        expected: u64,
        found: u64,
    },
    /// A structured field decoded to an impossible value.
    Corrupt(&'static str),
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { needed, available } => write!(
                f,
                "truncated input: needed {needed} bytes, only {available} available"
            ),
            StoreError::BadMagic => write!(f, "bad magic (not a snapshot / net frame)"),
            StoreError::BadVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch (expected {expected:016x}, found {found:016x})"
            ),
            StoreError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different run configuration \
                 (expected config hash {expected:016x}, snapshot has {found:016x})"
            ),
            StoreError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            StoreError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete decode")
            }
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// FNV-1a 64-bit hash — content address, snapshot integrity check and
/// net-frame checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Byte-buffer encoder (little-endian throughout, `f64` via `to_bits`).
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes (frame magics and the like; structured values
    /// should go through [`Codec::encode`]).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Cursor decoder over a byte slice; every read is bounds-checked and
/// every collection length is validated against the remaining bytes
/// before allocation, so corrupt lengths fail cleanly instead of
/// attempting absurd allocations.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes (frame magics and the like; structured values
    /// should go through [`Codec::decode`]).
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A value with a hand-rolled binary encoding. Encoding is
/// deterministic: equal values produce equal bytes (content addressing
/// relies on it), including NaN payload bits for floats.
pub trait Codec: Sized {
    fn encode(&self, enc: &mut Enc);
    fn decode(dec: &mut Dec) -> Result<Self, StoreError>;
}

impl Codec for u8 {
    fn encode(&self, enc: &mut Enc) {
        enc.bytes(&[*self]);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(dec.take(1)?[0])
    }
}

impl Codec for u32 {
    fn encode(&self, enc: &mut Enc) {
        enc.bytes(&self.to_le_bytes());
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(u32::from_le_bytes(dec.take(4)?.try_into().unwrap()))
    }
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Enc) {
        enc.bytes(&self.to_le_bytes());
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(u64::from_le_bytes(dec.take(8)?.try_into().unwrap()))
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Enc) {
        (*self as u64).encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        let v = u64::decode(dec)?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt("usize overflow"))
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Enc) {
        self.to_bits().encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(f64::from_bits(u64::decode(dec)?))
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Enc) {
        enc.bytes(&[u8::from(*self)]);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        match dec.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StoreError::Corrupt("bool tag")),
        }
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Enc) {
        self.len().encode(enc);
        enc.bytes(self.as_bytes());
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        let len = usize::decode(dec)?;
        let bytes = dec.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("utf-8 string"))
    }
}

impl Codec for [u64; 4] {
    fn encode(&self, enc: &mut Enc) {
        for w in self {
            w.encode(enc);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok([
            u64::decode(dec)?,
            u64::decode(dec)?,
            u64::decode(dec)?,
            u64::decode(dec)?,
        ])
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Enc) {
        self.len().encode(enc);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        let len = usize::decode(dec)?;
        // every element occupies at least one byte, so a corrupt length
        // can never demand more elements than bytes remain
        if len > dec.remaining() {
            return Err(StoreError::Truncated {
                needed: len,
                available: dec.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Enc) {
        match self {
            None => enc.bytes(&[0]),
            Some(v) => {
                enc.bytes(&[1]);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        match dec.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(StoreError::Corrupt("option tag")),
        }
    }
}

impl<T: Codec> Codec for Box<T> {
    fn encode(&self, enc: &mut Enc) {
        (**self).encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Box::new(T::decode(dec)?))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}
