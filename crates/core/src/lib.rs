//! # uq-mlmcmc
//!
//! The paper's primary contribution in library form: multilevel Markov
//! chain Monte Carlo (Dodwell et al. 2015/2019, paper Algorithm 2) with
//! the model-agnostic factory interface of MUQ's `MIComponentFactory`.
//!
//! * [`factory::LevelFactory`] — supplies per-level sampling problems,
//!   proposals, subsampling rates and starting points (paper Fig. 7);
//! * [`coupled`] — the two-level coupled transition kernel: coarse-chain
//!   states become fine-chain proposals, with the corrected acceptance
//!   probability of Algorithm 2. The coarse-proposal *source* is abstract
//!   so the sequential recursion (this crate) and the parallel
//!   phonebook-mediated version (`uq-parallel`) share the kernel;
//! * [`estimator`] — the telescoping-sum estimator (paper eq. 2) with
//!   per-level moments, autocorrelation and cost bookkeeping, and a
//!   sequential driver reproducing Tables 3 and 4;
//! * [`ledger`] — the per-requester rewind ledger: sessions whose
//!   proposal track rewinds to the requester's anchor (fine-marginal
//!   exactness) while an autonomous pairing track continues from the
//!   last served sample (unbiased `π_{l-1}` correction mate), executed
//!   identically by the sequential source and the parallel phonebooks;
//! * [`allocate`] — optimal `N_l ∝ √(V_l/C_l)` sample allocation;
//! * [`counting`] — instrumentation wrapper counting model evaluations
//!   and wall-clock cost per level (the `t_l` columns);
//! * [`wire`] — the shared hand-rolled binary codec (LE ints, `f64`
//!   via `to_bits`, length-validated decodes) used by both the run
//!   store's snapshot format and `uq_parallel::net`'s frame format;
//! * [`store`] — the content-addressed run store: versioned,
//!   integrity-checked snapshots of a run's full logical state
//!   (chains, collectors, ledger sessions, RNG streams) enabling
//!   bit-identical checkpoint/resume, plus a manifest indexing bench
//!   results as queryable run records.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod allocate;
pub mod counting;
pub mod coupled;
pub mod estimator;
pub mod factory;
pub mod ledger;
pub mod store;
pub mod wire;

pub use coupled::{CoarseAcquire, CoarseProposalSource, CoarseSample, MlChain, StepOutcome};
pub use estimator::{run_sequential, LevelReport, MlmcmcConfig, MlmcmcReport};
pub use factory::LevelFactory;
pub use ledger::{LedgerBook, LedgerLease, LedgerStats, PairingMode};
pub use store::{RunSnapshot, RunStore, StoreError};
