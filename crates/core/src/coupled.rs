//! The two-level coupled transition kernel of multilevel MCMC
//! (paper Algorithm 2).
//!
//! A chain on level `l ≥ 1` draws its proposals from a *coarse-proposal
//! source* — the subsampled level-`l-1` chain — and accepts with
//!
//! ```text
//! α = min(1, [ν_l(θ') q_l(θ_F|θ'_F) ν_{l-1}(θ_C)] /
//!            [ν_l(θ)  q_l(θ'_F|θ_F) ν_{l-1}(θ'_C)])
//! ```
//!
//! where the `q_l` factors appear only when the parameter dimension grows
//! across levels (fine tail components).
//!
//! **Exactness and the rewind rule.** The simple acceptance ratio above
//! is the Hastings correction for the proposal kernel `K_{l-1}^ρ` (ρ
//! coarse steps) *started from the coarse state associated with the
//! current fine state*: by reversibility of the coarse kernel,
//! `K^ρ(θ_C → θ'_C) ν_{l-1}(θ_C) = K^ρ(θ'_C → θ_C) ν_{l-1}(θ'_C)`, so the
//! `K^ρ` densities cancel into the coarse density ratio. Every serve
//! therefore **rewinds** the coarse chain to the requester's anchor
//! before generating the proposal — letting the coarse chain run on from
//! a rejected proposal (the naive reading of Algorithm 2) leaves a bias
//! towards the coarse posterior, which our estimator tests detected.
//! Anchors are recursive: a coupled coarse chain carries its own anchor,
//! shipped inside [`CoarseSample::sub_anchor`]. Serving — sequential and
//! parallel alike — goes through the per-requester rewind ledger
//! ([`crate::ledger`]), which alongside each proposal also maintains the
//! requester's autonomous *pairing track* (continued from the last
//! served sample, marginal exactly `π_{l-1}`), piggybacked on
//! [`CoarseSample::mate`] for the unbiased estimator pairing.

use crate::factory::LevelFactory;
use rand::Rng;
use uq_mcmc::kernel::{mh_step, SamplingState};
use uq_mcmc::{Proposal, SamplingProblem};

/// A state of the next-coarser chain, shipped with its cached log-density
/// and QOI so the fine chain never re-evaluates the coarse model, plus
/// the serving chain's own (recursive) anchor for exact rewinding.
#[derive(Clone, Debug, PartialEq)]
pub struct CoarseSample {
    pub theta: Vec<f64>,
    pub log_density: f64,
    pub qoi: Vec<f64>,
    /// The serving chain's own coarse anchor at this state (`None` for
    /// level-0 chains and for remote/parallel sources).
    pub sub_anchor: Option<Box<CoarseSample>>,
    /// The ledger's pairing mate served alongside this proposal (`None`
    /// for sources without a ledger session): the state of the
    /// requester's autonomous coarse subchain, whose marginal is exactly
    /// `π_{l-1}` — see [`crate::ledger`]. Consumed by
    /// [`MlChain::resume_step`] into [`MlChain::last_pairing`].
    pub mate: Option<Box<CoarseSample>>,
}

impl CoarseSample {
    /// A sample carrying only cached values (no sub-anchor, no mate).
    pub fn plain(theta: Vec<f64>, log_density: f64, qoi: Vec<f64>) -> Self {
        Self {
            theta,
            log_density,
            qoi,
            sub_anchor: None,
            mate: None,
        }
    }
}

/// Outcome of a (possibly non-blocking) coarse-proposal acquisition.
#[derive(Clone, Debug)]
pub enum CoarseAcquire {
    /// The proposal is available now (all in-process sources).
    Ready(CoarseSample),
    /// The source has initiated an external request and cannot produce
    /// the sample without suspending; the caller must obtain it out of
    /// band (e.g. from a phonebook message) and finish the step via
    /// [`MlChain::resume_step`].
    Pending,
}

/// The full logical state of an [`MlChain`] as plain data, for
/// checkpointing (see `uq_core::store`): sampling state, counters,
/// coupled bookkeeping, and — for sequential serving stacks — the
/// recursive [`SourceState`] of the owned coarse source. Everything a
/// freshly built chain needs to continue the run bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainState {
    pub steps: usize,
    pub accepted: usize,
    pub theta: Vec<f64>,
    pub log_density: f64,
    pub qoi: Vec<f64>,
    /// Coupled chains only: the coarse anchor of the current state.
    pub anchor: Option<CoarseSample>,
    /// Coupled chains only: the most recent step's coarse proposal.
    pub last_coarse: Option<CoarseSample>,
    /// Coupled chains only: the most recent step's pairing mate.
    pub last_pairing: Option<CoarseSample>,
    /// State of the coarse-proposal source, when it carries any
    /// (sequential [`ChainCoarseSource`] stacks; `None` for level-0
    /// chains and for remote/pending sources, whose state lives in the
    /// phonebook ledger).
    pub source: Option<Box<SourceState>>,
}

/// Checkpoint state of a [`ChainCoarseSource`]: its single-requester
/// ledger-session cursor plus the owned coarse chain, recursively.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceState {
    /// `None` only if no serve has happened yet and the seed was never
    /// pinned (it would be drawn from the caller's RNG on first use).
    pub session_seed: Option<u64>,
    pub serves: u64,
    pub diverged_serves: u64,
    pub pairing: Option<CoarseSample>,
    pub chain: ChainState,
}

/// Where a coupled chain gets its coarse proposals from.
///
/// Sequential MLMCMC uses [`ChainCoarseSource`] (an in-process recursive
/// chain with the rewind rule); the parallel thread scheduler substitutes
/// a proxy that requests samples from remote controllers via the
/// phonebook, and the cooperative runtime in `uq-parallel` uses a purely
/// pending source so a controller can suspend mid-step.
pub trait CoarseProposalSource: Send {
    /// Begin acquiring the next coarse proposal. `anchor` is the coarse
    /// state associated with the requesting chain's current state; exact
    /// sequential sources rewind to it before advancing the subsampling
    /// stride, remote sources may ignore it. Blocking sources return
    /// [`CoarseAcquire::Ready`] directly; asynchronous sources return
    /// [`CoarseAcquire::Pending`] and the chain suspends mid-step.
    fn request_coarse(&mut self, rng: &mut dyn Rng, anchor: &CoarseSample) -> CoarseAcquire;

    /// Blocking convenience wrapper around
    /// [`request_coarse`](Self::request_coarse) for sources that always
    /// produce the sample in-line.
    ///
    /// # Panics
    /// Panics if the source is asynchronous (returns
    /// [`CoarseAcquire::Pending`]).
    fn next_coarse(&mut self, rng: &mut dyn Rng, anchor: &CoarseSample) -> CoarseSample {
        match self.request_coarse(rng, anchor) {
            CoarseAcquire::Ready(s) => s,
            CoarseAcquire::Pending => {
                panic!("next_coarse: asynchronous source requires MlChain::poll_step/resume_step")
            }
        }
    }

    /// Evaluate density, QOI and (recursively) the sub-anchor at an
    /// arbitrary point — needed once for the fine chain's starting state.
    fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample;

    /// Export this source's checkpoint state, if it carries any.
    /// Stateless sources (remote proxies, pending sources — whose
    /// logical state lives in the phonebook ledger) return `None`,
    /// which is the default.
    fn export_state(&self) -> Option<SourceState> {
        None
    }

    /// Restore checkpoint state captured by
    /// [`export_state`](Self::export_state). The default ignores it
    /// (stateless sources).
    fn import_state(&mut self, _state: SourceState) {}
}

/// What [`MlChain::poll_step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step completed; the flag is whether the proposal was accepted.
    Done(bool),
    /// The coarse-proposal source returned [`CoarseAcquire::Pending`]:
    /// the chain is suspended mid-step and must be continued with
    /// [`MlChain::resume_step`] once the coarse sample arrives.
    NeedCoarse,
}

// one `Kind` exists per chain (not per sample), so the size gap between
// the base and coupled variants costs nothing worth boxing for
#[allow(clippy::large_enum_variant)]
enum Kind {
    /// Level 0: a standard Metropolis–Hastings chain.
    Base { proposal: Box<dyn Proposal> },
    /// Level `l ≥ 1`: coarse proposals + optional fine-tail proposal.
    Coupled {
        source: Box<dyn CoarseProposalSource>,
        /// Proposal for the tail components `θ_F`; only consulted when
        /// `coarse_dim < dim`.
        tail_proposal: Box<dyn Proposal>,
        coarse_dim: usize,
        /// Coarse state associated with the current fine state:
        /// `ν_{l-1}` value, QOI, and recursive sub-anchor.
        anchor: CoarseSample,
        /// The coarse sample used in the most recent step (accepted or
        /// not) — the `Q_{l-1}` half of the correction pair.
        last_coarse: Option<CoarseSample>,
        /// The ledger pairing mate of the most recent step (falls back
        /// to the proposal itself for sources without a ledger).
        last_pairing: Option<CoarseSample>,
    },
}

/// A single chain in the multilevel hierarchy (level 0 or coupled).
pub struct MlChain {
    level: usize,
    problem: Box<dyn SamplingProblem>,
    kind: Kind,
    state: SamplingState,
    steps: usize,
    accepted: usize,
}

impl MlChain {
    /// Level-0 chain with a conventional proposal.
    pub fn base(
        mut problem: Box<dyn SamplingProblem>,
        proposal: Box<dyn Proposal>,
        theta0: Vec<f64>,
    ) -> Self {
        let state = SamplingState::initial(problem.as_mut(), theta0);
        Self {
            level: 0,
            problem,
            kind: Kind::Base { proposal },
            state,
            steps: 0,
            accepted: 0,
        }
    }

    /// Coupled chain on `level ≥ 1` drawing coarse proposals from
    /// `source`. `tail_proposal` is used for the dimensions beyond
    /// `coarse_dim` (pass any proposal when dimensions are constant — it
    /// will not be consulted).
    pub fn coupled(
        level: usize,
        mut problem: Box<dyn SamplingProblem>,
        mut source: Box<dyn CoarseProposalSource>,
        tail_proposal: Box<dyn Proposal>,
        coarse_dim: usize,
        theta0: Vec<f64>,
    ) -> Self {
        assert!(level >= 1, "MlChain::coupled: level must be >= 1");
        assert!(
            coarse_dim <= theta0.len(),
            "MlChain::coupled: coarse dimension exceeds fine dimension"
        );
        let anchor = source.anchor_at(&theta0[..coarse_dim]);
        let state = SamplingState::initial(problem.as_mut(), theta0);
        Self {
            level,
            problem,
            kind: Kind::Coupled {
                source,
                tail_proposal,
                coarse_dim,
                anchor,
                last_coarse: None,
                last_pairing: None,
            },
            state,
            steps: 0,
            accepted: 0,
        }
    }

    pub fn level(&self) -> usize {
        self.level
    }

    pub fn state(&self) -> &SamplingState {
        &self.state
    }

    pub fn steps(&self) -> usize {
        self.steps
    }

    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// The coarse sample coupled to the **current** fine state — the
    /// anchor, i.e. the coarse proposal from which the current state was
    /// accepted (`None` for level-0 chains). Note this is *not* the
    /// pairing the telescoping estimator uses: when coarse and fine share
    /// a parameter space, an accepted fine state equals its anchor and
    /// the anchored correction degenerates to zero. The estimator pairs
    /// with [`MlChain::last_coarse`] instead (see `uq-mlmcmc`'s
    /// [`estimator`](crate::estimator) docs for the finite-`ρ` bias this
    /// trades off).
    pub fn anchor(&self) -> Option<&CoarseSample> {
        match &self.kind {
            Kind::Base { .. } => None,
            Kind::Coupled { anchor, .. } => Some(anchor),
        }
    }

    /// The coarse sample used by the most recent coupled step (`None` for
    /// level-0 chains or before the first step).
    pub fn last_coarse(&self) -> Option<&CoarseSample> {
        match &self.kind {
            Kind::Base { .. } => None,
            Kind::Coupled { last_coarse, .. } => last_coarse.as_ref(),
        }
    }

    /// The ledger pairing mate of the most recent coupled step: the
    /// requester's autonomous coarse-subchain state served alongside the
    /// proposal (marginal exactly `π_{l-1}`; see [`crate::ledger`]).
    /// Equals [`last_coarse`](Self::last_coarse) for sources without a
    /// ledger session; `None` for level-0 chains or before the first
    /// step. This is the `Q_{l-1}` half of the correction pair under
    /// [`PairingMode::Ledger`](crate::ledger::PairingMode::Ledger).
    pub fn last_pairing(&self) -> Option<&CoarseSample> {
        match &self.kind {
            Kind::Base { .. } => None,
            Kind::Coupled { last_pairing, .. } => last_pairing.as_ref(),
        }
    }

    /// Evaluate this chain's target log-density at an arbitrary point.
    pub fn eval_log_density(&mut self, theta: &[f64]) -> f64 {
        self.problem.log_density(theta)
    }

    /// Package density/QOI/sub-anchor information for `theta` — used to
    /// initialize fine chains anchored at this chain's level.
    pub fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample {
        let log_density = self.problem.log_density(theta);
        let qoi = self.problem.qoi(theta);
        let sub_anchor = match &mut self.kind {
            Kind::Base { .. } => None,
            Kind::Coupled {
                source, coarse_dim, ..
            } => Some(Box::new(source.anchor_at(&theta[..*coarse_dim]))),
        };
        CoarseSample {
            theta: theta.to_vec(),
            log_density,
            qoi,
            sub_anchor,
            mate: None,
        }
    }

    /// Current state packaged as a [`CoarseSample`] (including this
    /// chain's own anchor for recursive rewinding).
    pub fn current_as_sample(&self) -> CoarseSample {
        let sub_anchor = match &self.kind {
            Kind::Base { .. } => None,
            Kind::Coupled { anchor, .. } => Some(Box::new(anchor.clone())),
        };
        CoarseSample {
            theta: self.state.theta.clone(),
            log_density: self.state.log_density,
            qoi: self.state.qoi.clone(),
            sub_anchor,
            mate: None,
        }
    }

    /// Rewind this chain to a previously served sample (the exactness
    /// rule — see the module docs). Everything needed is cached inside
    /// the sample; the one exception is a coupled chain restored from a
    /// sample *without* a sub-anchor (a parallel requester's initial
    /// anchor, which no serving stack ever saw): the sub-anchor is then
    /// derived through the source's `anchor_at`, costing one coarse-level
    /// density evaluation.
    pub fn restore(&mut self, sample: &CoarseSample) {
        self.state = SamplingState {
            theta: sample.theta.clone(),
            log_density: sample.log_density,
            qoi: sample.qoi.clone(),
        };
        if let Kind::Coupled {
            anchor,
            source,
            coarse_dim,
            ..
        } = &mut self.kind
        {
            *anchor = match &sample.sub_anchor {
                Some(sub) => (**sub).clone(),
                None => source.anchor_at(&sample.theta[..*coarse_dim]),
            };
        }
    }

    /// Export the chain's full logical state as plain data (recursively
    /// through sequential serving stacks) for checkpointing. Feeding the
    /// result to [`import_state`](Self::import_state) on a freshly built
    /// identical chain continues the run bit-for-bit.
    pub fn export_state(&self) -> ChainState {
        let (anchor, last_coarse, last_pairing, source) = match &self.kind {
            Kind::Base { .. } => (None, None, None, None),
            Kind::Coupled {
                source,
                anchor,
                last_coarse,
                last_pairing,
                ..
            } => (
                Some(anchor.clone()),
                last_coarse.clone(),
                last_pairing.clone(),
                source.export_state().map(Box::new),
            ),
        };
        ChainState {
            steps: self.steps,
            accepted: self.accepted,
            theta: self.state.theta.clone(),
            log_density: self.state.log_density,
            qoi: self.state.qoi.clone(),
            anchor,
            last_coarse,
            last_pairing,
            source,
        }
    }

    /// Restore state captured by [`export_state`](Self::export_state)
    /// onto a chain built with the same factory/topology. No model
    /// evaluations happen — everything is cached in the state.
    pub fn import_state(&mut self, cs: ChainState) {
        self.steps = cs.steps;
        self.accepted = cs.accepted;
        self.state = SamplingState {
            theta: cs.theta,
            log_density: cs.log_density,
            qoi: cs.qoi,
        };
        if let Kind::Coupled {
            source,
            anchor,
            last_coarse,
            last_pairing,
            ..
        } = &mut self.kind
        {
            if let Some(a) = cs.anchor {
                *anchor = a;
            }
            *last_coarse = cs.last_coarse;
            *last_pairing = cs.last_pairing;
            if let Some(ss) = cs.source {
                source.import_state(*ss);
            }
        }
    }

    /// Advance one step; returns whether the proposal was accepted.
    ///
    /// # Panics
    /// Panics if the coarse-proposal source is asynchronous (returns
    /// [`CoarseAcquire::Pending`]); drive such chains with
    /// [`poll_step`](Self::poll_step)/[`resume_step`](Self::resume_step).
    pub fn step(&mut self, rng: &mut dyn Rng) -> bool {
        match self.poll_step(rng) {
            StepOutcome::Done(accepted) => accepted,
            StepOutcome::NeedCoarse => {
                panic!("MlChain::step: asynchronous coarse source; use poll_step/resume_step")
            }
        }
    }

    /// Begin one step. Level-0 chains and coupled chains with a blocking
    /// source complete in-line ([`StepOutcome::Done`]); a coupled chain
    /// whose source returns [`CoarseAcquire::Pending`] suspends
    /// ([`StepOutcome::NeedCoarse`]) and must be continued with
    /// [`resume_step`](Self::resume_step) — this is what lets hundreds of
    /// virtual controllers share a worker thread in the cooperative
    /// runtime instead of blocking it inside `recv`.
    pub fn poll_step(&mut self, rng: &mut dyn Rng) -> StepOutcome {
        let acquired = match &mut self.kind {
            Kind::Base { proposal } => {
                let (state, accepted) =
                    mh_step(self.problem.as_mut(), proposal.as_mut(), &self.state, rng);
                self.state = state;
                self.steps += 1;
                self.accepted += usize::from(accepted);
                return StepOutcome::Done(accepted);
            }
            Kind::Coupled { source, anchor, .. } => source.request_coarse(rng, anchor),
        };
        match acquired {
            CoarseAcquire::Ready(coarse) => StepOutcome::Done(self.resume_step(rng, coarse)),
            CoarseAcquire::Pending => StepOutcome::NeedCoarse,
        }
    }

    /// Finish a coupled step with an externally obtained coarse proposal
    /// (the fulfillment half of the request/fulfill protocol); returns
    /// whether the proposal was accepted. A zero-length `coarse.theta`
    /// acts as a teardown poison: the step counts but is rejected without
    /// touching chain state or the coupled correction bookkeeping.
    ///
    /// # Panics
    /// Panics on a level-0 chain.
    pub fn resume_step(&mut self, rng: &mut dyn Rng, mut coarse: CoarseSample) -> bool {
        self.steps += 1;
        let mate = coarse.mate.take().map(|m| *m);
        let accepted = match &mut self.kind {
            Kind::Base { .. } => panic!("MlChain::resume_step: level-0 chains never suspend"),
            Kind::Coupled {
                tail_proposal,
                coarse_dim,
                anchor,
                last_coarse,
                last_pairing,
                ..
            } => {
                if coarse.theta.len() != *coarse_dim {
                    // teardown poison from a parallel source: reject
                    // without touching the chain state or the coupled
                    // correction bookkeeping
                    return false;
                }
                let dim = self.state.theta.len();
                let tail_dim = dim - *coarse_dim;
                // assemble the proposal: coarse component + fine tail
                let mut cand = coarse.theta.clone();
                let mut log_q_ratio = 0.0;
                if tail_dim > 0 {
                    let current_tail = &self.state.theta[*coarse_dim..];
                    let cand_tail = tail_proposal.propose(current_tail, rng);
                    if !tail_proposal.is_symmetric() {
                        log_q_ratio = tail_proposal.log_density(&cand_tail, current_tail)
                            - tail_proposal.log_density(current_tail, &cand_tail);
                    }
                    cand.extend_from_slice(&cand_tail);
                }
                let accepted = if coarse.log_density == f64::NEG_INFINITY {
                    false
                } else {
                    let cand_log_density = self.problem.log_density(&cand);
                    if cand_log_density == f64::NEG_INFINITY {
                        false
                    } else {
                        // Algorithm 2 acceptance: fine ratio × tail-
                        // proposal correction × *inverse* coarse ratio
                        let log_alpha = (cand_log_density - self.state.log_density)
                            + log_q_ratio
                            + (anchor.log_density - coarse.log_density);
                        let accept = log_alpha >= 0.0 || {
                            use rand::RngExt;
                            rng.random::<f64>().ln() < log_alpha
                        };
                        if accept {
                            let qoi = self.problem.qoi(&cand);
                            self.state = SamplingState {
                                theta: cand,
                                log_density: cand_log_density,
                                qoi,
                            };
                            *anchor = coarse.clone();
                        }
                        accept
                    }
                };
                *last_pairing = Some(mate.unwrap_or_else(|| coarse.clone()));
                *last_coarse = Some(coarse);
                accepted
            }
        };
        self.accepted += usize::from(accepted);
        accepted
    }
}

/// Sequential coarse-proposal source: owns the next-coarser [`MlChain`]
/// (itself possibly coupled, recursively down to level 0) and serves it
/// through a single-requester ledger session (see [`crate::ledger`]):
/// the proposal track rewinds to the requester's anchor (the exactness
/// rule) and the pairing track continues from the last served sample
/// (the unbiased correction mate), both advanced `rho` steps per serve
/// by the session's own derived random substreams.
pub struct ChainCoarseSource {
    chain: MlChain,
    rho: usize,
    /// Lazily derived on the first serve from the caller's RNG (one
    /// `next_u64` draw), so different user seeds give independent serve
    /// substreams; [`with_session_seed`](Self::with_session_seed) pins
    /// it instead (then nothing is drawn from the caller).
    session_seed: Option<u64>,
    serves: u64,
    pairing: Option<CoarseSample>,
    diverged_serves: u64,
}

impl ChainCoarseSource {
    /// `rho` is clamped to at least 1 (every fine proposal advances the
    /// coarse chain at least one step). The ledger session seed is drawn
    /// from the caller's RNG at the first serve; use
    /// [`with_session_seed`](Self::with_session_seed) to pin it (e.g. to
    /// reproduce a parallel backend's session bit-for-bit).
    pub fn new(chain: MlChain, rho: usize) -> Self {
        Self {
            chain,
            rho: rho.max(1),
            session_seed: None,
            serves: 0,
            pairing: None,
            diverged_serves: 0,
        }
    }

    /// Pin the ledger session seed (see [`crate::ledger::session_seed`]).
    pub fn with_session_seed(mut self, session_seed: u64) -> Self {
        self.session_seed = Some(session_seed);
        self
    }

    pub fn chain(&self) -> &MlChain {
        &self.chain
    }

    /// Serves executed and how many of them ran a separate pairing leg.
    pub fn ledger_counts(&self) -> (u64, u64) {
        (self.serves, self.diverged_serves)
    }
}

impl CoarseProposalSource for ChainCoarseSource {
    // The caller's RNG seeds the session once (first serve) and is
    // otherwise unused: serve randomness comes from per-serve substreams
    // of the session seed, so serves are pure functions of the session
    // state and reproduce identically across backends (the parity suite
    // relies on this).
    fn request_coarse(&mut self, rng: &mut dyn Rng, anchor: &CoarseSample) -> CoarseAcquire {
        let level = self.chain.level();
        let session_seed = *self
            .session_seed
            .get_or_insert_with(|| crate::ledger::session_seed(rng.next_u64(), level, 0));
        let lease = crate::ledger::LedgerLease {
            session_seed,
            serves: self.serves,
            pairing: self.pairing.take(),
            anchor: anchor.clone(),
        };
        let out = crate::ledger::serve(&mut self.chain, self.rho, &lease);
        self.serves += 1;
        self.diverged_serves += u64::from(out.diverged);
        self.pairing = Some(out.pairing);
        CoarseAcquire::Ready(out.proposal)
    }

    fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample {
        self.chain.anchor_at(theta)
    }

    fn export_state(&self) -> Option<SourceState> {
        Some(SourceState {
            session_seed: self.session_seed,
            serves: self.serves,
            diverged_serves: self.diverged_serves,
            pairing: self.pairing.clone(),
            chain: self.chain.export_state(),
        })
    }

    fn import_state(&mut self, state: SourceState) {
        self.session_seed = state.session_seed;
        self.serves = state.serves;
        self.diverged_serves = state.diverged_serves;
        self.pairing = state.pairing;
        self.chain.import_state(state.chain);
    }
}

/// An always-pending source for suspendable controllers: every
/// [`request_coarse`](CoarseProposalSource::request_coarse) returns
/// [`CoarseAcquire::Pending`], so each coupled step suspends at
/// [`StepOutcome::NeedCoarse`] and the driving state machine fulfills it
/// (via [`MlChain::resume_step`]) with a sample obtained out of band —
/// the cooperative runtime's phonebook protocol in `uq-parallel`.
pub struct PendingCoarseSource {
    /// Coarse problem used only for the one-off starting-point
    /// density/QOI evaluation in [`anchor_at`](Self::anchor_at).
    coarse_problem: Box<dyn SamplingProblem>,
}

impl PendingCoarseSource {
    pub fn new(coarse_problem: Box<dyn SamplingProblem>) -> Self {
        Self { coarse_problem }
    }
}

impl CoarseProposalSource for PendingCoarseSource {
    fn request_coarse(&mut self, _rng: &mut dyn Rng, _anchor: &CoarseSample) -> CoarseAcquire {
        CoarseAcquire::Pending
    }

    fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample {
        CoarseSample::plain(
            theta.to_vec(),
            self.coarse_problem.log_density(theta),
            self.coarse_problem.qoi(theta),
        )
    }
}

/// Build the full recursive chain stack for `level` from a factory:
/// level 0 is a base chain, each higher level wraps the one below as its
/// coarse-proposal source (subsampled at `factory.subsampling_rate`).
pub fn build_chain_stack(factory: &dyn LevelFactory, level: usize) -> MlChain {
    assert!(
        level < factory.n_levels(),
        "build_chain_stack: level out of range"
    );
    if level == 0 {
        return MlChain::base(
            factory.problem(0),
            factory.proposal(0),
            factory.starting_point(0),
        );
    }
    let coarse_chain = build_chain_stack(factory, level - 1);
    let coarse_dim = factory.starting_point(level - 1).len();
    // Algorithm 2: the fine starting point takes its coarse component from
    // the next-coarser starting point
    let mut theta0 = factory.starting_point(level);
    theta0[..coarse_dim].copy_from_slice(&factory.starting_point(level - 1));
    let source = ChainCoarseSource::new(coarse_chain, factory.subsampling_rate(level - 1));
    MlChain::coupled(
        level,
        factory.problem(level),
        Box::new(source),
        factory.proposal(level),
        coarse_dim,
        theta0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::test_support::GaussianHierarchy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uq_linalg::prob::isotropic_gaussian_logpdf;
    use uq_mcmc::problem::GaussianTarget;
    use uq_mcmc::proposal::GaussianRandomWalk;
    use uq_mcmc::stats;

    fn base_gaussian_chain(mean: f64, sd: f64, dim: usize) -> MlChain {
        MlChain::base(
            Box::new(GaussianTarget::new(vec![mean; dim], sd)),
            Box::new(GaussianRandomWalk::new(0.8)),
            vec![0.0; dim],
        )
    }

    #[test]
    fn identical_levels_accept_everything() {
        // ν_l = ν_{l-1} ⇒ the Algorithm-2 ratio is exactly 1
        let coarse = base_gaussian_chain(0.0, 1.0, 2);
        let source = ChainCoarseSource::new(coarse, 3);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![0.0; 2], 1.0)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            2,
            vec![0.0; 2],
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(fine.step(&mut rng), "identical levels must always accept");
        }
        assert_eq!(fine.acceptance_rate(), 1.0);
    }

    #[test]
    fn coupled_chain_targets_fine_distribution() {
        // coarse N(0.5, 0.8²), fine N(1.0, 0.5²): fine chain must converge
        // to the FINE target despite coarse proposals
        let coarse = base_gaussian_chain(0.5, 0.8, 1);
        let source = ChainCoarseSource::new(coarse, 3);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.0], 0.5)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut trace = Vec::new();
        for i in 0..60_000 {
            fine.step(&mut rng);
            if i >= 2000 {
                trace.push(fine.state().theta[0]);
            }
        }
        let mean = stats::mean(&trace);
        let sd = stats::variance(&trace).sqrt();
        assert!((mean - 1.0).abs() < 0.03, "fine mean {mean}");
        assert!((sd - 0.5).abs() < 0.03, "fine sd {sd}");
        let rate = fine.acceptance_rate();
        assert!(rate > 0.3 && rate < 1.0, "acceptance {rate}");
    }

    #[test]
    fn rewind_restores_exactness_under_small_rho() {
        // with rho = 1 the naive (non-rewinding) scheme is maximally
        // biased; the rewinding kernel must still target the fine
        // distribution exactly
        let coarse = base_gaussian_chain(0.0, 1.0, 1);
        let source = ChainCoarseSource::new(coarse, 1);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.5], 0.4)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut trace = Vec::new();
        for i in 0..120_000 {
            fine.step(&mut rng);
            if i >= 5000 {
                trace.push(fine.state().theta[0]);
            }
        }
        let mean = stats::mean(&trace);
        assert!(
            (mean - 1.5).abs() < 0.05,
            "rho = 1 coupled chain must stay unbiased, mean {mean}"
        );
    }

    #[test]
    fn coarse_proposals_decorrelate_fine_chain() {
        // IACT of the coupled fine chain should be near 1 (the paper's
        // observation) because proposals are nearly independent draws
        let coarse = base_gaussian_chain(1.0, 0.55, 1);
        let source = ChainCoarseSource::new(coarse, 8);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.0], 0.5)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![1.0],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut trace = Vec::new();
        for i in 0..20_000 {
            fine.step(&mut rng);
            if i >= 1000 {
                trace.push(fine.state().theta[0]);
            }
        }
        let tau = stats::integrated_autocorrelation_time(&trace);
        assert!(tau < 2.5, "coupled-chain IACT should be near 1, got {tau}");
    }

    #[test]
    fn last_coarse_tracks_proposal_even_on_rejection() {
        // extremely mismatched levels force rejections; last_coarse must
        // still update every step (it feeds the telescoping estimator)
        let coarse = base_gaussian_chain(5.0, 0.2, 1);
        let source = ChainCoarseSource::new(coarse, 2);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![-5.0], 0.2)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![-5.0],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut prev: Option<Vec<f64>> = None;
        let mut changed = 0;
        for _ in 0..50 {
            fine.step(&mut rng);
            let lc = fine.last_coarse().expect("must record coarse sample");
            if let Some(p) = &prev {
                if p != &lc.theta {
                    changed += 1;
                }
            }
            prev = Some(lc.theta.clone());
        }
        assert!(
            changed > 20,
            "coarse proposals should keep moving ({changed})"
        );
        // with such mismatched levels the fine chain never actually moves:
        // the only "accepted" proposals are trivial self-proposals (the
        // rewound coarse chain rejected all its own moves)
        assert_eq!(fine.state().theta, vec![-5.0]);
    }

    #[test]
    fn dimension_growth_with_tail_proposal() {
        // coarse: 1-D N(0,1); fine: 2-D independent N(0,1) ⊗ N(2, 0.5²).
        // The tail component must converge to N(2, 0.5²).
        struct Fine2d;
        impl uq_mcmc::SamplingProblem for Fine2d {
            fn dim(&self) -> usize {
                2
            }
            fn log_density(&mut self, th: &[f64]) -> f64 {
                isotropic_gaussian_logpdf(&th[..1], &[0.0], 1.0)
                    + isotropic_gaussian_logpdf(&th[1..], &[2.0], 0.5)
            }
        }
        let coarse = base_gaussian_chain(0.0, 1.0, 1);
        let source = ChainCoarseSource::new(coarse, 3);
        let mut fine = MlChain::coupled(
            1,
            Box::new(Fine2d),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.6)),
            1,
            vec![0.0, 0.0],
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut tail_trace = Vec::new();
        for i in 0..40_000 {
            fine.step(&mut rng);
            if i >= 2000 {
                tail_trace.push(fine.state().theta[1]);
            }
        }
        let mean = stats::mean(&tail_trace);
        let sd = stats::variance(&tail_trace).sqrt();
        assert!((mean - 2.0).abs() < 0.06, "tail mean {mean}");
        assert!((sd - 0.5).abs() < 0.06, "tail sd {sd}");
    }

    #[test]
    fn build_stack_produces_recursive_hierarchy() {
        let h = GaussianHierarchy::three_level(2);
        let mut chain = build_chain_stack(&h, 2);
        assert_eq!(chain.level(), 2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut trace = Vec::new();
        for i in 0..12_000 {
            chain.step(&mut rng);
            if i >= 1000 {
                trace.push(chain.state().theta[0]);
            }
        }
        // finest level targets N(1.0, 0.5²)
        let mean = stats::mean(&trace);
        assert!((mean - 1.0).abs() < 0.08, "stack mean {mean}");
    }

    #[test]
    fn unphysical_coarse_proposal_is_rejected() {
        struct Cutoff;
        impl uq_mcmc::SamplingProblem for Cutoff {
            fn dim(&self) -> usize {
                1
            }
            fn log_density(&mut self, th: &[f64]) -> f64 {
                if th[0].abs() > 1.0 {
                    f64::NEG_INFINITY
                } else {
                    0.0
                }
            }
        }
        // coarse chain lives far outside the fine support
        let coarse = base_gaussian_chain(10.0, 0.5, 1);
        let source = ChainCoarseSource::new(coarse, 1);
        let mut fine = MlChain::coupled(
            1,
            Box::new(Cutoff),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            fine.step(&mut rng);
            assert!(fine.state().theta[0].abs() <= 1.0);
        }
    }

    /// A recording source that can be switched between blocking and
    /// pending, fulfilling from an internal chain either way — used to
    /// check that the suspended path reproduces the blocking path.
    struct SwitchableSource {
        inner: ChainCoarseSource,
        pending: bool,
        stashed_anchor: Option<CoarseSample>,
    }

    impl CoarseProposalSource for SwitchableSource {
        fn request_coarse(&mut self, rng: &mut dyn Rng, anchor: &CoarseSample) -> CoarseAcquire {
            if self.pending {
                self.stashed_anchor = Some(anchor.clone());
                CoarseAcquire::Pending
            } else {
                self.inner.request_coarse(rng, anchor)
            }
        }
        fn anchor_at(&mut self, theta: &[f64]) -> CoarseSample {
            self.inner.anchor_at(theta)
        }
    }

    #[test]
    fn poll_resume_reproduces_blocking_step_exactly() {
        // two identical coupled chains; one steps through the blocking
        // path, the other suspends at every step and is resumed with the
        // sample an identical helper source generates — the trajectories
        // must agree bit-for-bit because resume consumes the same RNG
        // stream as the blocking acceptance does.
        let mk = |pending| {
            let coarse = base_gaussian_chain(0.5, 0.8, 1);
            let source = SwitchableSource {
                inner: ChainCoarseSource::new(coarse, 3),
                pending,
                stashed_anchor: None,
            };
            MlChain::coupled(
                1,
                Box::new(GaussianTarget::new(vec![1.0], 0.5)),
                Box::new(source),
                Box::new(GaussianRandomWalk::new(0.5)),
                1,
                vec![0.0],
            )
        };
        let mut blocking = mk(false);
        let mut suspending = mk(true);
        // fulfillment helper: an identical coarse source (same default
        // ledger session seed, so serve k produces identical samples),
        // rewound to the suspended chain's anchor
        let mut helper = ChainCoarseSource::new(base_gaussian_chain(0.5, 0.8, 1), 3);
        let mut rng_a = StdRng::seed_from_u64(42);
        // coarse serves draw from the session's own substreams, so the
        // caller streams only drive tail/acceptance variates — consuming
        // them identically on both paths keeps the trajectories aligned
        let mut rng_b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = blocking.step(&mut rng_a);
            assert_eq!(suspending.poll_step(&mut rng_b), StepOutcome::NeedCoarse);
            let anchor = suspending.anchor().expect("coupled chain").clone();
            let coarse = helper.next_coarse(&mut rng_b, &anchor);
            let b = suspending.resume_step(&mut rng_b, coarse);
            assert_eq!(a, b, "acceptance decisions diverged");
            assert_eq!(blocking.state().theta, suspending.state().theta);
        }
        assert_eq!(blocking.steps(), suspending.steps());
        assert_eq!(blocking.acceptance_rate(), suspending.acceptance_rate());
    }

    #[test]
    fn pending_source_suspends_and_poison_resume_rejects() {
        let source = PendingCoarseSource::new(Box::new(GaussianTarget::new(vec![0.0], 1.0)));
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.0], 0.5)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(fine.poll_step(&mut rng), StepOutcome::NeedCoarse);
        // a poison fulfillment counts the step but rejects untouched
        let before = fine.state().theta.clone();
        assert!(!fine.resume_step(
            &mut rng,
            super::CoarseSample::plain(Vec::new(), f64::NEG_INFINITY, Vec::new())
        ));
        assert_eq!(fine.state().theta, before);
        assert_eq!(fine.steps(), 1);
        assert!(fine.last_coarse().is_none());
    }

    #[test]
    #[should_panic(expected = "asynchronous coarse source")]
    fn blocking_step_on_pending_source_panics() {
        let source = PendingCoarseSource::new(Box::new(GaussianTarget::new(vec![0.0], 1.0)));
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.0], 0.5)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(12);
        fine.step(&mut rng);
    }

    #[test]
    fn export_import_continues_recursive_stack_bit_for_bit() {
        // three-level stack: run 300 steps, export, rebuild a fresh
        // identical stack, import, and require the continuation to match
        // the uninterrupted chain exactly (same caller RNG position)
        let h = GaussianHierarchy::three_level(2);
        let mut chain = build_chain_stack(&h, 2);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..300 {
            chain.step(&mut rng);
        }
        let state = chain.export_state();
        assert!(state.source.is_some(), "stack must export recursively");
        let rng_state = rng.state();

        let mut resumed = build_chain_stack(&h, 2);
        resumed.import_state(state.clone());
        assert_eq!(resumed.export_state(), state, "import/export roundtrip");
        let mut rng_resumed = StdRng::from_state(rng_state);
        for _ in 0..300 {
            let a = chain.step(&mut rng);
            let b = resumed.step(&mut rng_resumed);
            assert_eq!(a, b, "acceptance decisions diverged after resume");
            assert_eq!(chain.state().theta, resumed.state().theta);
        }
        assert_eq!(chain.export_state(), resumed.export_state());
    }

    #[test]
    fn restore_roundtrips_state_and_anchor() {
        let coarse = base_gaussian_chain(0.5, 0.8, 1);
        let source = ChainCoarseSource::new(coarse, 2);
        let mut fine = MlChain::coupled(
            1,
            Box::new(GaussianTarget::new(vec![1.0], 0.5)),
            Box::new(source),
            Box::new(GaussianRandomWalk::new(0.5)),
            1,
            vec![0.0],
        );
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            fine.step(&mut rng);
        }
        let snapshot = fine.current_as_sample();
        for _ in 0..20 {
            fine.step(&mut rng);
        }
        fine.restore(&snapshot);
        assert_eq!(fine.state().theta, snapshot.theta);
        assert_eq!(fine.state().log_density, snapshot.log_density);
        assert!(fine.current_as_sample().sub_anchor.is_some());
    }
}
