//! Optimal sample allocation across levels.
//!
//! Given per-level correction variances `V_l` and costs `C_l`, the
//! MSE-minimizing allocation for a target sampling error `ε` is the
//! classical MLMC result (Giles 2008, carried over to MLMCMC in Dodwell
//! et al.):
//!
//! ```text
//! N_l = ε⁻² √(V_l / C_l) · Σ_k √(V_k C_k)
//! ```

/// Compute the optimal `N_l` for target RMS sampling error `epsilon`.
///
/// Returns at least 1 sample per level.
///
/// # Panics
/// Panics on empty/mismatched inputs, non-positive costs or negative
/// variances.
pub fn optimal_allocation(variances: &[f64], costs: &[f64], epsilon: f64) -> Vec<usize> {
    assert!(!variances.is_empty(), "optimal_allocation: no levels");
    assert_eq!(
        variances.len(),
        costs.len(),
        "optimal_allocation: length mismatch"
    );
    assert!(
        epsilon > 0.0,
        "optimal_allocation: epsilon must be positive"
    );
    for (&v, &c) in variances.iter().zip(costs) {
        assert!(v >= 0.0, "optimal_allocation: negative variance");
        assert!(c > 0.0, "optimal_allocation: non-positive cost");
    }
    let total: f64 = variances
        .iter()
        .zip(costs)
        .map(|(&v, &c)| (v * c).sqrt())
        .sum();
    variances
        .iter()
        .zip(costs)
        .map(|(&v, &c)| {
            let n = (v / c).sqrt() * total / (epsilon * epsilon);
            n.ceil().max(1.0) as usize
        })
        .collect()
}

/// Total cost `Σ N_l C_l` of an allocation.
pub fn allocation_cost(allocation: &[usize], costs: &[f64]) -> f64 {
    allocation
        .iter()
        .zip(costs)
        .map(|(&n, &c)| n as f64 * c)
        .sum()
}

/// Predicted sampling variance `Σ V_l / N_l` of the telescoping estimator
/// under an allocation.
pub fn allocation_variance(allocation: &[usize], variances: &[f64]) -> f64 {
    allocation
        .iter()
        .zip(variances)
        .map(|(&n, &v)| v / n as f64)
        .sum()
}

/// Weighted max-min fair split of an integer capacity across tenants.
///
/// Awards `capacity` indivisible units (worker slots) one at a time,
/// each to the tenant with the smallest `granted / weight` ratio among
/// those still below their demand — the unit-granularity water-filling
/// allocation. Properties (pinned by tests):
///
/// * conserves capacity: `Σ share = min(capacity, Σ demand)`;
/// * never over-allocates: `share_i ≤ demand_i`;
/// * fair: with ample demand, shares are proportional to weights;
/// * deterministic: ties break toward the lower index.
///
/// The multi-tenant service (`uq_parallel::service`) uses this to split
/// its shared worker pool across concurrently running jobs, with the
/// tenants' priorities as weights.
///
/// # Panics
/// Panics on mismatched lengths or non-positive/non-finite weights.
pub fn fair_share_split(capacity: usize, demands: &[usize], weights: &[f64]) -> Vec<usize> {
    assert_eq!(
        demands.len(),
        weights.len(),
        "fair_share_split: length mismatch"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "fair_share_split: weights must be positive and finite"
    );
    let mut share = vec![0usize; demands.len()];
    for _ in 0..capacity {
        let next = (0..demands.len())
            .filter(|&i| share[i] < demands[i])
            .min_by(|&a, &b| {
                let fa = (share[a] + 1) as f64 / weights[a];
                let fb = (share[b] + 1) as f64 / weights[b];
                fa.partial_cmp(&fb).expect("finite ratios").then(a.cmp(&b))
            });
        match next {
            Some(i) => share[i] += 1,
            None => break,
        }
    }
    share
}

/// Derive subsampling rates from integrated autocorrelation times: the
/// coarse chain should be subsampled at roughly `τ_l` so consecutive
/// proposals served to the finer level are nearly independent.
pub fn subsampling_from_iact(iacts: &[f64]) -> Vec<usize> {
    iacts.iter().map(|&t| t.ceil().max(1.0) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_puts_more_samples_on_cheap_levels() {
        // classic MLMC shape: decaying variance, growing cost
        let v = [1.0e-1, 1.0e-3, 1.0e-5];
        let c = [3.0, 45.0, 930.0];
        let n = optimal_allocation(&v, &c, 0.01);
        assert!(n[0] > n[1], "{n:?}");
        assert!(n[1] > n[2], "{n:?}");
    }

    #[test]
    fn allocation_achieves_target_variance() {
        let v = [0.2, 0.01, 0.001];
        let c = [1.0, 10.0, 100.0];
        let eps = 0.02;
        let n = optimal_allocation(&v, &c, eps);
        let var = allocation_variance(&n, &v);
        assert!(var <= eps * eps * 1.01, "var {var} vs target {}", eps * eps);
    }

    #[test]
    fn smaller_epsilon_costs_more() {
        let v = [0.2, 0.01];
        let c = [1.0, 10.0];
        let loose = allocation_cost(&optimal_allocation(&v, &c, 0.05), &c);
        let tight = allocation_cost(&optimal_allocation(&v, &c, 0.01), &c);
        assert!(tight > 10.0 * loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn optimal_beats_naive_single_level() {
        // achieving the same variance with only the finest level must cost
        // more than the multilevel allocation
        let v = [0.2, 0.01, 0.001];
        let c = [1.0, 10.0, 100.0];
        let eps = 0.02f64;
        let ml = optimal_allocation(&v, &c, eps);
        let ml_cost = allocation_cost(&ml, &c);
        // single (finest) level: need V_fine_total/N ≤ ε²; the fine-level
        // *QOI* variance is of order V_0 (not the correction variance)
        let n_single = (v[0] / (eps * eps)).ceil();
        let single_cost = n_single * c[2];
        assert!(
            ml_cost < single_cost,
            "multilevel {ml_cost} should beat single level {single_cost}"
        );
    }

    #[test]
    fn every_level_gets_at_least_one_sample() {
        let n = optimal_allocation(&[0.0, 0.0], &[1.0, 1.0], 0.1);
        assert_eq!(n, vec![1, 1]);
    }

    #[test]
    fn subsampling_tracks_iact() {
        assert_eq!(
            subsampling_from_iact(&[137.3, 11.2, 1.05]),
            vec![138, 12, 2]
        );
        assert_eq!(subsampling_from_iact(&[0.5]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "non-positive cost")]
    fn rejects_zero_cost() {
        optimal_allocation(&[1.0], &[0.0], 0.1);
    }

    #[test]
    fn fair_share_conserves_capacity_and_caps_at_demand() {
        let share = fair_share_split(8, &[3, 10, 2], &[1.0, 1.0, 1.0]);
        assert_eq!(share.iter().sum::<usize>(), 8);
        assert!(share.iter().zip([3, 10, 2]).all(|(&s, d)| s <= d));
        // spare capacity flows to the unsaturated tenant
        assert_eq!(share, vec![3, 3, 2]);
        // demand-bound: capacity beyond total demand is left unspent
        let share = fair_share_split(100, &[3, 4], &[1.0, 5.0]);
        assert_eq!(share, vec![3, 4]);
    }

    #[test]
    fn fair_share_follows_weights() {
        // ample demand: a 2:1 priority gets a 2:1 worker split
        assert_eq!(fair_share_split(9, &[100, 100], &[2.0, 1.0]), vec![6, 3]);
        // equal weights split evenly, ties toward the lower index
        assert_eq!(fair_share_split(5, &[9, 9], &[1.0, 1.0]), vec![3, 2]);
    }

    #[test]
    fn fair_share_degenerate_inputs() {
        assert_eq!(fair_share_split(4, &[], &[]), Vec::<usize>::new());
        assert_eq!(fair_share_split(0, &[5, 5], &[1.0, 1.0]), vec![0, 0]);
        assert_eq!(fair_share_split(3, &[0, 7], &[9.0, 1.0]), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn fair_share_rejects_zero_weight() {
        fair_share_split(1, &[1], &[0.0]);
    }
}
