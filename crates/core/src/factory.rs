//! The model-hierarchy factory interface — the Rust analogue of MUQ's
//! `MIComponentFactory` (paper Fig. 7).

use uq_mcmc::{Proposal, SamplingProblem};

/// Supplies everything the multilevel algorithm needs per level.
///
/// A `LevelFactory` is the single integration point for user models: one
/// implementation couples a full model hierarchy to the sequential driver
/// in [`crate::estimator`] *and* to the parallel scheduler in
/// `uq-parallel` (the paper's model-agnosticity goal). Levels are indexed
/// `0..n_levels()`, coarsest first; `n_levels() - 1` is the paper's `L`.
pub trait LevelFactory: Send + Sync {
    /// Number of levels `L + 1` in the hierarchy.
    fn n_levels(&self) -> usize;

    /// Fresh sampling problem for `level`. Called once per chain (and once
    /// per worker in the parallel scheduler); implementations should hand
    /// out independent instances so chains can run concurrently.
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem>;

    /// Proposal distribution for `level`.
    ///
    /// * `level == 0`: the base MCMC proposal (e.g. Gaussian random walk
    ///   or Adaptive Metropolis — the paper uses AM for the tsunami).
    /// * `level >= 1`: the proposal for the *fine tail* components when
    ///   the parameter dimension grows across levels; with constant
    ///   dimension (both paper applications) it is never consulted and
    ///   may return any placeholder.
    fn proposal(&self, level: usize) -> Box<dyn Proposal>;

    /// Subsampling rate `ρ_l`: how many steps the level-`l` chain advances
    /// between consecutive proposals served to level `l + 1`. The finest
    /// level's value is unused (paper lists it as 0).
    fn subsampling_rate(&self, level: usize) -> usize;

    /// Starting parameter for the level-`level` chain.
    fn starting_point(&self, level: usize) -> Vec<f64>;

    /// Burn-in steps for chains on `level` (default 0; the drivers may
    /// override via their own configuration).
    fn burn_in(&self, _level: usize) -> usize {
        0
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use uq_linalg::prob::isotropic_gaussian_logpdf;
    use uq_mcmc::proposal::GaussianRandomWalk;

    /// An analytically tractable hierarchy: level `l` targets
    /// `N(mean_l, sd_l² I)` in `dim` dimensions, with means/SDs converging
    /// to the finest values as `l → L` (mimicking mesh refinement).
    pub struct GaussianHierarchy {
        pub dim: usize,
        pub means: Vec<f64>,
        pub sds: Vec<f64>,
        pub rho: usize,
    }

    impl GaussianHierarchy {
        /// Three levels converging to `N(1, 0.5² I)`.
        pub fn three_level(dim: usize) -> Self {
            Self {
                dim,
                means: vec![0.6, 0.9, 1.0],
                sds: vec![0.65, 0.55, 0.5],
                rho: 12,
            }
        }
    }

    struct LevelTarget {
        dim: usize,
        mean: f64,
        sd: f64,
    }

    impl SamplingProblem for LevelTarget {
        fn dim(&self) -> usize {
            self.dim
        }
        fn log_density(&mut self, theta: &[f64]) -> f64 {
            isotropic_gaussian_logpdf(theta, &vec![self.mean; self.dim], self.sd)
        }
    }

    impl LevelFactory for GaussianHierarchy {
        fn n_levels(&self) -> usize {
            self.means.len()
        }

        fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
            Box::new(LevelTarget {
                dim: self.dim,
                mean: self.means[level],
                sd: self.sds[level],
            })
        }

        fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
            Box::new(GaussianRandomWalk::new(0.8))
        }

        fn subsampling_rate(&self, _level: usize) -> usize {
            self.rho
        }

        fn starting_point(&self, _level: usize) -> Vec<f64> {
            vec![0.0; self.dim]
        }
    }

    #[test]
    fn hierarchy_is_consistent() {
        let h = GaussianHierarchy::three_level(2);
        assert_eq!(h.n_levels(), 3);
        let mut p = h.problem(2);
        assert_eq!(p.dim(), 2);
        assert!(p.log_density(&[1.0, 1.0]) > p.log_density(&[3.0, 3.0]));
    }
}
