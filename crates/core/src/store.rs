//! The content-addressed **run store**: versioned snapshots of a run's
//! full logical state, plus a manifest of queryable run records.
//!
//! ## Snapshot format
//!
//! A snapshot file is self-describing and integrity-checked:
//!
//! ```text
//! magic    8 bytes  b"UQSNAP\0\0"
//! version  u32 LE   FORMAT_VERSION
//! config   u64 LE   caller-supplied config hash (resume refuses a
//!                   snapshot taken under a different configuration)
//! len      u64 LE   payload length in bytes
//! payload  len bytes (hand-rolled little-endian codec, below)
//! check    u64 LE   FNV-1a over everything before it
//! ```
//!
//! Any truncation fails the length check and any bit flip fails either a
//! structured decode check or the trailing FNV check — a damaged
//! snapshot is *rejected with an error*, never mis-decoded (fuzzed by
//! `tests/snapshot_roundtrip_fuzz.rs`).
//!
//! ## Content addressing
//!
//! The object name is the hex of the same FNV-1a hash, so identical
//! logical states produce identical files at identical addresses. All
//! hash-map-backed state ([`crate::ledger::LedgerState`]) is exported
//! sorted by key for exactly this reason. Objects are written to
//! `objects/<hex>.snap` via a temp file + rename, so a crash mid-write
//! can only lose the newest snapshot, never corrupt an older one.
//!
//! ## Manifest
//!
//! `manifest.jsonl` is an append-only JSON-lines index: one record per
//! stored snapshot and one per registered bench result (the previously
//! ad-hoc `results/BENCH_*.json` files become queryable run records).
//! The format is a flat string→string object per line; a tiny extractor
//! ([`manifest_field`]) keeps querying dependency-free.

use crate::coupled::{ChainState, CoarseSample, SourceState};
use crate::ledger::{LedgerState, LedgerStats, SessionState, SpeculationState};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

// The codec primitives were hoisted into [`crate::wire`] when the net
// transport became a second consumer; re-exported here so every
// existing `store::` path keeps working.
pub use crate::wire::{fnv1a, Codec, Dec, Enc, StoreError};

/// Version of the snapshot byte format. Bump on any layout change; the
/// decoder refuses other versions (the committed golden snapshot in
/// `tests/fixtures/` pins backward readability of the current one).
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"UQSNAP\0\0";

impl Codec for CoarseSample {
    fn encode(&self, enc: &mut Enc) {
        self.theta.encode(enc);
        self.log_density.encode(enc);
        self.qoi.encode(enc);
        self.sub_anchor.encode(enc);
        self.mate.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(CoarseSample {
            theta: Vec::decode(dec)?,
            log_density: f64::decode(dec)?,
            qoi: Vec::decode(dec)?,
            sub_anchor: Option::decode(dec)?,
            mate: Option::decode(dec)?,
        })
    }
}

impl Codec for ChainState {
    fn encode(&self, enc: &mut Enc) {
        self.steps.encode(enc);
        self.accepted.encode(enc);
        self.theta.encode(enc);
        self.log_density.encode(enc);
        self.qoi.encode(enc);
        self.anchor.encode(enc);
        self.last_coarse.encode(enc);
        self.last_pairing.encode(enc);
        self.source.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(ChainState {
            steps: usize::decode(dec)?,
            accepted: usize::decode(dec)?,
            theta: Vec::decode(dec)?,
            log_density: f64::decode(dec)?,
            qoi: Vec::decode(dec)?,
            anchor: Option::decode(dec)?,
            last_coarse: Option::decode(dec)?,
            last_pairing: Option::decode(dec)?,
            source: Option::decode(dec)?,
        })
    }
}

impl Codec for SourceState {
    fn encode(&self, enc: &mut Enc) {
        self.session_seed.encode(enc);
        self.serves.encode(enc);
        self.diverged_serves.encode(enc);
        self.pairing.encode(enc);
        self.chain.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(SourceState {
            session_seed: Option::decode(dec)?,
            serves: u64::decode(dec)?,
            diverged_serves: u64::decode(dec)?,
            pairing: Option::decode(dec)?,
            chain: ChainState::decode(dec)?,
        })
    }
}

impl Codec for SpeculationState {
    fn encode(&self, enc: &mut Enc) {
        self.serves.encode(enc);
        self.proposal.encode(enc);
        self.pairing.encode(enc);
        self.diverged.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(SpeculationState {
            serves: u64::decode(dec)?,
            proposal: CoarseSample::decode(dec)?,
            pairing: CoarseSample::decode(dec)?,
            diverged: bool::decode(dec)?,
        })
    }
}

impl Codec for SessionState {
    fn encode(&self, enc: &mut Enc) {
        self.requester.encode(enc);
        self.level.encode(enc);
        self.seed.encode(enc);
        self.serves.encode(enc);
        self.pairing.encode(enc);
        self.next_anchor.encode(enc);
        self.spec_inflight.encode(enc);
        self.spec.encode(enc);
        self.spec_backoff.encode(enc);
        self.spec_cooldown.encode(enc);
        self.real_inflight.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(SessionState {
            requester: usize::decode(dec)?,
            level: usize::decode(dec)?,
            seed: u64::decode(dec)?,
            serves: u64::decode(dec)?,
            pairing: Option::decode(dec)?,
            next_anchor: Option::decode(dec)?,
            spec_inflight: Option::decode(dec)?,
            spec: Option::decode(dec)?,
            spec_backoff: u32::decode(dec)?,
            spec_cooldown: u32::decode(dec)?,
            real_inflight: bool::decode(dec)?,
        })
    }
}

impl Codec for LedgerStats {
    fn encode(&self, enc: &mut Enc) {
        self.sessions.encode(enc);
        self.serves.encode(enc);
        self.diverged.encode(enc);
        self.spec_launched.encode(enc);
        self.spec_hits.encode(enc);
        self.spec_misses.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(LedgerStats {
            sessions: usize::decode(dec)?,
            serves: usize::decode(dec)?,
            diverged: usize::decode(dec)?,
            spec_launched: usize::decode(dec)?,
            spec_hits: usize::decode(dec)?,
            spec_misses: usize::decode(dec)?,
        })
    }
}

impl Codec for LedgerState {
    fn encode(&self, enc: &mut Enc) {
        self.sessions.encode(enc);
        self.generations.encode(enc);
        self.candidates.encode(enc);
        self.stats.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(LedgerState {
            sessions: Vec::decode(dec)?,
            generations: Vec::decode(dec)?,
            candidates: Vec::decode(dec)?,
            stats: LedgerStats::decode(dec)?,
        })
    }
}

impl Codec for crate::ledger::LedgerLease {
    fn encode(&self, enc: &mut Enc) {
        self.session_seed.encode(enc);
        self.serves.encode(enc);
        self.pairing.encode(enc);
        self.anchor.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(crate::ledger::LedgerLease {
            session_seed: u64::decode(dec)?,
            serves: u64::decode(dec)?,
            pairing: Option::decode(dec)?,
            anchor: CoarseSample::decode(dec)?,
        })
    }
}

impl Codec for crate::ledger::ServeOutcome {
    fn encode(&self, enc: &mut Enc) {
        self.proposal.encode(enc);
        self.pairing.encode(enc);
        self.diverged.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(crate::ledger::ServeOutcome {
            proposal: CoarseSample::decode(dec)?,
            pairing: CoarseSample::decode(dec)?,
            diverged: bool::decode(dec)?,
        })
    }
}

// ---------------------------------------------------------------------
// snapshot sections
// ---------------------------------------------------------------------

/// Which driver produced a snapshot (resume refuses a backend switch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    Sequential,
    Thread,
    Runtime,
}

impl Codec for Backend {
    fn encode(&self, enc: &mut Enc) {
        let tag: u8 = match self {
            Backend::Sequential => 0,
            Backend::Thread => 1,
            Backend::Runtime => 2,
        };
        tag.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        match u8::decode(dec)? {
            0 => Ok(Backend::Sequential),
            1 => Ok(Backend::Thread),
            2 => Ok(Backend::Runtime),
            _ => Err(StoreError::Corrupt("backend tag")),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Sequential => "sequential",
            Backend::Thread => "thread",
            Backend::Runtime => "runtime",
        })
    }
}

/// One controller's checkpointed state (parallel backends): chain,
/// counters and RNG stream position, captured at a clean step boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainCkpt {
    pub rank: usize,
    pub level: usize,
    /// Burn-in steps still owed (cooperative runtime controllers can
    /// checkpoint mid-burn-in; thread controllers always report 0).
    pub burnin_left: usize,
    pub producing: bool,
    /// Levels whose `StopProducing` this controller has observed.
    pub done_levels: Vec<bool>,
    /// Round-robin cursor over the level's collector shards (cooperative
    /// runtime; the thread scheduler has one collector per level and
    /// reports 0).
    pub shard_rr: usize,
    /// xoshiro256++ state words of the controller's own stream.
    pub rng: [u64; 4],
    pub chain: ChainState,
}

impl Codec for ChainCkpt {
    fn encode(&self, enc: &mut Enc) {
        self.rank.encode(enc);
        self.level.encode(enc);
        self.burnin_left.encode(enc);
        self.producing.encode(enc);
        self.done_levels.encode(enc);
        self.shard_rr.encode(enc);
        self.rng.encode(enc);
        self.chain.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(ChainCkpt {
            rank: usize::decode(dec)?,
            level: usize::decode(dec)?,
            burnin_left: usize::decode(dec)?,
            producing: bool::decode(dec)?,
            done_levels: Vec::decode(dec)?,
            shard_rr: usize::decode(dec)?,
            rng: <[u64; 4]>::decode(dec)?,
            chain: ChainState::decode(dec)?,
        })
    }
}

/// One collector (shard)'s checkpointed state: streaming moments as
/// Welford parts plus any retained recordings.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectorCkpt {
    pub level: usize,
    pub shard: usize,
    pub count: usize,
    /// Per-component `(count, mean, m2)` parts; `None` before the first
    /// correction arrives (the QOI dimension is not yet known).
    pub moments: Option<Vec<(usize, f64, f64)>>,
    pub theta_samples: Vec<Vec<f64>>,
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Codec for CollectorCkpt {
    fn encode(&self, enc: &mut Enc) {
        self.level.encode(enc);
        self.shard.encode(enc);
        self.count.encode(enc);
        self.moments.encode(enc);
        self.theta_samples.encode(enc);
        self.correction_pairs.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(CollectorCkpt {
            level: usize::decode(dec)?,
            shard: usize::decode(dec)?,
            count: usize::decode(dec)?,
            moments: Option::decode(dec)?,
            theta_samples: Vec::decode(dec)?,
            correction_pairs: Vec::decode(dec)?,
        })
    }
}

/// A completed sequential level term (timing fields excluded — they are
/// not logical state; the resumed driver re-fills them from counter
/// offsets).
#[derive(Clone, Debug, PartialEq)]
pub struct LevelReportCkpt {
    pub level: usize,
    pub n_samples: usize,
    pub acceptance_rate: f64,
    pub mean_correction: Vec<f64>,
    pub var_correction: Vec<f64>,
    pub iact: f64,
    pub theta_samples: Vec<Vec<f64>>,
    pub qoi_samples: Vec<Vec<f64>>,
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Codec for LevelReportCkpt {
    fn encode(&self, enc: &mut Enc) {
        self.level.encode(enc);
        self.n_samples.encode(enc);
        self.acceptance_rate.encode(enc);
        self.mean_correction.encode(enc);
        self.var_correction.encode(enc);
        self.iact.encode(enc);
        self.theta_samples.encode(enc);
        self.qoi_samples.encode(enc);
        self.correction_pairs.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(LevelReportCkpt {
            level: usize::decode(dec)?,
            n_samples: usize::decode(dec)?,
            acceptance_rate: f64::decode(dec)?,
            mean_correction: Vec::decode(dec)?,
            var_correction: Vec::decode(dec)?,
            iact: f64::decode(dec)?,
            theta_samples: Vec::decode(dec)?,
            qoi_samples: Vec::decode(dec)?,
            correction_pairs: Vec::decode(dec)?,
        })
    }
}

/// The sequential driver's cursor: which term is running, how far it
/// got, and every accumulator needed to continue bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct SequentialCkpt {
    /// Level of the term in progress.
    pub level: usize,
    /// Samples already recorded in the current term (burn-in done).
    pub samples_done: usize,
    pub chain: ChainState,
    pub rng: [u64; 4],
    /// Current term's moment parts.
    pub moments: Vec<(usize, f64, f64)>,
    /// Representative-component trace (feeds the IACT column).
    pub rep_trace: Vec<f64>,
    pub theta_samples: Vec<Vec<f64>>,
    pub qoi_samples: Vec<Vec<f64>>,
    pub correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
    /// Reports of terms already finished.
    pub completed: Vec<LevelReportCkpt>,
    /// Per-level model-evaluation counts at the cut (the resumed run's
    /// counters restart at zero; these offsets keep the reported totals
    /// equal to the uninterrupted run's).
    pub eval_offsets: Vec<usize>,
}

impl Codec for SequentialCkpt {
    fn encode(&self, enc: &mut Enc) {
        self.level.encode(enc);
        self.samples_done.encode(enc);
        self.chain.encode(enc);
        self.rng.encode(enc);
        self.moments.encode(enc);
        self.rep_trace.encode(enc);
        self.theta_samples.encode(enc);
        self.qoi_samples.encode(enc);
        self.correction_pairs.encode(enc);
        self.completed.encode(enc);
        self.eval_offsets.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(SequentialCkpt {
            level: usize::decode(dec)?,
            samples_done: usize::decode(dec)?,
            chain: ChainState::decode(dec)?,
            rng: <[u64; 4]>::decode(dec)?,
            moments: Vec::decode(dec)?,
            rep_trace: Vec::decode(dec)?,
            theta_samples: Vec::decode(dec)?,
            qoi_samples: Vec::decode(dec)?,
            correction_pairs: Vec::decode(dec)?,
            completed: Vec::decode(dec)?,
            eval_offsets: Vec::decode(dec)?,
        })
    }
}

/// A whole run's consistent cut: one snapshot per checkpoint barrier.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSnapshot {
    pub backend: Backend,
    /// Base seed of the run (sanity cross-check on resume).
    pub seed: u64,
    /// Progress marker: top-level samples collected at the cut.
    pub samples_done: usize,
    /// Parallel backends: one entry per controller rank.
    pub chains: Vec<ChainCkpt>,
    /// Parallel backends: one entry per collector shard.
    pub collectors: Vec<CollectorCkpt>,
    /// Parallel backends: the phonebook's full session ledger.
    pub ledger: Option<LedgerState>,
    /// Sequential driver's cursor (`None` for parallel backends).
    pub sequential: Option<SequentialCkpt>,
}

impl Codec for RunSnapshot {
    fn encode(&self, enc: &mut Enc) {
        self.backend.encode(enc);
        self.seed.encode(enc);
        self.samples_done.encode(enc);
        self.chains.encode(enc);
        self.collectors.encode(enc);
        self.ledger.encode(enc);
        self.sequential.encode(enc);
    }
    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(RunSnapshot {
            backend: Backend::decode(dec)?,
            seed: u64::decode(dec)?,
            samples_done: usize::decode(dec)?,
            chains: Vec::decode(dec)?,
            collectors: Vec::decode(dec)?,
            ledger: Option::decode(dec)?,
            sequential: Option::decode(dec)?,
        })
    }
}

// ---------------------------------------------------------------------
// snapshot file framing
// ---------------------------------------------------------------------

/// Serialize a snapshot into the self-describing, integrity-checked
/// file format (see the module docs for the layout).
pub fn encode_snapshot(snapshot: &RunSnapshot, config_hash: u64) -> Vec<u8> {
    let mut payload = Enc::new();
    snapshot.encode(&mut payload);
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 36);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&config_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Parse and verify a snapshot file; returns the snapshot and the
/// config hash recorded in its header. Rejects bad magic, unknown
/// format versions, truncation, trailing bytes and any bit corruption.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(RunSnapshot, u64), StoreError> {
    let header_len = MAGIC.len() + 4 + 8 + 8;
    if bytes.len() < header_len + 8 {
        return Err(StoreError::Truncated {
            needed: header_len + 8,
            available: bytes.len(),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let config_hash = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload_len =
        usize::try_from(payload_len).map_err(|_| StoreError::Corrupt("payload length"))?;
    let total = header_len + payload_len + 8;
    if bytes.len() < total {
        return Err(StoreError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(StoreError::TrailingBytes(bytes.len() - total));
    }
    let expected = fnv1a(&bytes[..total - 8]);
    let found = u64::from_le_bytes(bytes[total - 8..].try_into().unwrap());
    if expected != found {
        return Err(StoreError::ChecksumMismatch { expected, found });
    }
    let mut dec = Dec::new(&bytes[header_len..total - 8]);
    let snapshot = RunSnapshot::decode(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(StoreError::TrailingBytes(dec.remaining()));
    }
    Ok((snapshot, config_hash))
}

// ---------------------------------------------------------------------
// the run store
// ---------------------------------------------------------------------

/// One line of the manifest, parsed to flat string pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestRecord {
    pub fields: Vec<(String, String)>,
}

impl ManifestRecord {
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Extract the string value of `key` from one flat JSON-object line —
/// the manifest's dependency-free query primitive. Handles only the
/// subset the manifest writes (string keys/values, `\"` and `\\`
/// escapes), which is exactly enough.
pub fn manifest_field(line: &str, key: &str) -> Option<String> {
    let records = parse_flat_json(line)?;
    records.into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse_flat_json(line: &str) -> Option<Vec<(String, String)>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // skip separators/whitespace to the next key
        while matches!(chars.peek(), Some(c) if *c == ',' || c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(fields);
        }
        let key = parse_json_string(&mut chars)?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return None;
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let value = if chars.peek() == Some(&'"') {
            parse_json_string(&mut chars)?
        } else {
            // bare scalar (number/bool): read to the next comma
            let mut v = String::new();
            while matches!(chars.peek(), Some(c) if *c != ',') {
                v.push(chars.next().unwrap());
            }
            v.trim().to_string()
        };
        fields.push((key, value));
    }
}

fn parse_json_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The on-disk run store: `objects/<hex>.snap` content-addressed
/// snapshots plus the append-only `manifest.jsonl` index.
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Open (creating directories as needed) the store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        Ok(Self { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.jsonl")
    }

    fn object_path(&self, hash: &str) -> PathBuf {
        self.root.join("objects").join(format!("{hash}.snap"))
    }

    /// Store a snapshot; returns its content address (hex hash). The
    /// object write is atomic (temp file + rename) and the manifest
    /// line is appended after the object exists, so a manifest entry
    /// always points at a complete object.
    pub fn put_snapshot(
        &self,
        snapshot: &RunSnapshot,
        config_hash: u64,
    ) -> Result<String, StoreError> {
        let bytes = encode_snapshot(snapshot, config_hash);
        let hash = format!("{:016x}", fnv1a(&bytes));
        let path = self.object_path(&hash);
        if !path.exists() {
            let tmp = self.root.join("objects").join(format!("{hash}.tmp"));
            fs::write(&tmp, &bytes)?;
            fs::rename(&tmp, &path)?;
        }
        self.append_manifest(&format!(
            "{{\"kind\":\"snapshot\",\"hash\":\"{hash}\",\"backend\":\"{}\",\
             \"config\":\"{config_hash:016x}\",\"seed\":\"{}\",\"samples\":\"{}\"}}",
            snapshot.backend, snapshot.seed, snapshot.samples_done
        ))?;
        Ok(hash)
    }

    /// Load and verify the snapshot at `hash`.
    pub fn get_snapshot(&self, hash: &str) -> Result<(RunSnapshot, u64), StoreError> {
        let bytes = fs::read(self.object_path(hash))?;
        decode_snapshot(&bytes)
    }

    /// The most recently recorded snapshot (by manifest order),
    /// optionally restricted to a config hash.
    pub fn latest_snapshot(
        &self,
        config_hash: Option<u64>,
    ) -> Result<Option<(String, RunSnapshot)>, StoreError> {
        let want = config_hash.map(|h| format!("{h:016x}"));
        let Some(record) = self.manifest_records()?.into_iter().rev().find(|r| {
            r.get("kind") == Some("snapshot")
                && want.as_deref().is_none_or(|w| r.get("config") == Some(w))
        }) else {
            return Ok(None);
        };
        let hash = record
            .get("hash")
            .ok_or(StoreError::Corrupt("manifest snapshot record without hash"))?
            .to_string();
        let (snapshot, _) = self.get_snapshot(&hash)?;
        Ok(Some((hash, snapshot)))
    }

    /// Register a bench result (the `results/BENCH_*.json` / CSV
    /// artifacts) as a queryable run record: the content is hashed and
    /// indexed, turning the ad-hoc output files into store entries.
    pub fn record_bench(&self, name: &str, content: &str) -> Result<String, StoreError> {
        let hash = format!("{:016x}", fnv1a(content.as_bytes()));
        self.append_manifest(&format!(
            "{{\"kind\":\"bench\",\"name\":\"{}\",\"hash\":\"{hash}\",\"bytes\":\"{}\"}}",
            json_escape(name),
            content.len()
        ))?;
        Ok(hash)
    }

    /// All manifest records, in append order.
    pub fn manifest_records(&self) -> Result<Vec<ManifestRecord>, StoreError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = fs::read_to_string(path)?;
        Ok(text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| parse_flat_json(l).map(|fields| ManifestRecord { fields }))
            .collect())
    }

    fn append_manifest(&self, line: &str) -> Result<(), StoreError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        writeln!(f, "{line}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(theta: f64) -> CoarseSample {
        CoarseSample {
            theta: vec![theta, theta * 0.5],
            log_density: -theta * theta,
            qoi: vec![theta],
            sub_anchor: Some(Box::new(CoarseSample::plain(
                vec![theta * 0.1],
                -1.0,
                vec![],
            ))),
            mate: None,
        }
    }

    fn snapshot() -> RunSnapshot {
        RunSnapshot {
            backend: Backend::Thread,
            seed: 4321,
            samples_done: 200,
            chains: vec![ChainCkpt {
                rank: 5,
                level: 1,
                burnin_left: 0,
                producing: true,
                done_levels: vec![false, false],
                shard_rr: 0,
                rng: [1, 2, 3, 4],
                chain: ChainState {
                    steps: 17,
                    accepted: 9,
                    theta: vec![0.25],
                    log_density: -0.5,
                    qoi: vec![0.25],
                    anchor: Some(sample(0.2)),
                    last_coarse: Some(sample(0.3)),
                    last_pairing: Some(sample(0.31)),
                    source: None,
                },
            }],
            collectors: vec![CollectorCkpt {
                level: 1,
                shard: 0,
                count: 3,
                moments: Some(vec![(3, 0.1, 0.02)]),
                theta_samples: vec![vec![0.1], vec![0.2]],
                correction_pairs: vec![(vec![0.0], vec![0.1])],
            }],
            ledger: Some(LedgerState {
                sessions: vec![SessionState {
                    requester: 5,
                    level: 0,
                    seed: 99,
                    serves: 7,
                    pairing: Some(sample(0.4)),
                    next_anchor: Some(sample(0.5)),
                    spec_inflight: None,
                    spec: Some(SpeculationState {
                        serves: 7,
                        proposal: sample(0.6),
                        pairing: sample(0.61),
                        diverged: true,
                    }),
                    spec_backoff: 3,
                    spec_cooldown: 1,
                    real_inflight: false,
                }],
                generations: vec![(5, 0, 1)],
                candidates: vec![(0, vec![5])],
                stats: LedgerStats {
                    sessions: 1,
                    serves: 7,
                    diverged: 2,
                    spec_launched: 4,
                    spec_hits: 2,
                    spec_misses: 1,
                },
            }),
            sequential: None,
        }
    }

    #[test]
    fn roundtrip_is_exact_and_content_addressed() {
        let snap = snapshot();
        let bytes = encode_snapshot(&snap, 0xDEAD_BEEF);
        let (decoded, config) = decode_snapshot(&bytes).expect("decode");
        assert_eq!(decoded, snap);
        assert_eq!(config, 0xDEAD_BEEF);
        // determinism: identical state → identical bytes → same address
        assert_eq!(bytes, encode_snapshot(&snapshot(), 0xDEAD_BEEF));
    }

    #[test]
    fn nan_and_infinities_roundtrip_bit_exactly() {
        let mut snap = snapshot();
        snap.chains[0].chain.log_density = f64::NEG_INFINITY;
        snap.collectors[0].moments = Some(vec![(1, f64::NAN, f64::INFINITY)]);
        let bytes = encode_snapshot(&snap, 1);
        let (decoded, _) = decode_snapshot(&bytes).unwrap();
        // NaN breaks PartialEq — compare re-encoded bytes instead
        assert_eq!(bytes, encode_snapshot(&decoded, 1));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&snapshot(), 7);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&snapshot(), 7);
        bytes.push(0);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_snapshot(&snapshot(), 7);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_snapshot(&bytes), Err(StoreError::BadMagic)));
        let mut bytes = encode_snapshot(&snapshot(), 7);
        bytes[8] = 99; // version field
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let bytes = encode_snapshot(&snapshot(), 7);
        // flip one bit in every byte position (magic/version/config
        // errors surface as their own variants; everything else must
        // fail the checksum or a structured check — never Ok)
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            assert!(
                decode_snapshot(&corrupted).is_err(),
                "bit flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn store_roundtrips_and_indexes_snapshots() {
        let dir = std::env::temp_dir().join(format!("uq-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let snap = snapshot();
        let hash = store.put_snapshot(&snap, 42).unwrap();
        let (loaded, config) = store.get_snapshot(&hash).unwrap();
        assert_eq!(loaded, snap);
        assert_eq!(config, 42);

        let mut later = snap.clone();
        later.samples_done = 300;
        let hash2 = store.put_snapshot(&later, 42).unwrap();
        assert_ne!(hash, hash2, "different states must get different addresses");
        let (latest_hash, latest) = store.latest_snapshot(Some(42)).unwrap().expect("latest");
        assert_eq!(latest_hash, hash2);
        assert_eq!(latest.samples_done, 300);
        assert!(store.latest_snapshot(Some(43)).unwrap().is_none());

        store.record_bench("BENCH_PR6.json", "{\"x\":1}").unwrap();
        let records = store.manifest_records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].get("kind"), Some("snapshot"));
        assert_eq!(records[2].get("kind"), Some("bench"));
        assert_eq!(records[2].get("name"), Some("BENCH_PR6.json"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_field_extracts_values() {
        let line = "{\"kind\":\"bench\",\"name\":\"a \\\"b\\\".json\",\"bytes\":\"12\"}";
        assert_eq!(manifest_field(line, "kind").as_deref(), Some("bench"));
        assert_eq!(
            manifest_field(line, "name").as_deref(),
            Some("a \"b\".json")
        );
        assert_eq!(manifest_field(line, "bytes").as_deref(), Some("12"));
        assert_eq!(manifest_field(line, "missing"), None);
        assert_eq!(manifest_field("not json", "kind"), None);
    }

    #[test]
    fn idempotent_put_reuses_the_object() {
        let dir = std::env::temp_dir().join(format!("uq-store-idem-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let snap = snapshot();
        let h1 = store.put_snapshot(&snap, 1).unwrap();
        let h2 = store.put_snapshot(&snap, 1).unwrap();
        assert_eq!(h1, h2);
        // two manifest lines, one object
        assert_eq!(store.manifest_records().unwrap().len(), 2);
        let objects = fs::read_dir(dir.join("objects")).unwrap().count();
        assert_eq!(objects, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
