//! # uq-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index) plus Criterion
//! micro-benchmarks of the underlying kernels.
//!
//! Each experiment is a binary under `src/bin/`; all of them accept
//! `--paper` to run at the paper's full scale and default to CI-sized
//! parameters otherwise. Outputs go to `results/` as CSV plus a printed
//! table mirroring the paper's layout.

#![deny(rustdoc::broken_intra_doc_links)]

use std::io::Write;
use std::path::{Path, PathBuf};
use uq_mlmcmc::RunStore;

/// Parsed common command-line options for experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Run at the paper's full scale.
    pub paper: bool,
    /// Output directory (default `results/`).
    pub out_dir: PathBuf,
    /// RNG seed.
    pub seed: u64,
    /// Model selector for experiments that drive more than one forward
    /// model (e.g. `scaling_live`: `gauss` (default) or `swe`).
    pub model: String,
    /// Persist a consistent-cut snapshot to the run store every this
    /// many recorded top-level corrections (0 = checkpointing off).
    pub checkpoint_every: usize,
    /// Resume from the latest matching snapshot in the run store
    /// instead of starting from scratch.
    pub resume: bool,
    /// Crash-injection: abort the process at the n-th snapshot (the
    /// equivalence harness re-launches with `--resume`).
    pub crash_at: Option<usize>,
    /// Write a Chrome trace-event JSON (Perfetto-loadable) of the
    /// traced study phases to this file under `out_dir`.
    pub trace_out: Option<String>,
    /// Write a `MetricsSnapshot` JSON (counters, histograms, per-rank /
    /// per-level activity) to this file under `out_dir`.
    pub metrics_out: Option<String>,
    /// Print a periodic live progress line (stderr) while the traced
    /// phases run.
    pub progress: bool,
    /// Multi-process TCP transport role (`scaling_live` only):
    /// `driver` binds `--listen` and assembles the universe, `worker`
    /// connects to `--connect` and hosts assigned ranks.
    pub net: Option<String>,
    /// Listen address for `--net driver` (default `127.0.0.1:0`, an
    /// OS-assigned port printed at startup; CI passes a fixed port so
    /// worker processes can rendezvous without parsing driver output).
    pub listen: String,
    /// Driver address for `--net worker`.
    pub connect: String,
    /// Worker processes the driver waits for at rendezvous.
    pub net_workers: usize,
    /// `--net worker`: join an already-running universe elastically
    /// (admitted at a checkpoint barrier) instead of taking part in the
    /// initial rendezvous.
    pub join: bool,
    /// `--net worker`: depart at this checkpoint barrier, migrating the
    /// hosted ranks back to the driver.
    pub leave_at: Option<u64>,
}

impl ExpArgs {
    /// Parse from `std::env::args`. Recognizes `--paper`,
    /// `--out <dir>`, `--seed <n>`, `--model <name>`,
    /// `--checkpoint-every <n>`, `--resume`, `--crash-at <n>`,
    /// `--trace-out <file>`, `--metrics-out <file>`, `--progress`,
    /// `--net <driver|worker>`, `--listen <addr>`, `--connect <addr>`,
    /// `--net-workers <n>`, `--join`, `--leave-at <barrier>`.
    pub fn parse() -> Self {
        let mut args = ExpArgs {
            paper: false,
            out_dir: PathBuf::from("results"),
            seed: 20210730,
            model: String::from("gauss"),
            checkpoint_every: 0,
            resume: false,
            crash_at: None,
            trace_out: None,
            metrics_out: None,
            progress: false,
            net: None,
            listen: String::from("127.0.0.1:0"),
            connect: String::from("127.0.0.1:9417"),
            net_workers: 2,
            join: false,
            leave_at: None,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--paper" => args.paper = true,
                "--out" => {
                    args.out_dir = PathBuf::from(iter.next().expect("--out needs a value"));
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--model" => {
                    args.model = iter.next().expect("--model needs a value");
                }
                "--checkpoint-every" => {
                    args.checkpoint_every = iter
                        .next()
                        .expect("--checkpoint-every needs a value")
                        .parse()
                        .expect("--checkpoint-every must be an integer");
                }
                "--resume" => args.resume = true,
                "--crash-at" => {
                    args.crash_at = Some(
                        iter.next()
                            .expect("--crash-at needs a value")
                            .parse()
                            .expect("--crash-at must be an integer"),
                    );
                }
                "--trace-out" => {
                    args.trace_out = Some(iter.next().expect("--trace-out needs a value"));
                }
                "--metrics-out" => {
                    args.metrics_out = Some(iter.next().expect("--metrics-out needs a value"));
                }
                "--progress" => args.progress = true,
                "--net" => {
                    let role = iter.next().expect("--net needs driver or worker");
                    assert!(
                        role == "driver" || role == "worker",
                        "--net must be driver or worker, got {role}"
                    );
                    args.net = Some(role);
                }
                "--listen" => {
                    args.listen = iter.next().expect("--listen needs an address");
                }
                "--connect" => {
                    args.connect = iter.next().expect("--connect needs an address");
                }
                "--net-workers" => {
                    args.net_workers = iter
                        .next()
                        .expect("--net-workers needs a value")
                        .parse()
                        .expect("--net-workers must be an integer");
                }
                "--join" => args.join = true,
                "--leave-at" => {
                    args.leave_at = Some(
                        iter.next()
                            .expect("--leave-at needs a value")
                            .parse()
                            .expect("--leave-at must be an integer"),
                    );
                }
                other => {
                    panic!(
                        "unknown argument: {other} (expected --paper/--out/--seed/--model/\
                         --checkpoint-every/--resume/--crash-at/--trace-out/--metrics-out/\
                         --progress/--net/--listen/--connect/--net-workers/--join/--leave-at)"
                    )
                }
            }
        }
        args
    }

    /// Open the content-addressed run store that indexes this
    /// invocation's artifacts and snapshots: `<out_dir>/store`.
    pub fn run_store(&self) -> RunStore {
        RunStore::open(self.out_dir.join("store")).expect("cannot open run store")
    }
}

/// Incremental builder for the hand-rolled `BENCH_*.json` artifacts.
/// Centralizes the indentation and trailing-comma bookkeeping that was
/// previously duplicated (and had started to drift) across the
/// experiment binaries; [`write_bench`] then lands the result both on
/// disk and in the run-store manifest.
#[derive(Default)]
pub struct BenchJson {
    parts: Vec<String>,
}

impl BenchJson {
    pub fn new() -> Self {
        Self::default()
    }

    /// Top-level field with a raw (already JSON-rendered) value:
    /// numbers, booleans, `{:?}`-printed numeric lists.
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.parts.push(format!("  \"{key}\": {value}"));
        self
    }

    /// Top-level string field (the value is quoted).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.parts.push(format!("  \"{key}\": \"{value}\""));
        self
    }

    /// Top-level array of pre-rendered JSON items (typically one
    /// `{ ... }` object per line).
    pub fn array(&mut self, key: &str, items: &[String]) -> &mut Self {
        let body: Vec<String> = items.iter().map(|i| format!("    {i}")).collect();
        self.parts
            .push(format!("  \"{key}\": [\n{}\n  ]", body.join(",\n")));
        self
    }

    /// Render the complete JSON document.
    pub fn finish(&self) -> String {
        format!("{{\n{}\n}}\n", self.parts.join(",\n"))
    }
}

/// Write a bench artifact to `<out_dir>/<name>` **and** register it in
/// the run-store manifest (`<out_dir>/store/manifest.jsonl`), turning
/// the ad-hoc output file into a queryable run record.
pub fn write_bench(out_dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = write_output(out_dir, name, content);
    RunStore::open(out_dir.join("store"))
        .and_then(|store| store.record_bench(name, content))
        .expect("cannot register bench artifact in the run store");
    path
}

/// [`write_bench`] for CSV artifacts: format with [`to_csv`], write,
/// and register in the run-store manifest.
pub fn write_bench_csv(out_dir: &Path, name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    write_bench(out_dir, name, &to_csv(header, rows))
}

/// Write `content` to `<out_dir>/<name>`, creating the directory.
pub fn write_output(out_dir: &Path, name: &str, content: &str) -> PathBuf {
    std::fs::create_dir_all(out_dir).expect("cannot create output directory");
    let path = out_dir.join(name);
    let mut f = std::fs::File::create(&path).expect("cannot create output file");
    f.write_all(content.as_bytes())
        .expect("cannot write output");
    println!("wrote {}", path.display());
    path
}

/// Format a CSV from a header and rows.
pub fn to_csv(header: &str, rows: &[Vec<f64>]) -> String {
    let mut out = String::from(header);
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Render an aligned text table (for terminal output mirroring the
/// paper's tables).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Shared fixtures for the forward-solve-pipeline benchmarks, used by
/// both the criterion harnesses (`benches/kernels.rs`,
/// `benches/models.rs`) and the `perf_baseline` binary so all of them
/// measure the same κ field, multigrid hierarchy, θ chain and legacy
/// pipeline — a tweak in one place cannot silently diverge from the
/// others.
pub mod pipeline_bench {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uq_fem::assembly::assemble;
    use uq_fem::poisson::build_mg_hierarchy;
    use uq_fem::{PoissonModel, StructuredGrid};
    use uq_linalg::mg::GmgHierarchy;
    use uq_linalg::prob::standard_normal_vec;
    use uq_linalg::solvers::{cg, SolverOptions, SsorPrecond};

    /// Deterministic mildly varying diffusion field for kernel benches.
    pub fn bench_kappa(grid: &StructuredGrid) -> Vec<f64> {
        (0..grid.n_elements())
            .map(|e| 1.0 + 0.5 * ((e % 7) as f64 / 7.0))
            .collect()
    }

    /// The production multigrid hierarchy for the bench κ.
    ///
    /// # Panics
    /// Panics if the mesh cannot be coarsened (odd or `n ≤ 4`).
    pub fn bench_hierarchy(fine_n: usize) -> GmgHierarchy {
        let kappa = bench_kappa(&StructuredGrid::new(fine_n));
        build_mg_hierarchy(fine_n, &kappa).expect("bench meshes support MG")
    }

    /// A pCN-like chain of parameter states (β = 0.2): consecutive
    /// draws are correlated like accepted MCMC moves, so warm starts
    /// help realistically — but every bench iteration performs a
    /// genuine solve. Timing one fixed θ would degenerate: after the
    /// first call the warm start is the exact solution and CG does 0
    /// iterations, reducing "forward" timings to pure operator-update
    /// cost.
    pub fn theta_chain(seed: u64, dim: usize, len: usize) -> Vec<Vec<f64>> {
        let beta = 0.2f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(len);
        let mut current = standard_normal_vec(&mut rng, dim);
        for _ in 0..len {
            let noise = standard_normal_vec(&mut rng, dim);
            current = current
                .iter()
                .zip(&noise)
                .map(|(c, z)| (1.0 - beta * beta).sqrt() * c + beta * z)
                .collect();
            states.push(current.clone());
        }
        states
    }

    /// The pre-PR-2 forward pipeline, reconstructed for comparison:
    /// per-solve COO assembly + sort, an SSOR preconditioner over the
    /// freshly built matrix, and the allocating CG driver (warm start
    /// kept, as before). The old `SsorPrecond` additionally cloned the
    /// whole matrix per solve, which this reconstruction does not — so
    /// legacy timings are a conservative lower bound on the old cost
    /// and measured speedups understate the real ones.
    pub struct LegacyForward {
        grid: StructuredGrid,
        obs: Vec<(f64, f64)>,
        opts: SolverOptions,
        warm: Option<Vec<f64>>,
    }

    impl LegacyForward {
        /// Set up for the same grid/observation points as `model`.
        pub fn new(model: &PoissonModel) -> Self {
            Self {
                grid: model.grid().clone(),
                obs: model.observation_points().to_vec(),
                opts: SolverOptions {
                    rel_tol: 1e-8,
                    ..Default::default()
                },
                warm: None,
            }
        }

        /// One legacy forward evaluation (κ via `model`, then assemble +
        /// SSOR-CG + interpolate).
        ///
        /// # Panics
        /// Panics if CG stalls.
        pub fn step(&mut self, model: &PoissonModel, theta: &[f64]) -> Vec<f64> {
            let kappa = model.kappa_elements(theta);
            let sys = assemble(&self.grid, &kappa);
            let pre = SsorPrecond::new(&sys.matrix, 1.0);
            let r = cg(&sys.matrix, &sys.rhs, self.warm.as_deref(), &pre, self.opts);
            assert!(r.converged, "legacy pipeline: CG stalled");
            let out: Vec<f64> = self
                .obs
                .iter()
                .map(|&(x, y)| self.grid.interpolate(&r.x, x, y))
                .collect();
            self.warm = Some(r.x);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_formatting() {
        let csv = to_csv("a,b", &[vec![1.0, 2.5], vec![3.0, -4.0]]);
        assert_eq!(csv, "a,b\n1,2.5\n3,-4\n");
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["level", "value"],
            &[
                vec!["0".into(), "1.5".into()],
                vec!["10".into(), "22.75".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("level"));
        assert!(lines[3].ends_with("22.75"));
    }

    #[test]
    fn bench_json_builder_and_manifest_registration() {
        let dir = std::env::temp_dir().join(format!("uq-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut j = BenchJson::new();
        j.field("pr", 6).field_str("model", "gauss").array(
            "sweep",
            &[
                "{ \"ranks\": 1 }".to_string(),
                "{ \"ranks\": 2 }".to_string(),
            ],
        );
        let json = j.finish();
        assert_eq!(
            json,
            "{\n  \"pr\": 6,\n  \"model\": \"gauss\",\n  \"sweep\": [\n    { \"ranks\": 1 },\n    { \"ranks\": 2 }\n  ]\n}\n"
        );
        let p = write_bench(&dir, "BENCH_T.json", &json);
        assert_eq!(std::fs::read_to_string(p).unwrap(), json);
        let store = RunStore::open(dir.join("store")).unwrap();
        let recs = store.manifest_records().unwrap();
        assert!(recs
            .iter()
            .any(|r| r.get("kind") == Some("bench") && r.get("name") == Some("BENCH_T.json")));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_output_roundtrip() {
        let dir = std::env::temp_dir().join("uq_bench_test_out");
        let p = write_output(&dir, "t.csv", "x\n1\n");
        assert_eq!(std::fs::read_to_string(p).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
