//! **Ablation: coarsest-level proposal family** (DESIGN.md §5.4).
//!
//! Compares Gaussian random walk, pCN, independence sampling and
//! Adaptive Metropolis on the Poisson level-0 posterior (113-dimensional
//! KL coefficients): acceptance rate, IACT of a representative QOI
//! component and effective samples per model evaluation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_fem::problem::constants;
use uq_fem::PoissonHierarchy;
use uq_mcmc::stats::{effective_sample_size, integrated_autocorrelation_time};
use uq_mcmc::{
    AdaptiveMetropolis, Chain, ChainConfig, GaussianRandomWalk, IndependenceProposal, PcnProposal,
    Proposal,
};

fn main() {
    let args = ExpArgs::parse();
    let (m, level_n, n_samples) = if args.paper {
        (constants::PARAM_DIM, vec![16], 20_000)
    } else {
        (constants::PARAM_DIM, vec![16], 4_000)
    };
    println!("Ablation — coarsest-level proposals on the Poisson level-0 posterior (m = {m})\n");
    let hierarchy = PoissonHierarchy::new(m, level_n, args.seed);
    let rep = 16 * 33 + 16; // center of the QOI grid

    let proposals: Vec<(&str, Box<dyn Proposal>)> = vec![
        ("RW sd=0.05", Box::new(GaussianRandomWalk::new(0.05))),
        ("RW sd=0.2", Box::new(GaussianRandomWalk::new(0.2))),
        (
            "pCN beta=0.08",
            Box::new(PcnProposal::new(0.08, vec![0.0; m], constants::PRIOR_SD)),
        ),
        (
            "pCN beta=0.25",
            Box::new(PcnProposal::new(0.25, vec![0.0; m], constants::PRIOR_SD)),
        ),
        (
            "indep N(0,3I)",
            Box::new(IndependenceProposal::isotropic(vec![0.0; m], 3f64.sqrt())),
        ),
        ("AM sd=0.1", Box::new(AdaptiveMetropolis::new(m, 0.1, 100))),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, (name, proposal)) in proposals.into_iter().enumerate() {
        let problem = hierarchy.problem(0);
        let mut chain = Chain::new(
            problem,
            proposal,
            vec![0.0; m],
            ChainConfig::with_burn_in(n_samples / 10),
        );
        let mut rng = StdRng::seed_from_u64(args.seed + i as u64);
        chain.run(n_samples, &mut rng);
        let trace = chain.qoi_trace(rep);
        let iact = integrated_autocorrelation_time(&trace);
        let ess = effective_sample_size(&trace);
        let evals = chain.steps_taken() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", chain.acceptance_rate()),
            format!("{:.1}", iact),
            format!("{:.1}", ess),
            format!("{:.4}", ess / evals),
        ]);
        csv.push(vec![
            i as f64,
            chain.acceptance_rate(),
            iact,
            ess,
            ess / evals,
        ]);
    }
    println!(
        "{}",
        render_table(&["proposal", "accept", "IACT", "ESS", "ESS/eval"], &rows)
    );
    println!("\nthe literal reading of the paper's 'N(0, 3I)' as an independence sampler");
    println!("collapses in 113 dimensions (near-zero acceptance); pCN/RW remain usable,");
    println!("matching our default choice (documented in DESIGN.md).");
    write_output(
        &args.out_dir,
        "ablation_proposals.csv",
        &to_csv("variant,acceptance,iact,ess,ess_per_eval", &csv),
    );
}
