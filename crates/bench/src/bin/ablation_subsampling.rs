//! **Ablation: subsampling rate ρ** (DESIGN.md §5.1).
//!
//! Sweeps the coarse-chain subsampling rate on a two-level hierarchy and
//! reports the fine-chain IACT, correction variance and the total coarse
//! cost: larger ρ decorrelates the coarse proposals (IACT → 1) but each
//! fine sample pays ρ coarse evaluations.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_mcmc::problem::GaussianTarget;
use uq_mlmcmc::{run_sequential, MlmcmcConfig};

struct TwoLevel {
    rho: usize,
}

impl uq_mlmcmc::LevelFactory for TwoLevel {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn uq_mcmc::SamplingProblem> {
        let mean = [0.7, 1.0][level];
        let sd = [0.6, 0.5][level];
        Box::new(GaussianTarget::new(vec![mean], sd))
    }
    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        // deliberately small steps so the coarse chain is sticky and the
        // value of subsampling is visible
        Box::new(uq_mcmc::GaussianRandomWalk::new(0.25))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        if level == 0 {
            self.rho
        } else {
            0
        }
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n_samples = if args.paper { 40_000 } else { 8_000 };
    println!("Ablation — subsampling rate rho (two-level Gaussian hierarchy)\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rho in [1usize, 2, 4, 8, 16, 32, 64] {
        let factory = TwoLevel { rho };
        let config = MlmcmcConfig::new(vec![100, n_samples]).with_burn_in(vec![200, 500]);
        let mut rng = StdRng::seed_from_u64(args.seed + rho as u64);
        let report = run_sequential(&factory, &config, &mut rng);
        let fine = &report.levels[1];
        // cost proxy: coarse evals per fine sample
        let coarse_per_fine = report.levels[0].evaluations as f64 / fine.n_samples as f64;
        let iact = fine.iact;
        let work_per_ess = coarse_per_fine * iact;
        rows.push(vec![
            rho.to_string(),
            format!("{:.2}", iact),
            format!("{:.2}", fine.acceptance_rate),
            format!("{:.4}", fine.var_correction[0]),
            format!("{:.1}", coarse_per_fine),
            format!("{:.1}", work_per_ess),
        ]);
        csv.push(vec![
            rho as f64,
            iact,
            fine.acceptance_rate,
            fine.var_correction[0],
            coarse_per_fine,
            work_per_ess,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "rho",
                "fine IACT",
                "accept",
                "V[Y_1]",
                "coarse evals/sample",
                "work/ESS"
            ],
            &rows
        )
    );
    println!(
        "expected shape: IACT drops towards 1 with rho; work/ESS is minimized at a moderate rho."
    );
    write_output(
        &args.out_dir,
        "ablation_subsampling.csv",
        &to_csv(
            "rho,fine_iact,acceptance,var_correction,coarse_evals_per_sample,work_per_ess",
            &csv,
        ),
    );
}
