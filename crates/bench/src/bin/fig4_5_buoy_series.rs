//! **Figs. 4 and 5**: sea-surface-height-anomaly time series at the two
//! buoys (21418 and 21419) for representative source parameters on
//! levels 0 and 1, compared against the synthetic "observed" series (the
//! finest model at the reference source — the stand-in for the NDBC
//! data, see DESIGN.md).

use uq_bench::{to_csv, write_output, ExpArgs};
use uq_swe::tohoku::{Resolution, TsunamiModel};

fn main() {
    let args = ExpArgs::parse();
    let resolution = if args.paper {
        Resolution::Paper
    } else {
        Resolution::Reduced
    };
    println!("Figs. 4/5 — buoy time series per level vs. reference data");

    // "observed" data: finest model at the reference source
    let mut reference = TsunamiModel::new(2, resolution);
    reference.record_series = true;
    let obs = reference.forward(&[0.0, 0.0]);
    println!(
        "reference observation: hmax = ({:.3}, {:.3}) m at t = ({:.1}, {:.1}) min",
        obs[0], obs[1], obs[2], obs[3]
    );

    // a few representative posterior-region samples on levels 0 and 1
    let sample_thetas = [[0.0, 0.0], [20.0, -15.0], [-25.0, 30.0]];
    for buoy in 0..2 {
        let name = ["21418", "21419"][buoy];
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for &level in &[0usize, 1] {
            for (si, theta) in sample_thetas.iter().enumerate() {
                let mut model = TsunamiModel::new(level, resolution);
                model.record_series = true;
                model.forward(theta);
                for &(t, h) in &model.last_series[buoy] {
                    rows.push(vec![level as f64, si as f64, t / 60.0, h]);
                }
            }
        }
        // reference series tagged as level -1
        for &(t, h) in &reference.last_series[buoy] {
            rows.push(vec![-1.0, 0.0, t / 60.0, h]);
        }
        write_output(
            &args.out_dir,
            &format!("fig{}_buoy_{}.csv", 4 + buoy, name),
            &to_csv("level,sample,t_min,ssha_m", &rows),
        );
    }
}
