//! **Table 4** (and source CSVs for **Figs. 13/14**): multilevel
//! properties of the tsunami inversion — per level: cost `t_l`,
//! subsampling rate `ρ_l`, variances and expected values of both QOI
//! components (the source location), and the telescoping partial sums.
//!
//! Defaults to the reduced grids with 400/220/120 samples (~10 min);
//! `--paper` uses the paper's 800/450/240 samples on the 25/79/241 grids
//! (long: level-2 evaluations take ~50 s each on one machine).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_mlmcmc::{run_sequential, MlmcmcConfig};
use uq_swe::tohoku::{Resolution, TsunamiHierarchy};

fn main() {
    let args = ExpArgs::parse();
    let (resolution, samples, burn_in) = if args.paper {
        (Resolution::Paper, vec![800, 450, 240], vec![100, 40, 20])
    } else {
        (Resolution::Reduced, vec![400, 220, 120], vec![60, 30, 15])
    };
    println!("Table 4 — tsunami multilevel properties (subsampling rho = 25 / 5)");
    println!("(paper reference: t_l = 7.38 / 97.3 / 438.1 s,");
    println!(" V[Q] = (1984, 1337) / (1592, 1523) / (341, 939),");
    println!(" E-corrections = (3.61, 27.96) / (-12.29, -4.57) / (-5.46, -23.27)-ish,");
    println!(" partial sums converging towards (0, 0))\n");

    let hierarchy = TsunamiHierarchy::new(resolution);
    let config = MlmcmcConfig::new(samples).with_burn_in(burn_in).recording();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let report = run_sequential(&hierarchy, &config, &mut rng);

    let partials = report.partial_sums();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for lvl in &report.levels {
        let rho_l = if lvl.level < 2 {
            hierarchy.subsampling[lvl.level]
        } else {
            0
        };
        rows.push(vec![
            lvl.level.to_string(),
            format!("{:.3}", lvl.mean_eval_ms / 1e3),
            rho_l.to_string(),
            format!(
                "({:.1}, {:.1})",
                lvl.var_correction[0], lvl.var_correction[1]
            ),
            format!(
                "({:.2}, {:.2})",
                lvl.mean_correction[0], lvl.mean_correction[1]
            ),
            format!(
                "({:.2}, {:.2})",
                partials[lvl.level][0], partials[lvl.level][1]
            ),
            format!("{:.2}", lvl.acceptance_rate),
            lvl.evaluations.to_string(),
        ]);
        csv_rows.push(vec![
            lvl.level as f64,
            lvl.mean_eval_ms / 1e3,
            rho_l as f64,
            lvl.var_correction[0],
            lvl.var_correction[1],
            lvl.mean_correction[0],
            lvl.mean_correction[1],
            partials[lvl.level][0],
            partials[lvl.level][1],
            lvl.acceptance_rate,
            lvl.evaluations as f64,
        ]);
    }
    let table = render_table(
        &[
            "level",
            "t_l[s]",
            "rho_l",
            "V[Y_l]",
            "E[Y_l]",
            "partial sum",
            "accept",
            "evals",
        ],
        &rows,
    );
    println!("{table}");
    let est = report.expectation();
    println!(
        "telescoping source-location estimate: ({:.2}, {:.2}) km from the reference (truth: (0, 0))",
        est[0], est[1]
    );
    write_output(
        &args.out_dir,
        "table4_tsunami_multilevel.csv",
        &to_csv(
            "level,t_s,rho,var_x,var_y,mean_x,mean_y,partial_x,partial_y,acceptance,evaluations",
            &csv_rows,
        ),
    );

    // ---- Fig. 13: accepted samples per level + running expectation ----
    let mut fig13 = Vec::new();
    for lvl in &report.levels {
        for s in &lvl.theta_samples {
            fig13.push(vec![lvl.level as f64, s[0], s[1]]);
        }
    }
    write_output(
        &args.out_dir,
        "fig13_tsunami_samples.csv",
        &to_csv("level,theta_x,theta_y", &fig13),
    );

    // ---- Fig. 14: coarse-to-fine correction arrows ----
    let mut fig14 = Vec::new();
    for lvl in &report.levels[1..] {
        for (coarse, fine) in &lvl.correction_pairs {
            fig14.push(vec![
                lvl.level as f64,
                coarse[0],
                coarse[1],
                fine[0],
                fine[1],
            ]);
        }
    }
    write_output(
        &args.out_dir,
        "fig14_level_corrections.csv",
        &to_csv("level,coarse_x,coarse_y,fine_x,fine_y", &fig14),
    );
}
