//! **Table 3** (and **Figs. 2/10**): multilevel properties of the Poisson
//! application — per level: mesh width `h_l`, DOFs, cost `t_l`,
//! subsampling rate `ρ_l`, IACT `τ_l` and the correction variance
//! `V[Q_0]` / `V[Q_l - Q_{l-1}]` for a representative QOI component —
//! plus the recovered field vs. the synthetic truth (Fig. 10).
//!
//! Defaults to a reduced setup (levels 16/64/128, 2000/200/20 samples);
//! `--paper` runs the full 16/64/256 hierarchy with 10⁴/10³/10² samples
//! and the paper's subsampling rates 206/17 (takes on the order of an
//! hour on one machine — the paper used a cluster).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_fem::problem::{constants, PoissonFactory};
use uq_fem::PoissonHierarchy;
use uq_mlmcmc::{run_sequential, MlmcmcConfig};

fn main() {
    let args = ExpArgs::parse();
    let (levels, samples, burn_in, rho) = if args.paper {
        (
            constants::LEVEL_N.to_vec(),
            vec![10_000, 1_000, 100],
            vec![1_000, 100, 20],
            vec![206, 17],
        )
    } else {
        (
            vec![16, 64, 128],
            vec![3_000, 400, 80],
            vec![300, 60, 15],
            vec![20, 5],
        )
    };
    println!(
        "Table 3 — Poisson multilevel properties (m = {})",
        constants::PARAM_DIM
    );
    println!("(paper reference: t_l = 3.35/45.6/932 ms, tau = 137.3/11.2/1.05,");
    println!(" V = 1.501e-1 / 1.121e-3 / 4.165e-5 for a representative component)\n");

    let hierarchy = PoissonHierarchy::new(constants::PARAM_DIM, levels.clone(), args.seed);
    let true_qoi = hierarchy.true_qoi();
    let factory = PoissonFactory::new(hierarchy, rho.clone());
    // representative component: the center of the 33x33 QOI grid
    let rep = 16 * 33 + 16;
    let mut config = MlmcmcConfig::new(samples).with_burn_in(burn_in);
    config.representative_component = rep;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let report = run_sequential(&factory, &config, &mut rng);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for lvl in &report.levels {
        let n = levels[lvl.level];
        let dofs = (n + 1) * (n + 1);
        let rho_l = if lvl.level < rho.len() {
            rho[lvl.level]
        } else {
            0
        };
        rows.push(vec![
            lvl.level.to_string(),
            format!("1/{n}"),
            dofs.to_string(),
            format!("{:.2}", lvl.mean_eval_ms),
            rho_l.to_string(),
            format!("{:.1}", lvl.iact),
            format!("{:.3e}", lvl.var_correction[rep]),
            format!("{:.2}", lvl.acceptance_rate),
            lvl.evaluations.to_string(),
        ]);
        csv_rows.push(vec![
            lvl.level as f64,
            1.0 / n as f64,
            dofs as f64,
            lvl.mean_eval_ms,
            rho_l as f64,
            lvl.iact,
            lvl.var_correction[rep],
            lvl.acceptance_rate,
            lvl.evaluations as f64,
        ]);
    }
    let table = render_table(
        &[
            "level", "h", "DOFs", "t_l[ms]", "rho_l", "tau_l", "V[Y_l]", "accept", "evals",
        ],
        &rows,
    );
    println!("{table}");
    write_output(
        &args.out_dir,
        "table3_poisson_multilevel.csv",
        &to_csv(
            "level,h,dofs,t_ms,rho,iact,var_correction,acceptance,evaluations",
            &csv_rows,
        ),
    );

    // ---- Fig. 10: recovered field vs synthetic truth ----
    let estimate = report.expectation();
    let mut field_rows = Vec::with_capacity(estimate.len());
    let mut err2 = 0.0;
    let mut norm2 = 0.0;
    for (k, (&t, &e)) in true_qoi.iter().zip(&estimate).enumerate() {
        let (i, j) = (k % 33, k / 33);
        field_rows.push(vec![i as f64 / 32.0, j as f64 / 32.0, t, e]);
        err2 += (t - e) * (t - e);
        norm2 += t * t;
    }
    let rel_err = (err2 / norm2).sqrt();
    println!("Fig. 10 — field recovery: relative L2 error {rel_err:.3}");
    println!(
        "(high-frequency detail is not recoverable from m = {} KL modes;",
        constants::PARAM_DIM
    );
    println!(" the paper reports the same qualitative smoothing)");
    write_output(
        &args.out_dir,
        "fig10_field.csv",
        &to_csv("x,y,true_kappa,estimated_kappa", &field_rows),
    );
}
