//! **Ablation: dynamic load balancing on/off** (DESIGN.md §5.2).
//!
//! Replays the Poisson schedule in the DES with deliberately unbalanced
//! initial chain allocations; the load balancer should recover most of
//! the makespan lost to the bad allocation (paper Section 4.3).

use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_parallel::des::{simulate, DesConfig};

const EVAL_TIME: [f64; 3] = [3.35e-3, 45.64e-3, 931.81e-3];
const SUBSAMPLING: [usize; 3] = [206, 17, 0];

fn main() {
    let args = ExpArgs::parse();
    let samples = if args.paper {
        vec![10_000usize, 1_000, 100]
    } else {
        vec![4_000usize, 400, 40]
    };
    println!("Ablation — dynamic load balancing on/off (DES, Poisson costs)\n");
    let allocations: [(&str, [usize; 3]); 3] = [
        ("balanced", [20, 5, 2]),
        ("coarse-heavy", [24, 2, 1]),
        ("fine-heavy", [6, 6, 15]),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, chains) in &allocations {
        let mut makespans = [0.0f64; 2];
        let mut reassigned = [0usize; 2];
        for (k, lb) in [false, true].into_iter().enumerate() {
            let cfg = DesConfig {
                eval_time: EVAL_TIME.to_vec(),
                eval_jitter: 0.25,
                samples_per_level: samples.clone(),
                burn_in: vec![500, 100, 20],
                subsampling: SUBSAMPLING.to_vec(),
                chains_per_level: chains.to_vec(),
                group_size: 1,
                phonebook_service_time: 2e-4,
                collector_service_time: 1e-3,
                load_balancing: lb,
                seed: args.seed,
                ledger: false,
                ledger_pairing_overhead: 0.0,
                spec_hit_rate: 0.0,
                spec_waste: 0.0,
            };
            let r = simulate(&cfg);
            makespans[k] = r.makespan;
            reassigned[k] = r.reassignments;
        }
        let gain = makespans[0] / makespans[1];
        rows.push(vec![
            (*name).to_string(),
            format!("{chains:?}"),
            format!("{:.1}", makespans[0]),
            format!("{:.1}", makespans[1]),
            format!("{:.2}x", gain),
            reassigned[1].to_string(),
        ]);
        csv.push(vec![
            chains[0] as f64,
            chains[1] as f64,
            chains[2] as f64,
            makespans[0],
            makespans[1],
            gain,
            reassigned[1] as f64,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "allocation",
                "chains",
                "fixed[s]",
                "balanced[s]",
                "gain",
                "reassigned"
            ],
            &rows
        )
    );
    write_output(
        &args.out_dir,
        "ablation_load_balancer.csv",
        &to_csv(
            "chains0,chains1,chains2,makespan_fixed,makespan_lb,gain,reassignments",
            &csv,
        ),
    );
}
