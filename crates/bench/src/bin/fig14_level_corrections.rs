//! **Fig. 14**: coarse-sample → fine-sample correction pairs between
//! adjacent levels. Accepted coarse proposals give identical pairs (the
//! figure's dots); rejections give arrows from the coarse proposal to
//! the retained fine state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{to_csv, write_output, ExpArgs};
use uq_mlmcmc::{run_sequential, MlmcmcConfig};
use uq_swe::tohoku::{Resolution, TsunamiHierarchy};

fn main() {
    let args = ExpArgs::parse();
    let (resolution, samples, burn_in) = if args.paper {
        (Resolution::Reduced, vec![800, 450, 240], vec![100, 40, 20])
    } else {
        (
            Resolution::Custom([9, 15, 25]),
            vec![300, 150, 60],
            vec![40, 20, 10],
        )
    };
    println!("Fig. 14 — coarse/fine correction pairs between levels");
    let hierarchy = TsunamiHierarchy::new(resolution);
    let config = MlmcmcConfig::new(samples).with_burn_in(burn_in).recording();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let report = run_sequential(&hierarchy, &config, &mut rng);

    let mut rows = Vec::new();
    for lvl in &report.levels[1..] {
        let mut identical = 0usize;
        for (coarse, fine) in &lvl.correction_pairs {
            if coarse == fine {
                identical += 1;
            }
            rows.push(vec![
                lvl.level as f64,
                coarse[0],
                coarse[1],
                fine[0],
                fine[1],
            ]);
        }
        println!(
            "level {}: {} pairs, {} identical (accepted coarse proposals = Fig. 14's dots)",
            lvl.level,
            lvl.correction_pairs.len(),
            identical
        );
    }
    write_output(
        &args.out_dir,
        "fig14_level_corrections.csv",
        &to_csv("level,coarse_x,coarse_y,fine_x,fine_y", &rows),
    );
}
