//! **Ablation: model-specific hierarchy design** (DESIGN.md §5.3).
//!
//! The paper's level-0 tsunami model uses depth-averaged bathymetry with
//! the order-2 scheme and no limiter. This ablation compares that choice
//! against alternative coarse models at the same grid resolution:
//! first-order FV on the full bathymetry, and order-2 + limiter on the
//! full bathymetry — measuring cost (DOF updates, wall time) and
//! fidelity (observation distance to the finest model).

use std::time::Instant;
use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_swe::bathymetry::{self, Fidelity, DOMAIN};
use uq_swe::gauge::{observation_vector, Gauge};
use uq_swe::solver::{Boundary, Scheme, SweSolver, SweState};
use uq_swe::tohoku::{constants, Resolution, TsunamiModel};
use uq_swe::Grid2d;

/// Run one custom coarse-model variant and return (obs, dof_updates, secs).
fn run_variant(n: usize, fidelity: Fidelity, scheme: Scheme) -> (Vec<f64>, u64, f64) {
    let grid = Grid2d::new(n, n, DOMAIN.0, DOMAIN.1);
    let bathy = bathymetry::tabulate(&grid, fidelity);
    let state = SweState::lake_at_rest(&bathy, 0.0);
    let mut solver = SweSolver::new(grid, bathy, state, scheme, Boundary::Outflow);
    let mut gauges: Vec<Gauge> = constants::BUOYS
        .iter()
        .map(|&(name, x, y)| Gauge::new(name, x, y))
        .collect();
    for g in &mut gauges {
        g.calibrate(&solver);
    }
    let (rx, ry) = constants::UPLIFT_RADII;
    let (sx, sy) = constants::SOURCE_REF;
    solver.displace_surface(|x, y| {
        let dx = (x - sx) / rx;
        let dy = (y - sy) / ry;
        constants::UPLIFT_AMPLITUDE * (-dx * dx - dy * dy).exp()
    });
    let t0 = Instant::now();
    solver.run(constants::T_END, |s| {
        for g in &mut gauges {
            g.record(s);
        }
    });
    (
        observation_vector(&gauges),
        solver.dof_updates(),
        t0.elapsed().as_secs_f64(),
    )
}

fn obs_distance(a: &[f64], b: &[f64]) -> f64 {
    // normalized: heights in meters, times in minutes, weighted like the
    // level-2 likelihood sigmas
    let sigma = constants::SIGMA[2];
    a.iter()
        .zip(b)
        .zip(&sigma)
        .map(|((x, y), s)| ((x - y) / s).powi(2))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    let args = ExpArgs::parse();
    let resolution = if args.paper {
        Resolution::Paper
    } else {
        Resolution::Reduced
    };
    let n0 = resolution.cells(0);
    println!("Ablation — level-0 model design (grid {n0}x{n0})\n");

    // reference: the finest model
    let mut fine = TsunamiModel::new(2, resolution);
    let reference = fine.forward(&[0.0, 0.0]);

    let variants: [(&str, Fidelity, Scheme); 4] = [
        (
            "paper: depth-avg + O2, no limiter",
            Fidelity::DepthAveraged,
            Scheme::SecondOrder { limiter: false },
        ),
        ("full bathy + O1 FV", Fidelity::Full, Scheme::FirstOrder),
        (
            "full bathy + O2 + limiter",
            Fidelity::Full,
            Scheme::SecondOrder { limiter: true },
        ),
        (
            "smoothed bathy + O2 + limiter",
            Fidelity::Smoothed,
            Scheme::SecondOrder { limiter: true },
        ),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, (name, fid, scheme)) in variants.iter().enumerate() {
        let (obs, dofs, secs) = run_variant(n0, *fid, *scheme);
        let dist = obs_distance(&obs, &reference);
        rows.push(vec![
            (*name).to_string(),
            format!("{:.2e}", dofs as f64),
            format!("{:.3}", secs),
            format!("{:.2}", dist),
            format!("{:.3}", obs[0]),
            format!("{:.1}", obs[2]),
        ]);
        csv.push(vec![
            i as f64,
            dofs as f64,
            secs,
            dist,
            obs[0],
            obs[1],
            obs[2],
            obs[3],
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "level-0 variant",
                "DOF updates",
                "time[s]",
                "sigma-dist to L2",
                "hmax1",
                "t1[min]"
            ],
            &rows
        )
    );
    println!(
        "\nthe paper's choice trades some fidelity for a large cost cut and no limiter cells;"
    );
    println!("MLMCMC only needs the coarse level to be *informative*, not accurate.");
    write_output(
        &args.out_dir,
        "ablation_hierarchy.csv",
        &to_csv(
            "variant,dof_updates,secs,sigma_dist,hmax1,hmax2,t1_min,t2_min",
            &csv,
        ),
    );
}
