//! **Fig. 12**: weak scaling and parallel efficiency of the Poisson
//! problem. The 64-rank base computes 10⁴/10³/10² samples; sample counts
//! scale linearly with the rank count from 32 to 1024. Efficiency is
//! `t_ref / t_N · 100%` with `t_ref` the fastest run, exactly as in the
//! paper (which is why the small runs exceed 100%: the fixed bookkeeping
//! ranks are amortized).

use uq_bench::{render_table, write_bench_csv, ExpArgs};
use uq_parallel::des::{distribute_chains, simulate, DesConfig};

const EVAL_TIME: [f64; 3] = [3.35e-3, 45.64e-3, 931.81e-3];
const VARIANCES: [f64; 3] = [1.501e-1, 1.121e-3, 4.165e-5];
const SUBSAMPLING: [usize; 3] = [206, 17, 0];

fn main() {
    let args = ExpArgs::parse();
    let base_ranks = 64usize;
    let base_samples = [10_000usize, 1_000, 100];
    let ranks_list = [32usize, 64, 128, 256, 512, 1024];

    println!("Fig. 12 — weak scaling and parallel efficiency");
    println!("(paper: ~consistent run times up to 512 ranks, drop at 1024 as the");
    println!(" very fast coarse model saturates the communication infrastructure)\n");

    let mut results = Vec::new();
    for &ranks in &ranks_list {
        let scale = ranks as f64 / base_ranks as f64;
        let samples: Vec<usize> = base_samples
            .iter()
            .map(|&n| ((n as f64 * scale).round() as usize).max(1))
            .collect();
        let overhead = 2 + 3;
        let n_chains = ranks - overhead;
        let chains = distribute_chains(n_chains, &VARIANCES, &EVAL_TIME);
        let cfg = DesConfig {
            eval_time: EVAL_TIME.to_vec(),
            eval_jitter: 0.2,
            samples_per_level: samples,
            burn_in: vec![500, 100, 20],
            subsampling: SUBSAMPLING.to_vec(),
            chains_per_level: chains,
            group_size: 1,
            phonebook_service_time: 2e-4,
            collector_service_time: 1e-3,
            load_balancing: true,
            seed: args.seed,
            ledger: false,
            ledger_pairing_overhead: 0.0,
            spec_hit_rate: 0.0,
            spec_waste: 0.0,
        };
        let r = simulate(&cfg);
        results.push((ranks, r));
    }
    let t_ref = results
        .iter()
        .map(|(_, r)| r.makespan)
        .fold(f64::INFINITY, f64::min);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (ranks, r) in &results {
        let eff = t_ref / r.makespan * 100.0;
        rows.push(vec![
            ranks.to_string(),
            format!("{:.1}", r.makespan),
            format!("{:.0}%", eff),
            format!("{:.0}%", 100.0 * r.busy_fraction),
        ]);
        csv.push(vec![*ranks as f64, r.makespan, eff, r.busy_fraction]);
    }
    println!(
        "{}",
        render_table(&["ranks", "time[s]", "efficiency", "busy"], &rows)
    );
    write_bench_csv(
        &args.out_dir,
        "fig12_weak_scaling.csv",
        "ranks,makespan_s,efficiency_pct,busy_fraction",
        &csv,
    );
}
