//! **Table 2**: polynomial order, limiter status, mesh width, number of
//! timesteps and degree-of-freedom updates of the three tsunami models,
//! evaluated at the reference parameters `θ = (0, 0)`.
//!
//! Run with `--paper` for the paper's 25/79/241 grids (level 2 takes
//! ~1 min); defaults to the reduced grids.

use uq_bench::{render_table, to_csv, write_output, ExpArgs};
use uq_swe::tohoku::{Resolution, TsunamiModel};

fn main() {
    let args = ExpArgs::parse();
    let resolution = if args.paper {
        Resolution::Paper
    } else {
        Resolution::Reduced
    };
    println!("Table 2 — tsunami model hierarchy at theta = (0, 0)");
    println!("(paper reference: timesteps 98 / 306 / 932, DOF updates 2.4e5 / 9.4e6 / 2.7e8)\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for level in 0..3 {
        let mut model = TsunamiModel::new(level, resolution);
        let n = resolution.cells(level);
        let obs = model.forward(&[0.0, 0.0]);
        let stats = model.last_stats();
        rows.push(vec![
            level.to_string(),
            "2".to_string(),
            if model.uses_limiter() { "yes" } else { "no" }.to_string(),
            format!("1/{n}"),
            stats.timesteps.to_string(),
            format!("{:.2e}", stats.dof_updates as f64),
            format!("{:.1e}", stats.limited_cells as f64),
            format!("{:.3}", obs[0]),
            format!("{:.2}", obs[2]),
        ]);
        csv_rows.push(vec![
            level as f64,
            n as f64,
            stats.timesteps as f64,
            stats.dof_updates as f64,
            stats.limited_cells as f64,
            obs[0],
            obs[1],
            obs[2],
            obs[3],
        ]);
    }
    let table = render_table(
        &[
            "level",
            "order",
            "limiter",
            "h",
            "#timesteps",
            "DOF updates",
            "limited",
            "hmax@21418",
            "t@21418[min]",
        ],
        &rows,
    );
    println!("{table}");
    write_output(
        &args.out_dir,
        "table2_tsunami_hierarchy.csv",
        &to_csv(
            "level,cells_per_dim,timesteps,dof_updates,limited_cells,hmax1,hmax2,t1_min,t2_min",
            &csv_rows,
        ),
    );
}
