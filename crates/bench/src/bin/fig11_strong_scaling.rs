//! **Fig. 11**: strong scaling of parallel MLMCMC on the Poisson problem.
//!
//! The problem (10⁴/10³/10² samples, Table-3 subsampling) is held fixed
//! while the rank count grows from 32 to 1024. The paper ran this on the
//! BwForCluster; we replay the identical schedule in the discrete-event
//! simulator with the measured per-level evaluation times (DESIGN.md §1),
//! and additionally run the *live* thread-backed scheduler at small rank
//! counts as a cross-check (`--paper` extends the live sweep).

use uq_bench::{render_table, write_bench_csv, ExpArgs};
use uq_parallel::des::{distribute_chains, simulate, DesConfig};
use uq_parallel::{run_parallel, ParallelConfig, Tracer};

/// Paper Table-3 measured evaluation costs (seconds) and variances.
const EVAL_TIME: [f64; 3] = [3.35e-3, 45.64e-3, 931.81e-3];
const VARIANCES: [f64; 3] = [1.501e-1, 1.121e-3, 4.165e-5];
const SUBSAMPLING: [usize; 3] = [206, 17, 0];

fn main() {
    let args = ExpArgs::parse();
    let samples = vec![10_000usize, 1_000, 100];
    let burn_in = vec![500usize, 100, 20];
    let ranks_list = [32usize, 64, 128, 256, 512, 1024];

    println!("Fig. 11 — strong scaling (DES replay of the parallel schedule)");
    println!("(paper: near-linear speedup until few-samples-per-chain saturation)\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut t32 = None;
    for &ranks in &ranks_list {
        let overhead = 2 + 3; // root + phonebook + 3 collectors
        let n_chains = ranks - overhead;
        let chains = distribute_chains(n_chains, &VARIANCES, &EVAL_TIME);
        let cfg = DesConfig {
            eval_time: EVAL_TIME.to_vec(),
            eval_jitter: 0.2,
            samples_per_level: samples.clone(),
            burn_in: burn_in.clone(),
            subsampling: SUBSAMPLING.to_vec(),
            chains_per_level: chains.clone(),
            group_size: 1,
            phonebook_service_time: 2e-4,
            collector_service_time: 1e-3,
            load_balancing: true,
            seed: args.seed,
            ledger: false,
            ledger_pairing_overhead: 0.0,
            spec_hit_rate: 0.0,
            spec_waste: 0.0,
        };
        let r = simulate(&cfg);
        let base = *t32.get_or_insert(r.makespan * ranks_list[0] as f64);
        let speedup = base / r.makespan / ranks_list[0] as f64;
        let ideal = ranks as f64 / ranks_list[0] as f64;
        rows.push(vec![
            ranks.to_string(),
            format!("{:?}", chains),
            format!("{:.1}", r.makespan),
            format!("{:.2}", speedup),
            format!("{:.2}", ideal),
            format!("{:.0}%", 100.0 * r.busy_fraction),
            r.reassignments.to_string(),
        ]);
        csv.push(vec![
            ranks as f64,
            r.makespan,
            speedup,
            ideal,
            r.busy_fraction,
            r.reassignments as f64,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ranks",
                "chains/level",
                "time[s]",
                "speedup",
                "ideal",
                "busy",
                "reassigned"
            ],
            &rows
        )
    );
    write_bench_csv(
        &args.out_dir,
        "fig11_strong_scaling.csv",
        "ranks,makespan_s,speedup,ideal_speedup,busy_fraction,reassignments",
        &csv,
    );

    // ---- live cross-check with the thread-backed scheduler ----
    // (an analytically cheap Gaussian hierarchy exercises the real
    // message-passing path; rank counts bounded by physical cores)
    println!("live scheduler cross-check (thread-backed, Gaussian hierarchy):");
    let live_samples = if args.paper {
        vec![60_000usize, 6_000, 600]
    } else {
        vec![20_000usize, 2_000, 200]
    };
    let mut live_rows = Vec::new();
    let mut live_csv = Vec::new();
    let mut base: Option<f64> = None;
    for chains in [[1usize, 1, 1], [2, 2, 2], [4, 3, 3], [8, 4, 4]] {
        let h = GaussianHierarchy;
        let mut config = ParallelConfig::new(live_samples.clone(), chains.to_vec());
        config.burn_in = vec![200, 100, 50];
        config.seed = args.seed;
        let report = run_parallel(&h, &config, &Tracer::disabled());
        let b = *base.get_or_insert(report.elapsed);
        live_rows.push(vec![
            report.n_ranks.to_string(),
            format!("{:.2}", report.elapsed),
            format!("{:.2}", b / report.elapsed),
            format!("{:.3}", report.expectation()[0]),
        ]);
        live_csv.push(vec![
            report.n_ranks as f64,
            report.elapsed,
            b / report.elapsed,
            report.expectation()[0],
        ]);
    }
    println!(
        "{}",
        render_table(&["ranks", "time[s]", "speedup", "estimate"], &live_rows)
    );
    write_bench_csv(
        &args.out_dir,
        "fig11_live_scaling.csv",
        "ranks,elapsed_s,speedup,estimate",
        &live_csv,
    );
}

/// Cheap three-level Gaussian hierarchy for the live sweep.
struct GaussianHierarchy;

impl uq_mlmcmc::LevelFactory for GaussianHierarchy {
    fn n_levels(&self) -> usize {
        3
    }
    fn problem(&self, level: usize) -> Box<dyn uq_mcmc::SamplingProblem> {
        let mean = [0.6, 0.9, 1.0][level];
        let sd = [0.65, 0.55, 0.5][level];
        Box::new(uq_mcmc::problem::GaussianTarget::new(vec![mean], sd))
    }
    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        Box::new(uq_mcmc::GaussianRandomWalk::new(0.8))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [5, 3, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}
