//! Machine-readable performance baseline for the forward-solve pipeline.
//!
//! Emits `BENCH_PR2.json` with per-kernel ns/op and per-level CG
//! iteration counts so later PRs have a perf trajectory to regress
//! against. Run with `cargo run --release -p uq-bench --bin
//! perf_baseline [output-path]`; the default output is
//! `results/BENCH_PR2.json`.
//!
//! Measured kernels (n = elements per direction):
//! * `assemble_coo_n{16,64}` — legacy per-solve COO assembly + sort;
//! * `refill_n{16,64}` — in-place scatter-map refill (values + rhs);
//! * `ssor_apply_n64` / `vcycle_n64` — one preconditioner application;
//! * `cg_ssor_n*` / `cg_mg_n*` — full cold-start solves at `rel_tol
//!   1e-8`, with iteration counts recorded per mesh level;
//! * `forward_legacy_n*` / `forward_n*` — the Poisson forward map
//!   through the old (assemble + allocating CG + SSOR) and new
//!   (refill + workspace CG + MG) pipelines, driven by a correlated
//!   θ chain so warm starts help as in MCMC but every timed iteration
//!   performs a genuine solve.

use std::fmt::Write as _;
use std::time::Instant;
use uq_bench::pipeline_bench::{
    bench_hierarchy as hierarchy, bench_kappa, theta_chain, LegacyForward,
};
use uq_fem::assembly::assemble;
use uq_fem::{PoissonModel, StiffnessOperator, StructuredGrid};
use uq_linalg::solvers::{cg, Preconditioner, SolverOptions, SsorPrecond};
use uq_randfield::KlField2d;

/// Median wall-clock ns of `f` over enough repetitions to be stable.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // warm up and calibrate the per-call cost
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    // target ~20 ms per sample, 9 samples, median
    let per_sample = (20_000_000 / once).clamp(1, 100_000) as usize;
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            t.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_PR2.json".to_string());
    let opts = SolverOptions {
        rel_tol: 1e-8,
        ..Default::default()
    };
    let mut kernels: Vec<(String, f64)> = Vec::new();
    let mut cg_iters: Vec<(&'static str, usize, usize)> = Vec::new();

    eprintln!("perf_baseline: assembly + preconditioner kernels");
    for n in [16usize, 64] {
        let grid = StructuredGrid::new(n);
        let kappa = bench_kappa(&grid);
        kernels.push((
            format!("assemble_coo_n{n}_ns"),
            time_ns(|| {
                std::hint::black_box(assemble(&grid, &kappa));
            }),
        ));
        let mut op = StiffnessOperator::new(&grid);
        kernels.push((
            format!("refill_n{n}_ns"),
            time_ns(|| {
                op.refill(std::hint::black_box(&kappa));
            }),
        ));
    }
    {
        let n = 64;
        let grid = StructuredGrid::new(n);
        let sys = assemble(&grid, &bench_kappa(&grid));
        let nodes = grid.n_nodes();
        let r: Vec<f64> = (0..nodes).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut z = vec![0.0; nodes];
        let pre = SsorPrecond::new(&sys.matrix, 1.0);
        kernels.push((
            "ssor_apply_n64_ns".into(),
            time_ns(|| pre.apply_into(std::hint::black_box(&r), &mut z)),
        ));
        let h = hierarchy(n);
        kernels.push((
            "vcycle_n64_ns".into(),
            time_ns(|| h.vcycle_into(std::hint::black_box(&r), &mut z)),
        ));
    }

    eprintln!("perf_baseline: cold-start CG solves (per-level iteration counts)");
    for n in [16usize, 32, 64] {
        let grid = StructuredGrid::new(n);
        let sys = assemble(&grid, &bench_kappa(&grid));
        let pre = SsorPrecond::new(&sys.matrix, 1.0);
        let ssor = cg(&sys.matrix, &sys.rhs, None, &pre, opts);
        assert!(ssor.converged, "SSOR-CG stalled at n = {n}");
        let h = hierarchy(n);
        let mg = cg(h.matrix(0), &sys.rhs, None, &h, opts);
        assert!(mg.converged, "MG-CG stalled at n = {n}");
        cg_iters.push(("ssor", n, ssor.iterations));
        cg_iters.push(("mg", n, mg.iterations));
        if n != 32 {
            let pre = SsorPrecond::new(&sys.matrix, 1.0);
            kernels.push((
                format!("cg_ssor_n{n}_ns"),
                time_ns(|| {
                    let r = cg(&sys.matrix, &sys.rhs, None, &pre, opts);
                    std::hint::black_box(r.iterations);
                }),
            ));
            kernels.push((
                format!("cg_mg_n{n}_ns"),
                time_ns(|| {
                    let r = cg(h.matrix(0), &sys.rhs, None, &h, opts);
                    std::hint::black_box(r.iterations);
                }),
            ));
        }
    }

    eprintln!("perf_baseline: Poisson forward map (legacy vs pipeline)");
    let field = KlField2d::new(0.15, 1.0, 113);
    let thetas = theta_chain(1, 113, 16);
    let mut forwards: Vec<(usize, f64, f64)> = Vec::new();
    for n in [16usize, 64] {
        let mut model = PoissonModel::new(n, &field);
        let mut k = 0usize;
        let new_ns = time_ns(|| {
            let theta = &thetas[k % thetas.len()];
            k += 1;
            std::hint::black_box(model.forward(theta));
        });
        let mut legacy = LegacyForward::new(&model);
        let mut k = 0usize;
        let legacy_ns = time_ns(|| {
            let theta = &thetas[k % thetas.len()];
            k += 1;
            std::hint::black_box(legacy.step(&model, theta));
        });
        kernels.push((format!("forward_n{n}_ns"), new_ns));
        kernels.push((format!("forward_legacy_n{n}_ns"), legacy_ns));
        forwards.push((n, legacy_ns, new_ns));
    }

    // hand-rolled JSON (no serde in the offline environment)
    let mut json = String::from("{\n  \"pr\": 2,\n  \"kernels\": {\n");
    for (i, (name, ns)) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        writeln!(json, "    \"{name}\": {ns:.1}{comma}").unwrap();
    }
    json.push_str("  },\n  \"cg_iterations\": {\n");
    for (pi, precond) in ["ssor", "mg"].iter().enumerate() {
        writeln!(json, "    \"{precond}\": {{").unwrap();
        let rows: Vec<&(&str, usize, usize)> =
            cg_iters.iter().filter(|(p, _, _)| p == precond).collect();
        for (i, (_, n, iters)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            writeln!(json, "      \"n{n}\": {iters}{comma}").unwrap();
        }
        let comma = if pi == 1 { "" } else { "," };
        writeln!(json, "    }}{comma}").unwrap();
    }
    json.push_str("  },\n  \"forward\": {\n");
    for (i, (n, legacy_ns, new_ns)) in forwards.iter().enumerate() {
        let comma = if i + 1 == forwards.len() { "" } else { "," };
        writeln!(
            json,
            "    \"n{n}\": {{ \"legacy_ns\": {legacy_ns:.1}, \"new_ns\": {new_ns:.1}, \
             \"speedup\": {:.2} }}{comma}",
            legacy_ns / new_ns
        )
        .unwrap();
    }
    json.push_str("  }\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("perf_baseline: wrote {out_path}");

    let n64 = forwards.iter().find(|(n, _, _)| *n == 64).unwrap();
    let speedup = n64.1 / n64.2;
    eprintln!("perf_baseline: n = 64 forward speedup {speedup:.2}x (target ≥ 3x)");
}
