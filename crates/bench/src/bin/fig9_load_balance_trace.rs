//! **Fig. 9**: dynamic load balancing trace. Runs a small parallel
//! MLMCMC with strongly heterogeneous (and artificially slowed)
//! per-level model costs on the live thread-backed scheduler, recording
//! per-rank activity spans: model evaluations (the figure's green
//! boxes), burn-in phases (yellow) and reassignment markers.

use std::time::Duration;
use uq_bench::{write_output, ExpArgs};
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_parallel::{run_parallel, ParallelConfig, Tracer};

/// Gaussian target with an artificial per-evaluation delay mimicking a
/// PDE solve whose run time varies strongly between samples (the paper's
/// time-step count depends on the uncertain parameters).
struct SlowTarget {
    mean: f64,
    sd: f64,
    base_delay: Duration,
}

impl uq_mcmc::SamplingProblem for SlowTarget {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        // parameter-dependent run time: up to 2x the base cost
        let jitter = 1.0 + theta[0].abs().min(1.0);
        std::thread::sleep(self.base_delay.mul_f64(jitter));
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

struct SlowHierarchy;

impl uq_mlmcmc::LevelFactory for SlowHierarchy {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn uq_mcmc::SamplingProblem> {
        Box::new(SlowTarget {
            mean: [0.5, 1.0][level],
            sd: [0.6, 0.5][level],
            base_delay: Duration::from_micros([300, 3_000][level]),
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        Box::new(uq_mcmc::GaussianRandomWalk::new(0.8))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [4, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

fn main() {
    let args = ExpArgs::parse();
    let samples = if args.paper {
        vec![3_000usize, 400]
    } else {
        vec![800usize, 120]
    };
    println!("Fig. 9 — dynamic load balancing trace (live scheduler)");
    let mut config = ParallelConfig::new(samples, vec![3, 2]);
    config.burn_in = vec![60, 25];
    config.seed = args.seed;
    let tracer = Tracer::new();
    let report = run_parallel(&SlowHierarchy, &config, &tracer);
    println!(
        "run finished in {:.2}s on {} ranks, {} reassignments, estimate {:.3}",
        report.elapsed,
        report.n_ranks,
        report.reassignments,
        report.expectation()[0]
    );
    let events = tracer.events();
    let evals = events
        .iter()
        .filter(|e| matches!(e.kind, uq_parallel::SpanKind::Eval { .. }))
        .count();
    let burnins = events
        .iter()
        .filter(|e| matches!(e.kind, uq_parallel::SpanKind::Burnin { .. }))
        .count();
    println!("trace: {evals} evaluation spans, {burnins} burn-in spans");
    write_output(&args.out_dir, "fig9_trace.csv", &tracer.to_csv());
}
