//! **Fig. 9**: dynamic load balancing trace. Runs a small parallel
//! MLMCMC with strongly heterogeneous (and artificially slowed)
//! per-level model costs on **both** parallel backends — the
//! thread-backed scheduler and the cooperative virtual-rank runtime —
//! recording per-rank activity spans: model evaluations (the figure's
//! green boxes), burn-in phases (yellow), ledger serves and
//! reassignment markers. Both runs share one [`Epoch`], so the
//! exported Chrome trace (`fig9_trace.json`, Perfetto /
//! `chrome://tracing` loadable) shows them on a single timeline next
//! to the per-backend CSVs.

use std::time::Duration;
use uq_bench::{write_output, ExpArgs};
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_parallel::{
    chrome_trace, run_parallel, run_runtime, Epoch, ParallelConfig, RuntimeConfig, SpanKind, Tracer,
};

/// Gaussian target with an artificial per-evaluation delay mimicking a
/// PDE solve whose run time varies strongly between samples (the paper's
/// time-step count depends on the uncertain parameters).
struct SlowTarget {
    mean: f64,
    sd: f64,
    base_delay: Duration,
}

impl uq_mcmc::SamplingProblem for SlowTarget {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        // parameter-dependent run time: up to 2x the base cost
        let jitter = 1.0 + theta[0].abs().min(1.0);
        std::thread::sleep(self.base_delay.mul_f64(jitter));
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

struct SlowHierarchy;

impl uq_mlmcmc::LevelFactory for SlowHierarchy {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn uq_mcmc::SamplingProblem> {
        Box::new(SlowTarget {
            mean: [0.5, 1.0][level],
            sd: [0.6, 0.5][level],
            base_delay: Duration::from_micros([300, 3_000][level]),
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn uq_mcmc::Proposal> {
        Box::new(uq_mcmc::GaussianRandomWalk::new(0.8))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [4, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

fn span_counts(tracer: &Tracer) -> (usize, usize, usize) {
    let events = tracer.events();
    let evals = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Eval { .. }))
        .count();
    let burnins = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Burnin { .. }))
        .count();
    let serves = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Serve { .. } | SpanKind::Speculate { .. }))
        .count();
    (evals, burnins, serves)
}

fn main() {
    let args = ExpArgs::parse();
    let samples = if args.paper {
        vec![3_000usize, 400]
    } else {
        vec![800usize, 120]
    };
    let chains = vec![3usize, 2];
    let burn_in = vec![60usize, 25];
    let epoch = Epoch::now();

    println!("Fig. 9 — dynamic load balancing trace (live scheduler)");
    let mut config = ParallelConfig::new(samples.clone(), chains.clone());
    config.burn_in = burn_in.clone();
    config.seed = args.seed;
    let tracer = Tracer::with_epoch(epoch);
    let report = run_parallel(&SlowHierarchy, &config, &tracer);
    println!(
        "run finished in {:.2}s on {} ranks, {} reassignments, estimate {:.3}",
        report.elapsed,
        report.n_ranks,
        report.reassignments,
        report.expectation()[0]
    );
    let (evals, burnins, serves) = span_counts(&tracer);
    println!("trace: {evals} evaluation spans, {burnins} burn-in spans, {serves} serve spans");
    write_output(&args.out_dir, "fig9_trace.csv", &tracer.to_csv());

    // the same study on the cooperative runtime: virtual ranks
    // multiplexed over a small worker pool, serves through the rewind
    // ledger — the second Gantt panel of the exported Chrome trace
    println!("\nFig. 9 — the same trace on the cooperative runtime");
    let mut rt_cfg = RuntimeConfig::new(samples, chains);
    rt_cfg.base.burn_in = burn_in;
    rt_cfg.base.seed = args.seed;
    rt_cfg.n_workers = 4;
    let rt_tracer = Tracer::with_epoch(epoch);
    let rt = run_runtime(&SlowHierarchy, &rt_cfg, &rt_tracer);
    println!(
        "run finished in {:.2}s on {} virtual ranks ({} workers), {} reassignments, \
         {} steals, estimate {:.3}",
        rt.report.elapsed,
        rt.report.n_ranks,
        rt_cfg.n_workers,
        rt.report.reassignments,
        rt.runtime.steals,
        rt.report.expectation()[0]
    );
    let (evals, burnins, serves) = span_counts(&rt_tracer);
    println!("trace: {evals} evaluation spans, {burnins} burn-in spans, {serves} serve spans");
    write_output(&args.out_dir, "fig9_trace_runtime.csv", &rt_tracer.to_csv());

    let trace = chrome_trace(&[
        ("thread-scheduler", &tracer),
        ("cooperative-runtime", &rt_tracer),
    ]);
    write_output(&args.out_dir, "fig9_trace.json", &trace);
}
