//! **`scaling_live`** — paper-scale rank counts, measured live.
//!
//! PR 3's cooperative runtime multiplexes virtual ranks over a small
//! worker pool, so the scaling study that previously existed only as a
//! discrete-event *simulation* (`fig11_strong_scaling`) can now be
//! **measured**. This experiment:
//!
//! 1. **Validates by construction** that the runtime executes the same
//!    scheduling policy as the thread scheduler: identical seeds, same
//!    configuration, per-level estimates compared — exact across repeated
//!    single-worker runs (deterministic routing), tolerance-checked
//!    against the thread scheduler (whose interleaving is OS-dependent).
//! 2. **Sweeps rank counts** 64 → 1024 on ≤ 8 worker threads against a
//!    synthetic-cost Gaussian hierarchy (a busy-spin makes each model
//!    evaluation ≈ µs-scale so the run is model-bound like the paper's,
//!    not harness-bound) and records the live ranks-vs-throughput curve
//!    plus phonebook routing-batch statistics.
//! 3. **Cross-checks the DES**: the simulator is fed single-threadedly
//!    *calibrated* per-level evaluation times (in-run means are inflated
//!    by preemption when workers exceed cores) and its predictions are
//!    compared against the live run three ways — per-level evaluation
//!    counts (the schedule), wall-clock against
//!    `max(makespan, busy-time / cores)` (this machine's compute
//!    budget), and flatness of the live/pred ratio across rank counts
//!    (virtualization overhead must not grow with virtual ranks).
//!
//! Writes `results/BENCH_PR3.json` (the PR's perf artifact, uploaded by
//! CI) and `results/scaling_live.csv`.
//!
//! Since PR 4 the runtime serves coarse proposals through the
//! per-requester rewind ledger (a serve costs the server `ρ·(1 +
//! diverged)` dedicated steps; the DES replays that schedule via its
//! `ledger` mode, fed the live run's measured diverged fraction) and the
//! worker pool steals work from hot workers — both visible in the
//! reported `serves`/`diverged`/`steals` columns. **`--model swe`** runs
//! the sweep against the real `uq-swe` Tohoku hierarchy instead of the
//! synthetic-cost Gaussian and writes `results/BENCH_PR4.json`.
//!
//! Since PR 5 the phonebooks dispatch **speculative accept-case serves**
//! to idle servers and answer matching requests from the stored
//! precomputation (bit-identical to the serve it replaces, pinned by
//! `tests/speculation_conformance.rs`), with the `LedgerUpdate`
//! write-back folded into the single `ServeDone` reply. The sweep runs
//! on one reused worker pool, feeds the measured hit/waste rates into
//! the DES cost model, asserts the overhead against the non-speculative
//! PR-4 baseline stays at or below that PR's 1.21–1.32 band, and writes
//! `results/BENCH_PR5.json`.
//!
//! Since PR 6 the binary doubles as the **durable-runs** entry point:
//! every artifact is also registered in the content-addressed run store
//! (`results/store/`, see DESIGN.md §7), and the deterministic
//! single-worker checkpoint study runs at the end of the sweep — or
//! standalone via `--checkpoint-every N` / `--crash-at k` / `--resume`,
//! the crash-injection path exercised by
//! `tests/checkpoint_equivalence.rs`. Writes `results/BENCH_PR6.json`.
//!
//! Since PR 8 the run is **observed**: the validation thread-scheduler
//! run and the whole runtime sweep record spans/counters/histograms
//! through `uq_parallel::obs` (sharing one [`Epoch`], so the two
//! backends land on one timeline). The first sweep point closes the
//! loop against the DES — measured per-level busy shares and per-rank
//! utilization against `DesResult::busy_per_level` / busy totals, and
//! controller-side serve counts against phonebook-side write-backs.
//! **`--trace-out F`** writes a Chrome trace-event JSON (Perfetto /
//! `chrome://tracing` loadable) covering both parallel backends,
//! **`--metrics-out F`** a `MetricsSnapshot` JSON (both registered in
//! the run-store manifest), and **`--progress`** prints a live progress
//! line during the sweep. Tracing is observation-only: bit-parity with
//! tracing off is pinned by `tests/obs_conformance.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uq_bench::{render_table, write_bench, write_bench_csv, BenchJson, ExpArgs};
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::store::fnv1a;
use uq_mlmcmc::LevelFactory;
use uq_parallel::des::{simulate, DesConfig};
use uq_parallel::roles::RuntimeReport;
use uq_parallel::{
    chrome_trace, levels_digest, run_net_worker, run_parallel, run_runtime, run_runtime_ckpt,
    run_runtime_on, Counter, Epoch, MetricsSnapshot, NetDriver, NetDriverOptions, NetWorkerOptions,
    ParallelCheckpoint, ParallelConfig, Runtime, RuntimeConfig, Tracer,
};

/// Gaussian level target with a deterministic busy-spin so one model
/// evaluation costs a controllable ~µs amount (the DES cross-check needs
/// runs that are model-bound, as the paper's are).
struct SpinTarget {
    mean: f64,
    sd: f64,
    spin: u32,
}

impl SamplingProblem for SpinTarget {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        let mut x = 0.3f64;
        for _ in 0..self.spin {
            x = (x + 1.1).sin();
        }
        std::hint::black_box(x);
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

/// Three-level Gaussian hierarchy with per-evaluation synthetic cost
/// `spin[level]` (coarser levels cheaper, like a real mesh hierarchy).
struct SpinHierarchy {
    spin: [u32; 3],
}

const MEANS: [f64; 3] = [0.6, 0.9, 1.0];
const SDS: [f64; 3] = [0.65, 0.55, 0.5];
const RHO: [usize; 3] = [5, 3, 0];

impl LevelFactory for SpinHierarchy {
    fn n_levels(&self) -> usize {
        3
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(SpinTarget {
            mean: MEANS[level],
            sd: SDS[level],
            spin: self.spin[level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.8))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        RHO[level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// Two-level Gaussian hierarchy for the durable-runs study: with two
/// levels the serving chains are base chains (no nested coarse
/// requests), the regime where checkpointing is provably transparent —
/// see DESIGN.md §7.
struct CkptHierarchy;

impl LevelFactory for CkptHierarchy {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(SpinTarget {
            mean: [0.5, 1.0][level],
            sd: [0.6, 0.5][level],
            spin: 0,
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.8))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [3, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// Allocate `n_chains` over levels proportionally to their step demand
/// (own samples + the serving stride feeding the next level up).
fn allocate_chains(n_chains: usize, samples: &[usize], rho: &[usize]) -> Vec<usize> {
    let n_levels = samples.len();
    assert!(n_chains >= n_levels);
    let weights: Vec<f64> = (0..n_levels)
        .map(|l| {
            let own = samples[l] as f64;
            let serving = if l + 1 < n_levels {
                (rho[l].max(1) * samples[l + 1]) as f64
            } else {
                0.0
            };
            own + serving
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut out = vec![1usize; n_levels];
    let spare = n_chains - n_levels;
    let mut assigned = 0usize;
    let mut fracs: Vec<(f64, usize)> = Vec::new();
    for (l, w) in weights.iter().enumerate() {
        let share = w / total * spare as f64;
        let whole = share.floor() as usize;
        out[l] += whole;
        assigned += whole;
        fracs.push((share - whole as f64, l));
    }
    // largest-remainder top-up to hit the budget exactly
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for &(_, l) in fracs.iter().take(spare - assigned) {
        out[l] += 1;
    }
    debug_assert_eq!(out.iter().sum::<usize>(), n_chains);
    out
}

struct SweepPoint {
    ranks: usize,
    chains: Vec<usize>,
    elapsed: f64,
    throughput: f64,
    /// DES-predicted makespan on unbounded parallel hardware (one
    /// processor per rank — the paper's cluster setting).
    des_makespan: f64,
    /// DES-predicted total evaluation work (busy time summed over
    /// chains); on `c` effective cores the live run cannot beat
    /// `busy / c`.
    des_busy: f64,
    /// `max(des_makespan, des_busy / effective_cores)`: the DES's
    /// prediction of this machine's wall-clock.
    pred_elapsed: f64,
    evals: Vec<usize>,
    des_evals: Vec<usize>,
    mean_batch: f64,
    max_batch: usize,
    polls: usize,
    wakeups: usize,
    dropped_sends: usize,
    reassignments: usize,
    /// Rewind-ledger serves committed (real serves + speculative hits).
    ledger_serves: usize,
    /// Fraction of serves that ran the separate pairing leg.
    diverged_frac: f64,
    /// Runnable ranks stolen by idle workers.
    steals: usize,
    /// Speculative serves dispatched to idle servers (PR 5).
    spec_launched: usize,
    /// Serves answered from a stored speculation.
    spec_hits: usize,
    /// Speculations discarded (anchor mismatch / stale).
    spec_misses: usize,
    /// `spec_hits / serves` — fed back into the DES cost model.
    hit_rate: f64,
    /// DES prediction replaying the **non-speculative** PR-4 schedule
    /// (hit rate and waste forced to zero): the baseline the PR-4
    /// overhead band was measured against.
    pred_nospec_elapsed: f64,
    /// DES virtual-time busy seconds split per level — the prediction
    /// the live tracer's per-level activity is checked against (PR 8).
    des_busy_per_level: Vec<f64>,
}

/// Single-threaded calibration of one level's evaluation cost (seconds).
/// The in-run `EvalCounter` means cannot be used for the DES input: with
/// more worker threads than cores they are inflated by preemption.
/// Adaptive repetition count so expensive models (the SWE hierarchy)
/// calibrate in bounded time.
fn calibrate_eval_secs(h: &dyn LevelFactory, level: usize, theta_dim: usize) -> f64 {
    let mut p = h.problem(level);
    let budget = 0.4f64;
    let t = Instant::now();
    let mut reps = 0u32;
    while reps < 2000 && (reps < 8 || t.elapsed().as_secs_f64() < budget) {
        let theta = vec![f64::from(reps) * 1e-4; theta_dim];
        std::hint::black_box(p.log_density(&theta));
        reps += 1;
    }
    (t.elapsed().as_secs_f64() / f64::from(reps)).max(1e-9)
}

#[allow(clippy::too_many_arguments)]
fn run_sweep_point(
    pool: &Runtime,
    h: &dyn LevelFactory,
    rho: &[usize],
    eval_time: &[f64],
    ranks: usize,
    effective_cores: usize,
    shards: usize,
    samples: &[usize],
    burn_in: &[usize],
    seed: u64,
    tracer: &Tracer,
) -> (RuntimeReport, SweepPoint) {
    let overhead = 2 + samples.len() * shards;
    let chains = allocate_chains(ranks - overhead, samples, rho);
    let mut config = RuntimeConfig::new(samples.to_vec(), chains.clone());
    config.base.burn_in = burn_in.to_vec();
    config.base.seed = seed;
    config.n_workers = pool.n_workers();
    config.collector_shards = shards;
    assert_eq!(config.n_ranks(), ranks, "rank budget mismatch");
    // the whole sweep reuses one worker pool; per-point runtime stats
    // must describe that point alone (pinned by the uq-parallel
    // reused-pool regression test)
    let r = run_runtime_on(pool, h, &config, tracer);
    // DES replay of the identical schedule, driven by the calibrated
    // per-level evaluation times and the live run's measured ledger
    // divergence (each diverged serve costs the server a second ρ-leg)
    // plus its measured speculation hit/waste rates
    let des_config = DesConfig {
        eval_time: eval_time.to_vec(),
        eval_jitter: 0.0,
        samples_per_level: samples.to_vec(),
        burn_in: burn_in.to_vec(),
        subsampling: rho.to_vec(),
        chains_per_level: chains.clone(),
        group_size: 1,
        phonebook_service_time: 0.0,
        collector_service_time: 0.0,
        load_balancing: true,
        seed,
        ledger: true,
        ledger_pairing_overhead: r.phonebook.ledger.diverged_fraction(),
        spec_hit_rate: r.phonebook.ledger.hit_rate(),
        spec_waste: r.phonebook.ledger.waste_per_serve(),
    };
    let des = simulate(&des_config);
    // the same schedule WITHOUT speculation: the PR-4 baseline the
    // historical 1.21–1.32 overhead band was measured against
    let des_nospec = simulate(&DesConfig {
        spec_hit_rate: 0.0,
        spec_waste: 0.0,
        ..des_config
    });
    let n_chains: usize = chains.iter().sum();
    let des_busy = des.busy_fraction * des.makespan * n_chains as f64;
    let nospec_busy = des_nospec.busy_fraction * des_nospec.makespan * n_chains as f64;
    let total_samples: usize = samples.iter().sum();
    let ledger = r.phonebook.ledger;
    let point = SweepPoint {
        ranks,
        chains,
        elapsed: r.report.elapsed,
        throughput: total_samples as f64 / r.report.elapsed,
        des_makespan: des.makespan,
        des_busy,
        pred_elapsed: des.makespan.max(des_busy / effective_cores as f64),
        pred_nospec_elapsed: des_nospec
            .makespan
            .max(nospec_busy / effective_cores as f64),
        evals: r.report.levels.iter().map(|l| l.evaluations).collect(),
        des_evals: des.evals_per_level.clone(),
        mean_batch: r.phonebook.mean_batch(),
        max_batch: r.phonebook.max_batch,
        polls: r.runtime.polls,
        wakeups: r.runtime.wakeups,
        dropped_sends: r.runtime.dropped_sends,
        reassignments: r.report.reassignments,
        ledger_serves: ledger.serves,
        diverged_frac: ledger.diverged_fraction(),
        steals: r.runtime.steals,
        spec_launched: ledger.spec_launched,
        spec_hits: ledger.spec_hits,
        spec_misses: ledger.spec_misses,
        hit_rate: ledger.hit_rate(),
        des_busy_per_level: des.busy_per_level,
    };
    (r, point)
}

/// The `--model swe` study (PR 4): the runtime scaling sweep driven by
/// the real `uq-swe` Tohoku hierarchy instead of the synthetic-cost
/// Gaussian — per-requester ledger serving and work stealing measured
/// against genuinely heterogeneous forward-model costs. Writes
/// `results/BENCH_PR4.json`.
#[allow(clippy::too_many_lines)]
fn swe_study(args: &ExpArgs) {
    use uq_swe::tohoku::{Resolution, TsunamiHierarchy};
    let workers = 8usize;
    let resolution = if args.paper {
        Resolution::Reduced
    } else {
        Resolution::Custom([9, 13, 17])
    };
    let h = TsunamiHierarchy::new(resolution);
    let rho: Vec<usize> = (0..3).map(|l| h.subsampling_rate(l)).collect();
    let samples = if args.paper {
        vec![2_000usize, 400, 60]
    } else {
        vec![240usize, 48, 10]
    };
    let burn_in = vec![20usize, 10, 5];
    let shards = 2usize;
    let ranks_list = if args.paper {
        vec![32usize, 64, 128]
    } else {
        vec![16usize, 32]
    };
    let effective_cores = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(workers);

    println!("scaling_live --model swe — Tohoku hierarchy on the cooperative runtime (PR 4)\n");
    let eval_time: Vec<f64> = (0..3).map(|l| calibrate_eval_secs(&h, l, 2)).collect();
    eprintln!(
        "  calibrated eval cost per level: {:?} ms",
        eval_time
            .iter()
            .map(|s| (s * 1e5).round() / 1e2)
            .collect::<Vec<_>>()
    );
    let pool = Runtime::new(workers);
    let mut points: Vec<(SweepPoint, Vec<f64>)> = Vec::new();
    for &ranks in &ranks_list {
        let t0 = Instant::now();
        let (r, point) = run_sweep_point(
            &pool,
            &h,
            &rho,
            &eval_time,
            ranks,
            effective_cores,
            shards,
            &samples,
            &burn_in,
            args.seed,
            &Tracer::disabled(),
        );
        eprintln!(
            "  ranks {ranks:>4}: {:.2}s live ({:.2}s wall), {} ledger serves \
             ({:.0}% diverged, {:.0}% speculated), {} steals",
            point.elapsed,
            t0.elapsed().as_secs_f64(),
            point.ledger_serves,
            point.diverged_frac * 100.0,
            point.hit_rate * 100.0,
            point.steals
        );
        // the exact per-level targets must be hit and the posterior mean
        // of the source location must stay in the physical domain
        for (level, &n) in samples.iter().enumerate() {
            assert_eq!(r.report.levels[level].n_samples, n, "level {level}");
        }
        let est = r.report.expectation();
        assert!(
            est.iter().all(|e| e.is_finite() && e.abs() < 120_000.0),
            "posterior-mean source location left the domain: {est:?}"
        );
        points.push((point, est));
    }

    let mut rows = Vec::new();
    for (p, est) in &points {
        rows.push(vec![
            p.ranks.to_string(),
            format!("{:?}", p.chains),
            format!("{:.2}", p.elapsed),
            format!("{:.1}", p.throughput),
            format!("{:.2}", p.pred_elapsed),
            format!("{:.2}", p.elapsed / p.pred_elapsed),
            p.ledger_serves.to_string(),
            format!("{:.2}", p.diverged_frac),
            p.steals.to_string(),
            format!("({:.0}, {:.0})", est[0], est[1]),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ranks",
                "chains/level",
                "time[s]",
                "samples/s",
                "DES pred[s]",
                "overhead",
                "serves",
                "diverged",
                "steals",
                "E[source m]"
            ],
            &rows
        )
    );

    let sweep: Vec<String> = points
        .iter()
        .map(|(p, est)| {
            format!(
                "{{ \"ranks\": {}, \"chains\": {:?}, \"elapsed_s\": {:.3}, \
                 \"throughput_samples_per_s\": {:.2}, \"des_pred_elapsed_s\": {:.3}, \
                 \"overhead_ratio\": {:.3}, \"evals_per_level\": {:?}, \
                 \"des_evals_per_level\": {:?}, \"ledger_serves\": {}, \"diverged_frac\": {:.3}, \
                 \"steals\": {}, \"mean_batch\": {:.2}, \"estimate\": [{:.3}, {:.3}] }}",
                p.ranks,
                p.chains,
                p.elapsed,
                p.throughput,
                p.pred_elapsed,
                p.elapsed / p.pred_elapsed,
                p.evals,
                p.des_evals,
                p.ledger_serves,
                p.diverged_frac,
                p.steals,
                p.mean_batch,
                est[0],
                est[1]
            )
        })
        .collect();
    let mut json = BenchJson::new();
    json.field("pr", 4)
        .field_str("model", "swe")
        .field("resolution", format!("{:?}", resolution.cells(2)))
        .field("workers", workers)
        .field("effective_cores", effective_cores)
        .field("collector_shards", shards)
        .field(
            "eval_time_ms",
            format!(
                "{:?}",
                eval_time.iter().map(|s| s * 1e3).collect::<Vec<_>>()
            ),
        )
        .array("sweep", &sweep);
    write_bench(&args.out_dir, "BENCH_PR4.json", &json.finish());
    println!("\nscaling_live --model swe: all checks passed");
}

/// The durable-runs study (PR 6): checkpoint the deterministic
/// single-worker runtime configuration into the content-addressed run
/// store every `--checkpoint-every` recorded top-level corrections
/// (default 12), then prove the run is restartable:
///
/// * default invocation — run checkpointed, rerun uninterrupted, resume
///   from the latest snapshot, and require all three reports
///   bit-identical;
/// * `--crash-at k` — abort the process at the k-th snapshot (the
///   crash-injection harness in `tests/checkpoint_equivalence.rs`
///   drives this, then re-launches with `--resume`);
/// * `--resume` — restart from the latest matching snapshot in the
///   store and still compare against an uninterrupted in-process run.
///
/// Writes `results/BENCH_PR6.json`, a pure function of the final report
/// (estimates and their exact bit patterns, no timing), so a resumed
/// run reproduces the uninterrupted run's artifact byte-for-byte.
fn checkpoint_study(args: &ExpArgs) {
    let every = if args.checkpoint_every > 0 {
        args.checkpoint_every
    } else {
        25
    };
    let h = CkptHierarchy;
    let samples = vec![900usize, 150];
    let chains = vec![1usize, 1];
    let burn_in = vec![40usize, 20];
    let mut cfg = RuntimeConfig::new(samples.clone(), chains.clone());
    cfg.base.burn_in = burn_in.clone();
    cfg.base.seed = args.seed;
    // the checkpoint-transparent regime (DESIGN.md §7): snapshots pin
    // chains to levels (no load balancing), one worker makes the
    // cooperative schedule deterministic, and with two levels the
    // serving chains are base chains — their ledger sessions see one
    // requester each, so the quiesce pauses cannot reorder any serve
    // substream and a checkpointed run is bit-identical to an
    // uninterrupted one
    cfg.base.load_balancing = false;
    cfg.base.record_samples = true;
    cfg.n_workers = 1;
    let store = args.run_store();
    let desc = format!(
        "scaling_live ckpt v1 samples={samples:?} chains={chains:?} burn={burn_in:?} seed={}",
        args.seed
    );
    let config_hash = fnv1a(desc.as_bytes());

    println!(
        "\ndurable runs: snapshot every {every} top-level corrections -> {}",
        store.root().display()
    );
    let n_snaps = AtomicUsize::new(0);
    let hook = |done: usize, hash: &str| {
        let k = n_snaps.fetch_add(1, Ordering::SeqCst) + 1;
        eprintln!("  snapshot {k}: {hash} @ {done} top-level corrections");
        if args.crash_at == Some(k) {
            eprintln!("  --crash-at {k}: aborting mid-run");
            std::process::abort();
        }
    };
    let ckpt = ParallelCheckpoint {
        store: &store,
        config_hash,
        every,
        on_snapshot: Some(&hook),
        stop: None,
    };

    let report = if args.resume {
        let (hash, snap) = store
            .latest_snapshot(Some(config_hash))
            .expect("run store must be readable")
            .expect("--resume: no snapshot for this configuration in the store");
        println!(
            "  resuming from snapshot {hash} ({} top-level corrections done)",
            snap.samples_done
        );
        run_runtime_ckpt(&h, &cfg, &Tracer::disabled(), Some(&ckpt), Some(&snap))
    } else {
        run_runtime_ckpt(&h, &cfg, &Tracer::disabled(), Some(&ckpt), None)
    };
    assert!(
        n_snaps.load(Ordering::SeqCst) > 0 || args.resume,
        "the checkpointed run must take at least one snapshot"
    );

    // whether fresh, resumed after --crash-at, or checkpointed along
    // the way: the report must match an uninterrupted run exactly
    let uninterrupted = run_runtime(&h, &cfg, &Tracer::disabled());
    assert_identical(&report, &uninterrupted);
    if !args.resume {
        let (hash, snap) = store
            .latest_snapshot(Some(config_hash))
            .expect("run store must be readable")
            .expect("no snapshot recorded");
        let resumed = run_runtime_ckpt(&h, &cfg, &Tracer::disabled(), None, Some(&snap));
        assert_identical(&resumed, &uninterrupted);
        println!("  resume from snapshot {hash}: bit-identical to the uninterrupted run ✓");
    } else {
        println!("  resumed run: bit-identical to the uninterrupted run ✓");
    }

    let levels: Vec<String> = report
        .report
        .levels
        .iter()
        .enumerate()
        .map(|(level, l)| {
            format!(
                "{{ \"level\": {level}, \"n\": {}, \"mean_correction\": {:?}, \
                 \"mean_bits\": {:?}, \"var_bits\": {:?} }}",
                l.n_samples,
                l.mean_correction,
                l.mean_correction
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                l.var_correction
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            )
        })
        .collect();
    let mut json = BenchJson::new();
    json.field("pr", 6)
        .field_str("backend", "runtime")
        .field_str("config", &format!("{config_hash:016x}"))
        .field("seed", args.seed)
        .field("n_workers", 1)
        .field("samples_per_level", format!("{samples:?}"))
        .field("chains_per_level", format!("{chains:?}"))
        .field("burn_in", format!("{burn_in:?}"))
        .array("levels", &levels)
        .field("estimate", format!("{:?}", report.report.expectation()));
    write_bench(&args.out_dir, "BENCH_PR6.json", &json.finish());
    println!("durable runs: all checks passed");
}

/// The multi-process study (PR 9). `--net driver` binds `--listen`,
/// assembles one logical universe from `--net-workers` worker
/// processes over TCP, runs the pinned deterministic regime, asserts
/// bit-identity against the in-process thread scheduler (exact sample
/// counts plus estimate tolerance when elastic membership migrated
/// ranks mid-run) and writes `BENCH_PR9.json`. `--net worker` connects
/// to `--connect`, hosts whatever ranks the driver assigns and exits —
/// optionally joining elastically (`--join`) or departing at a
/// checkpoint barrier (`--leave-at N`).
fn net_study(args: &ExpArgs, role: &str) {
    // the deterministic bit-parity regime from
    // tests/net_conformance.rs — one chain per level, load balancing
    // off, per-sample recording on — on the 2-level zero-spin
    // hierarchy: any transport reordering or payload corruption moves
    // the digest, not just the estimate. Only the driver's copy is
    // authoritative; workers receive it over the wire in `Assign`.
    let mut config = ParallelConfig::new(vec![3000, 600], vec![1, 1]);
    config.burn_in = vec![50, 20];
    config.seed = args.seed;
    config.load_balancing = false;
    config.record_samples = true;
    config.speculation = true;

    if role == "worker" {
        let tracer = Tracer::with_epoch(Epoch::now());
        let opts = NetWorkerOptions {
            connect: args.connect.clone(),
            join: args.join,
            leave_at_barrier: args.leave_at,
        };
        let report = run_net_worker(Arc::new(CkptHierarchy), &opts, &tracer);
        let snap = MetricsSnapshot::capture("net worker", &tracer);
        println!(
            "net worker done: ranks {:?}, retired {}, frames out/in {}/{}",
            report.ranks,
            report.retired,
            snap.counter(Counter::NetFramesOut),
            snap.counter(Counter::NetFramesIn)
        );
        return;
    }
    assert_eq!(role, "driver", "--net must be driver or worker");

    // in-process baseline on the identical config: the digest the net
    // run must reproduce and the single-process wall-clock its
    // transport overhead is measured against
    let t0 = Instant::now();
    let base = run_parallel(&CkptHierarchy, &config, &Tracer::disabled());
    let base_elapsed = t0.elapsed().as_secs_f64();
    let base_digest = levels_digest(&base.levels);

    let tracer = Tracer::with_epoch(Epoch::now());
    let driver = NetDriver::bind(&args.listen).expect("cannot bind --listen address");
    println!(
        "net driver on {} awaiting {} worker process(es)",
        driver.local_addr(),
        args.net_workers
    );
    let opts = NetDriverOptions {
        workers: args.net_workers,
        every: args.checkpoint_every,
        store: (args.checkpoint_every > 0).then(|| Arc::new(args.run_store())),
        config_hash: fnv1a(format!("net-study seed={}", args.seed).as_bytes()),
    };
    let t1 = Instant::now();
    let net = driver.run(Arc::new(CkptHierarchy), &config, &opts, &tracer);
    let net_elapsed = t1.elapsed().as_secs_f64();
    let net_digest = levels_digest(&net.report.levels);

    // sample counts are exact regardless of membership churn: a leave
    // or join migrates chains, it never drops or duplicates samples
    for (level, &n) in config.samples_per_level.iter().enumerate() {
        assert_eq!(
            net.report.levels[level].n_samples, n,
            "level {level} sample count drifted across the transport"
        );
    }
    let base_est = base.expectation()[0];
    let net_est = net.report.expectation()[0];
    if net.migrations == 0 {
        assert_eq!(
            net_digest, base_digest,
            "net run over TCP diverged from the in-process scheduler"
        );
        println!("net vs in-process: digests identical ✓");
    } else {
        // ranks crossed process boundaries mid-run; the estimate must
        // still agree with the uninterrupted baseline statistically
        assert!(
            (net_est - base_est).abs() < 0.1,
            "elastic net estimate {net_est:.4} drifted from baseline {base_est:.4}"
        );
        println!(
            "net vs in-process: {} migration(s), estimate {net_est:.4} vs {base_est:.4} ✓",
            net.migrations
        );
    }

    let snap = MetricsSnapshot::capture("net driver", &tracer);
    let mut json = BenchJson::new();
    json.field("pr", 9)
        .field_str("transport", "tcp")
        .field("workers", args.net_workers)
        .field("checkpoint_every", args.checkpoint_every)
        .field("n_samples", format!("{:?}", config.samples_per_level))
        .field("inprocess_elapsed_s", format!("{base_elapsed:.3}"))
        .field("net_elapsed_s", format!("{net_elapsed:.3}"))
        .field(
            "net_overhead_ratio",
            format!("{:.3}", net_elapsed / base_elapsed),
        )
        .field("digest_match", net_digest == base_digest)
        .field("migrations", net.migrations)
        .field("dropped_sends", net.dropped_sends)
        .field("net_frames_out", snap.counter(Counter::NetFramesOut))
        .field("net_frames_in", snap.counter(Counter::NetFramesIn))
        .field("net_bytes_out", snap.counter(Counter::NetBytesOut))
        .field("net_bytes_in", snap.counter(Counter::NetBytesIn))
        .field("net_reconnects", snap.counter(Counter::NetReconnects))
        .field("estimate", format!("{net_est:.6}"));
    write_bench(&args.out_dir, "BENCH_PR9.json", &json.finish());
    println!("net study: all checks passed");
}

/// Bit-exact equality of two runtime reports (estimates, variances and
/// recorded sample streams; evaluation counters and timing excluded —
/// a resumed run legitimately repeats the rebuild evaluations).
fn assert_identical(a: &RuntimeReport, b: &RuntimeReport) {
    assert_eq!(a.report.levels.len(), b.report.levels.len());
    for (x, y) in a.report.levels.iter().zip(&b.report.levels) {
        assert_eq!(x.n_samples, y.n_samples);
        let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x.mean_correction), bits(&y.mean_correction));
        assert_eq!(bits(&x.var_correction), bits(&y.var_correction));
        assert_eq!(x.theta_samples, y.theta_samples);
        assert_eq!(x.correction_pairs, y.correction_pairs);
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = ExpArgs::parse();
    if let Some(role) = args.net.clone() {
        // dedicated multi-process invocation: the CI net smoke jobs
        // drive a driver process plus N worker processes standalone
        net_study(&args, &role);
        return;
    }
    if args.model == "swe" {
        swe_study(&args);
        return;
    }
    assert_eq!(args.model, "gauss", "--model must be gauss or swe");
    if args.checkpoint_every > 0 || args.resume || args.crash_at.is_some() {
        // dedicated durable-runs invocation: the crash-injection
        // harness (and `ci.yml`) drives these flags standalone
        checkpoint_study(&args);
        return;
    }
    let workers = 8usize;

    // ---------------- 1. validation ----------------
    // (cheap targets, no spin: this part compares *estimates*, not time)
    let h_plain = SpinHierarchy { spin: [0, 0, 0] };
    let val_samples = if args.paper {
        vec![60_000usize, 6_000, 600]
    } else {
        vec![20_000usize, 2_000, 300]
    };
    let val_chains = vec![2usize, 2, 1];
    let val_burn = vec![200usize, 100, 50];

    println!("scaling_live — cooperative-runtime scaling study (PR 3)\n");
    println!("validation: runtime vs thread scheduler, identical seeds");
    // one epoch shared by every tracer in this process: the thread
    // validation run and the runtime sweep land on a single timeline in
    // the exported Chrome trace (observation never perturbs the runs —
    // bit-parity is pinned by tests/obs_conformance.rs)
    let epoch = Epoch::now();
    let t_thread = Tracer::with_epoch(epoch);
    let mut sched_cfg = ParallelConfig::new(val_samples.clone(), val_chains.clone());
    sched_cfg.burn_in = val_burn.clone();
    sched_cfg.seed = args.seed;
    let sched = run_parallel(&h_plain, &sched_cfg, &t_thread);

    let mut rt_cfg = RuntimeConfig::new(val_samples.clone(), val_chains.clone());
    rt_cfg.base.burn_in = val_burn.clone();
    rt_cfg.base.seed = args.seed;
    rt_cfg.n_workers = 4;
    let rt = run_runtime(&h_plain, &rt_cfg, &Tracer::disabled());

    let mut val_rows = Vec::new();
    let mut val_items: Vec<String> = Vec::new();
    for level in 0..val_samples.len() {
        let a = &sched.levels[level];
        let b = &rt.report.levels[level];
        assert_eq!(a.n_samples, b.n_samples, "level {level} sample counts");
        let diff = (a.mean_correction[0] - b.mean_correction[0]).abs();
        // both are MC estimates of the same correction from independent
        // interleavings: tolerance from their own reported variances,
        // inflated for level-0 autocorrelation
        let se = (a.var_correction[0] / a.n_samples as f64
            + b.var_correction[0] / b.n_samples as f64)
            .sqrt();
        let tol = (20.0 * se).max(0.02);
        assert!(
            diff < tol,
            "level {level}: scheduler {:.4} vs runtime {:.4} (diff {diff:.4} > tol {tol:.4})",
            a.mean_correction[0],
            b.mean_correction[0]
        );
        val_rows.push(vec![
            level.to_string(),
            format!("{}", a.n_samples),
            format!("{:.4}", a.mean_correction[0]),
            format!("{:.4}", b.mean_correction[0]),
            format!("{:.4}", diff),
            format!("{:.4}", tol),
        ]);
        val_items.push(format!(
            "{{ \"level\": {level}, \"n\": {}, \"scheduler_mean\": {:.6}, \
             \"runtime_mean\": {:.6}, \"diff\": {:.6}, \"tol\": {:.6} }}",
            a.n_samples, a.mean_correction[0], b.mean_correction[0], diff, tol
        ));
    }
    println!(
        "{}",
        render_table(
            &["level", "N", "scheduler", "runtime", "|diff|", "tol"],
            &val_rows
        )
    );

    // determinism: single worker + no load balancing = deterministic
    // routing, so repeated runs must agree exactly
    let mut det_cfg = RuntimeConfig::new(vec![3000, 600, 150], val_chains.clone());
    det_cfg.base.burn_in = vec![50, 20, 10];
    det_cfg.base.seed = args.seed;
    det_cfg.base.load_balancing = false;
    det_cfg.n_workers = 1;
    let d1 = run_runtime(&h_plain, &det_cfg, &Tracer::disabled());
    let d2 = run_runtime(&h_plain, &det_cfg, &Tracer::disabled());
    for (l1, l2) in d1.report.levels.iter().zip(&d2.report.levels) {
        assert_eq!(
            l1.mean_correction, l2.mean_correction,
            "single-worker runs must be bit-identical"
        );
        assert_eq!(l1.n_samples, l2.n_samples);
    }
    println!("determinism: single-worker repeat is bit-identical ✓");

    // speculation conformance spot-check (the full suite lives in
    // tests/speculation_conformance.rs): a committed speculation is
    // bit-identical to the serve it replaces, so on a single worker with
    // one chain per level (single producer per collector, level-0
    // serving stack — the regime where serves are pure functions of
    // their lease) switching speculation off must not move a single bit
    let mut spec_cfg = RuntimeConfig::new(vec![3000, 600], vec![1, 1]);
    spec_cfg.base.burn_in = vec![50, 20];
    spec_cfg.base.seed = args.seed;
    spec_cfg.base.load_balancing = false;
    spec_cfg.n_workers = 1;
    let mut nospec_cfg = spec_cfg.clone();
    nospec_cfg.base.speculation = false;
    let s1 = run_runtime(&h_plain, &spec_cfg, &Tracer::disabled());
    let s0 = run_runtime(&h_plain, &nospec_cfg, &Tracer::disabled());
    for (l1, l0) in s1.report.levels.iter().zip(&s0.report.levels) {
        assert_eq!(
            l1.mean_correction, l0.mean_correction,
            "speculation on/off must be bit-identical"
        );
    }
    assert!(
        s1.phonebook.ledger.spec_hits > 0,
        "the speculative path must actually be exercised: {:?}",
        s1.phonebook.ledger
    );
    assert_eq!(s0.phonebook.ledger.spec_launched, 0);
    println!(
        "speculation: on/off bit-identical ({} of {} serves committed speculatively) ✓\n",
        s1.phonebook.ledger.spec_hits, s1.phonebook.ledger.serves
    );

    // ---------------- 2. live scaling sweep ----------------
    // ~31/62/124 µs per evaluation (calibrated): model-bound like the
    // paper's runs, so the DES (which only models evaluation cost) is a
    // meaningful predictor
    let spin = [2000u32, 4000, 8000];
    let h = SpinHierarchy { spin };
    let samples = if args.paper {
        vec![120_000usize, 12_000, 1_200]
    } else {
        vec![40_000usize, 4_000, 400]
    };
    let burn_in = vec![50usize, 25, 10];
    let shards = 2usize;
    let ranks_list = [64usize, 128, 256, 512, 1024];

    let effective_cores = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(workers);
    println!(
        "live sweep: {} virtual ranks on {workers} workers / {effective_cores} core(s) \
         (spin {spin:?})",
        ranks_list
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("/")
    );
    let eval_time: Vec<f64> = (0..3).map(|l| calibrate_eval_secs(&h, l, 1)).collect();
    eprintln!(
        "  calibrated eval cost per level: {:?} µs",
        eval_time
            .iter()
            .map(|s| (s * 1e6).round())
            .collect::<Vec<_>>()
    );
    let pool = Runtime::new(workers);
    // the whole sweep records into one tracer (same epoch as the thread
    // run): span volume is a few thousand events per point, far below
    // the spin-bound evaluation cost, so the overhead-band assertions
    // below measure the runtime, not the observer
    let t_rt = Tracer::with_epoch(epoch);
    let progress_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let progress_handle = args.progress.then(|| {
        let t = t_rt.clone();
        let stop = std::sync::Arc::clone(&progress_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                eprintln!("  progress: {}", t.progress_line());
                std::thread::sleep(std::time::Duration::from_millis(1000));
            }
        })
    });
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut obs_snapshot: Option<MetricsSnapshot> = None;
    let mut obs_trace: Option<String> = None;
    for &ranks in &ranks_list {
        let t0 = Instant::now();
        let (r, point) = run_sweep_point(
            &pool,
            &h,
            &RHO,
            &eval_time,
            ranks,
            effective_cores,
            shards,
            &samples,
            &burn_in,
            args.seed,
            &t_rt,
        );
        eprintln!(
            "  ranks {ranks:>5}: {:.2}s live ({:.2}s wall), {:.0}% serves speculated",
            point.elapsed,
            t0.elapsed().as_secs_f64(),
            point.hit_rate * 100.0
        );
        if obs_snapshot.is_none() {
            // captured before the next point starts, so counters and
            // per-level activity describe this point alone
            let mut snap = MetricsSnapshot::capture(&format!("scaling_live ranks={ranks}"), &t_rt);
            snap.merge_ledger(&r.phonebook.ledger);
            snap.merge_runtime(&r.runtime);
            obs_snapshot = Some(snap);
            if args.trace_out.is_some() {
                // export the timeline up to here (thread validation run
                // + one full sweep point covers both parallel backends);
                // the remaining points would only multiply the file size
                obs_trace = Some(chrome_trace(&[
                    ("thread-scheduler", &t_thread),
                    ("cooperative-runtime", &t_rt),
                ]));
            }
        }
        points.push(point);
    }
    progress_stop.store(true, Ordering::Relaxed);
    if let Some(reporter) = progress_handle {
        reporter.join().expect("progress reporter thread");
    }
    let sweep_lifetime = pool.lifetime_stats();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for p in &points {
        rows.push(vec![
            p.ranks.to_string(),
            format!("{:?}", p.chains),
            format!("{:.2}", p.elapsed),
            format!("{:.0}", p.throughput),
            format!("{:.2}", p.pred_elapsed),
            format!("{:.2}", p.elapsed / p.pred_elapsed),
            format!("{:.3}", p.des_makespan),
            format!("{:.1}", p.mean_batch),
            p.max_batch.to_string(),
            p.reassignments.to_string(),
            p.ledger_serves.to_string(),
            format!("{:.2}", p.diverged_frac),
            p.steals.to_string(),
            format!("{:.2}", p.hit_rate),
            format!("{:.2}", p.elapsed / p.pred_nospec_elapsed),
        ]);
        csv.push(vec![
            p.ranks as f64,
            p.elapsed,
            p.throughput,
            p.pred_elapsed,
            p.elapsed / p.pred_elapsed,
            p.des_makespan,
            p.des_busy,
            p.mean_batch,
            p.max_batch as f64,
            p.polls as f64,
            p.wakeups as f64,
            p.dropped_sends as f64,
            p.reassignments as f64,
            p.ledger_serves as f64,
            p.diverged_frac,
            p.steals as f64,
            p.spec_launched as f64,
            p.spec_hits as f64,
            p.spec_misses as f64,
            p.hit_rate,
            p.pred_nospec_elapsed,
            p.elapsed / p.pred_nospec_elapsed,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ranks",
                "chains/level",
                "time[s]",
                "samples/s",
                "DES pred[s]",
                "overhead",
                "DES 1-rank-per-cpu[s]",
                "mean batch",
                "max batch",
                "reassigned",
                "serves",
                "diverged",
                "steals",
                "spec hit",
                "ovh vs PR4"
            ],
            &rows
        )
    );
    println!(
        "('DES pred' = max(DES makespan, DES busy-time / {effective_cores} cores): the DES's \
         wall-clock prediction for THIS machine;\n 'DES 1-rank-per-cpu' is the cluster-setting \
         makespan the paper measures — unreachable on {effective_cores} core(s).)\n"
    );
    write_bench_csv(
        &args.out_dir,
        "scaling_live.csv",
        "ranks,elapsed_s,throughput,des_pred_elapsed_s,overhead_ratio,des_makespan_s,\
         des_busy_s,mean_batch,max_batch,polls,wakeups,dropped_sends,reassignments,\
         ledger_serves,diverged_frac,steals,spec_launched,spec_hits,spec_misses,\
         spec_hit_rate,des_nospec_pred_elapsed_s,overhead_vs_pr4",
        &csv,
    );

    // acceptance: ≥ 512 virtual ranks live on ≤ 8 workers
    assert!(
        points.iter().any(|p| p.ranks >= 512),
        "sweep must include >= 512 virtual ranks"
    );

    // DES cross-check 1 (policy): evaluation counts per level must agree
    // — the runtime executes the schedule the simulator models
    for p in &points {
        for (level, (&live, &sim)) in p.evals.iter().zip(&p.des_evals).enumerate() {
            let ratio = live as f64 / sim.max(1) as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "eval-count mismatch at {} ranks, level {level}: live {live} vs DES {sim}",
                p.ranks
            );
        }
    }
    // DES cross-check 2 (time): live wall-clock within a loose factor of
    // the DES prediction for this machine's core budget. Bounds are wide
    // on purpose: the DES models no messaging/scheduling overhead, and on
    // shared CI runners calibration can land on a quieter core than the
    // sweep — they still catch order-of-magnitude runtime pathologies
    // (dev-run observations sit at 0.9–1.4).
    for p in &points {
        let ratio = p.elapsed / p.pred_elapsed;
        assert!(
            (0.2..6.0).contains(&ratio),
            "live vs DES wall-clock diverged at {} ranks: {:.2}s vs predicted {:.2}s",
            p.ranks,
            p.elapsed,
            p.pred_elapsed
        );
    }
    // DES cross-check 3 (scalability): the virtualization overhead ratio
    // must stay roughly flat as virtual ranks grow 16x — hosting 1024
    // suspended controllers must not degrade the runtime (dev-run spread
    // is ~1.5x; the margin absorbs noisy-neighbor CI variance)
    let ratios: Vec<f64> = points.iter().map(|p| p.elapsed / p.pred_elapsed).collect();
    let (lo, hi) = ratios.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &r| {
        (lo.min(r), hi.max(r))
    });
    assert!(
        hi / lo < 4.0,
        "virtualization overhead must stay flat across rank counts: ratios {ratios:?}"
    );
    println!(
        "DES cross-check: eval counts, wall-clock (ratios {:?}) and overhead flatness agree ✓",
        ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // speculation acceptance (PR 5): the ledger must actually speculate
    // at scale, and the measured overhead ratio — live wall-clock over
    // the DES prediction of the schedule actually executed, the same
    // definition PR 4 measured at 1.21–1.32 — must sit at or below that
    // band. (`overhead_vs_pr4` in the artifact additionally compares
    // against the non-speculative DES baseline: on a machine with idle
    // cores speculation pushes it below 1; on a fully compute-saturated
    // box the discarded legs surface there as extra busy time.)
    assert!(
        points.iter().filter(|p| p.spec_hits > 0).count() >= 2,
        "speculation must land hits at multiple rank counts: {:?}",
        points.iter().map(|p| p.spec_hits).collect::<Vec<_>>()
    );
    let mean_overhead = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean_overhead <= 1.32,
        "mean overhead ratio {mean_overhead:.2} exceeds the PR-4 band ceiling 1.32: {ratios:?}"
    );
    println!(
        "speculation: hit rates {:?}, mean overhead {:.2} <= PR-4 band 1.21–1.32, \
         vs non-speculative baseline {:?} ✓",
        points
            .iter()
            .map(|p| (p.hit_rate * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        mean_overhead,
        points
            .iter()
            .map(|p| ((p.elapsed / p.pred_nospec_elapsed) * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // ---------------- 2b. observability cross-check (PR 8) ----------------
    // close the loop between the live tracer and the DES on the first
    // sweep point: the measured activity must match what the simulator
    // predicts for the same schedule
    let snap = obs_snapshot.expect("first sweep point captured a snapshot");
    let obs_point = &points[0];

    // (a) cross-source counters: serves are counted controller-side at
    // execution, write-backs phonebook-side at ledger commit. A few
    // ServeDone messages can be in flight when the phonebook shuts
    // down, so allow shutdown skew — but nothing that would indicate a
    // systematic miscount (exact equality on a quiescent run is pinned
    // by tests/obs_conformance.rs)
    let serves = snap.counter(Counter::Serves);
    let write_backs = snap.counter(Counter::WriteBacks);
    assert!(
        write_backs <= serves && serves - write_backs <= serves / 100 + 8,
        "controller-side serves ({serves}) must match phonebook-side write-backs \
         ({write_backs}) up to shutdown in-flight skew"
    );
    assert_eq!(
        snap.counter(Counter::SpecHits),
        obs_point.spec_hits as u64,
        "merged snapshot must carry the ledger's speculation stats"
    );

    // (b) per-level activity split: the live tracer's busy share per
    // level (eval + burn-in + serve spans) against the DES's
    // busy_per_level. Shares, not absolute seconds: oversubscription
    // (workers > cores) inflates every measured span by preemption, but
    // uniformly, so the *distribution* across levels must still agree.
    let live_level_busy: f64 = snap.per_level.iter().map(|l| l.busy()).sum();
    let des_level_busy: f64 = obs_point.des_busy_per_level.iter().sum();
    let mut share_rows = Vec::new();
    for l in &snap.per_level {
        let live_share = l.busy() / live_level_busy;
        let des_share = obs_point.des_busy_per_level[l.level] / des_level_busy;
        // band-check levels carrying real work; on the top level's sliver
        // (~1% of busy time) the DES's every-step-pays-one-eval model is
        // coarser than the live chain (which skips re-evaluating unchanged
        // coarse proposals), so only require the activity to exist
        if des_share >= 0.05 {
            let ratio = live_share / des_share;
            assert!(
                (0.4..2.5).contains(&ratio),
                "per-level busy share diverged from DES at level {}: live {live_share:.3} vs \
                 DES {des_share:.3}",
                l.level
            );
        } else {
            assert!(
                l.busy() > 0.0,
                "level {} saw no recorded activity at all",
                l.level
            );
        }
        share_rows.push(format!(
            "L{} {:.0}%/{:.0}%",
            l.level,
            live_share * 100.0,
            des_share * 100.0
        ));
    }

    // (c) per-rank utilization: total measured busy seconds across
    // controller ranks against the DES's virtual-time busy total. Live
    // spans absorb preemption when the pool oversubscribes the cores,
    // so the acceptance band scales with the oversubscription factor.
    let busy_ranks: Vec<_> = snap.per_rank.iter().filter(|r| r.busy() > 0.0).collect();
    let live_busy_total: f64 = busy_ranks.iter().map(|r| r.busy()).sum();
    let mean_util = live_busy_total / (busy_ranks.len() as f64 * obs_point.elapsed);
    let oversub = (workers as f64 / effective_cores as f64).max(1.0);
    let busy_ratio = live_busy_total / des_level_busy;
    assert!(
        busy_ratio > 0.3 && busy_ratio < 3.0 * oversub,
        "measured busy time diverged from DES: live {live_busy_total:.2}s vs DES \
         {des_level_busy:.2}s (ratio {busy_ratio:.2}, oversubscription {oversub:.1})"
    );
    println!(
        "obs cross-check (ranks {}): serves {serves} vs write_backs {write_backs}, \
         busy live/DES {:.2} (mean rank utilization {:.1}%), level shares live/DES {} ✓",
        obs_point.ranks,
        busy_ratio,
        mean_util * 100.0,
        share_rows.join(", ")
    );
    println!(
        "obs spec loop: tracer hit rate {:.2} fed into the DES, wall-clock prediction \
         ratio {:.2} (cross-check 2) ✓\n",
        obs_point.hit_rate,
        obs_point.elapsed / obs_point.pred_elapsed
    );

    // ---------------- 2c. observability exports (PR 8) ----------------
    if let Some(name) = &args.trace_out {
        let trace = obs_trace.expect("trace captured at the first sweep point");
        write_bench(&args.out_dir, name, &trace);
    }
    if let Some(name) = &args.metrics_out {
        let thread_snap = MetricsSnapshot::capture("validation thread-scheduler", &t_thread);
        // v3 = v2 plus the multi-tenant service counters (appended to
        // the counters table) and the `per_tenant` serve table (empty
        // outside a service run); every v1/v2 field keeps its position —
        // CI validates both the v3 additions and v1/v2 stability
        let mut doc = String::from("{\n\"schema\": \"uq-obs-metrics-v3\",\n\"thread\": ");
        doc.push_str(thread_snap.to_json().trim_end());
        doc.push_str(",\n\"runtime\": ");
        doc.push_str(snap.to_json().trim_end());
        doc.push_str("\n}\n");
        write_bench(&args.out_dir, name, &doc);
    }

    // ---------------- 3. BENCH_PR3.json ----------------
    let sweep_items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{ \"ranks\": {}, \"chains\": {:?}, \"elapsed_s\": {:.3}, \
                 \"throughput_samples_per_s\": {:.1}, \"des_pred_elapsed_s\": {:.3}, \
                 \"overhead_ratio\": {:.3}, \"des_makespan_s\": {:.3}, \"des_busy_s\": {:.3}, \
                 \"evals_per_level\": {:?}, \"des_evals_per_level\": {:?}, \"mean_batch\": {:.2}, \
                 \"max_batch\": {}, \"polls\": {}, \"wakeups\": {}, \"dropped_sends\": {}, \
                 \"reassignments\": {}, \"ledger_serves\": {}, \"diverged_frac\": {:.3}, \
                 \"steals\": {} }}",
                p.ranks,
                p.chains,
                p.elapsed,
                p.throughput,
                p.pred_elapsed,
                p.elapsed / p.pred_elapsed,
                p.des_makespan,
                p.des_busy,
                p.evals,
                p.des_evals,
                p.mean_batch,
                p.max_batch,
                p.polls,
                p.wakeups,
                p.dropped_sends,
                p.reassignments,
                p.ledger_serves,
                p.diverged_frac,
                p.steals
            )
        })
        .collect();
    let mut json = BenchJson::new();
    json.field("pr", 3)
        .field("workers", workers)
        .field("effective_cores", effective_cores)
        .field("collector_shards", shards)
        .array("validation", &val_items)
        .array("scaling_live", &sweep_items);
    write_bench(&args.out_dir, "BENCH_PR3.json", &json.finish());

    // ---------------- 4. BENCH_PR5.json ----------------
    // the speculative-serving artifact: per-rank-count hit rates and the
    // overhead ratio against both DES baselines (speculation-aware =
    // model tracking; non-speculative = the PR-4 band the tentpole is
    // measured against), plus the reused pool's lifetime counters
    let spec_items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{ \"ranks\": {}, \"elapsed_s\": {:.3}, \"serves\": {}, \
                 \"spec_launched\": {}, \"spec_hits\": {}, \"spec_misses\": {}, \
                 \"spec_hit_rate\": {:.3}, \"diverged_frac\": {:.3}, \
                 \"des_pred_elapsed_s\": {:.3}, \"overhead_ratio\": {:.3}, \
                 \"des_nospec_pred_elapsed_s\": {:.3}, \"overhead_vs_pr4\": {:.3} }}",
                p.ranks,
                p.elapsed,
                p.ledger_serves,
                p.spec_launched,
                p.spec_hits,
                p.spec_misses,
                p.hit_rate,
                p.diverged_frac,
                p.pred_elapsed,
                p.elapsed / p.pred_elapsed,
                p.pred_nospec_elapsed,
                p.elapsed / p.pred_nospec_elapsed
            )
        })
        .collect();
    let mut json5 = BenchJson::new();
    json5
        .field("pr", 5)
        .field("workers", workers)
        .field("effective_cores", effective_cores)
        .field("pr4_overhead_band", "[1.21, 1.32]")
        .field(
            "pool_lifetime",
            format!(
                "{{ \"polls\": {}, \"wakeups\": {}, \"dropped_sends\": {}, \"steals\": {} }}",
                sweep_lifetime.polls,
                sweep_lifetime.wakeups,
                sweep_lifetime.dropped_sends,
                sweep_lifetime.steals
            ),
        )
        .array("sweep", &spec_items);
    write_bench(&args.out_dir, "BENCH_PR5.json", &json5.finish());

    // ---------------- 5. durable runs (PR 6) ----------------
    checkpoint_study(&args);
    println!("\nscaling_live: all checks passed");
}
