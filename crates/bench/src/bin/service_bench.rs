//! PR 10 perf artifact: the **always-on multi-tenant UQ service** under
//! a synthetic tenant mix.
//!
//! Default mode drives one in-process service end to end:
//!
//! 1. a calibration job teaches the admission DES the measured per-level
//!    evaluation times (replacing the 50 µs bootstrap);
//! 2. a four-tenant mix (priorities 1/1/2/4, mixed job sizes) is
//!    submitted; one job is preempted at a quiesce barrier and resumed,
//!    one is cancelled mid-flight;
//! 3. every completed job's time-to-estimate is measured and
//!    cross-checked against the DES admission prediction it was admitted
//!    under (the ratio must stay inside a wide sanity band — the DES is
//!    an admission model, not a profiler);
//! 4. sustained jobs/sec, p50/p99 time-to-estimate, the per-tenant serve
//!    table and the band check land in `results/BENCH_PR10.json`, and
//!    `--metrics-out F` writes a `uq-obs-metrics-v3` snapshot whose
//!    `per_tenant` table comes from the service books.
//!
//! `--serve ADDR --expect N` / `--client ADDR --tenant K` split the same
//! fixture across real OS processes for the CI two-tenant remote smoke:
//! each client submits over TCP, waits its job out, recomputes the
//! standalone digest at its tenant seed locally and asserts bit
//! equality — cross-process, cross-tenant isolation on the wire.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use uq_bench::{render_table, write_bench, BenchJson};
use uq_linalg::prob::isotropic_gaussian_logpdf;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::ledger::tenant_seed;
use uq_mlmcmc::LevelFactory;
use uq_parallel::{
    levels_digest, run_parallel, Counter, JobId, JobSpec, JobState, MetricsSnapshot,
    ParallelConfig, RuntimeConfig, Service, ServiceClient, ServiceConfig, Tracer,
};

const COARSE_MEAN: f64 = 0.0;
const COARSE_SD: f64 = 0.15;
const FINE_MEAN: f64 = 0.35;
const FINE_SD: f64 = 0.12;
const RHO: usize = 2;

struct Ridge;

struct Target {
    mean: f64,
    sd: f64,
}

impl SamplingProblem for Target {
    fn dim(&self) -> usize {
        1
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
    }
}

impl LevelFactory for Ridge {
    fn n_levels(&self) -> usize {
        2
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(Target {
            mean: [COARSE_MEAN, FINE_MEAN][level],
            sd: [COARSE_SD, FINE_SD][level],
        })
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.2))
    }
    fn subsampling_rate(&self, _level: usize) -> usize {
        RHO
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0]
    }
}

/// The deterministic bit-parity regime on the ridge.
fn base_config(n0: usize, n1: usize, seed: u64) -> ParallelConfig {
    let mut config = ParallelConfig::new(vec![n0, n1], vec![1, 1]);
    config.burn_in = vec![30, 20];
    config.seed = seed;
    config.load_balancing = false;
    config.record_samples = true;
    config.speculation = true;
    config
}

fn job(tenant: u64, priority: f64, base: ParallelConfig) -> JobSpec {
    JobSpec {
        tenant,
        priority,
        model: "ridge".to_string(),
        config: RuntimeConfig {
            base,
            n_workers: 1,
            collector_shards: 1,
        },
        deadline: 0.0,
    }
}

struct Args {
    out_dir: PathBuf,
    seed: u64,
    metrics_out: Option<String>,
    serve: Option<String>,
    expect: usize,
    client: Option<String>,
    tenant: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_dir: PathBuf::from("results"),
        seed: 20210730,
        metrics_out: None,
        serve: None,
        expect: 2,
        client: None,
        tenant: 1,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--out" => args.out_dir = PathBuf::from(iter.next().expect("--out needs a value")),
            "--seed" => {
                args.seed = iter
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--metrics-out" => {
                args.metrics_out = Some(iter.next().expect("--metrics-out needs a value"));
            }
            "--serve" => args.serve = Some(iter.next().expect("--serve needs an address")),
            "--expect" => {
                args.expect = iter
                    .next()
                    .expect("--expect needs a value")
                    .parse()
                    .expect("--expect must be an integer");
            }
            "--client" => args.client = Some(iter.next().expect("--client needs an address")),
            "--tenant" => {
                args.tenant = iter
                    .next()
                    .expect("--tenant needs a value")
                    .parse()
                    .expect("--tenant must be an integer");
            }
            other => panic!(
                "unknown argument: {other} (expected --out/--seed/--metrics-out/\
                 --serve/--expect/--client/--tenant)"
            ),
        }
    }
    args
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

// ---------------------------------------------------------------------
// remote-smoke roles
// ---------------------------------------------------------------------

/// `--serve ADDR --expect N`: host the service for N remote submits,
/// drain them, print the per-tenant books and exit.
fn serve(args: &Args) {
    let dir = std::env::temp_dir().join(format!("uq-svc-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tracer = Tracer::new();
    let mut cfg = ServiceConfig::new(&dir);
    cfg.lanes = 2;
    cfg.pool_workers = 2;
    cfg.quantum = 10;
    let mut service = Service::start(cfg, &tracer);
    service.register_model("ridge", Arc::new(Ridge));
    let addr = service
        .listen(args.serve.as_deref().expect("serve mode"))
        .expect("cannot bind service address");
    println!(
        "service listening on {addr}, waiting for {} jobs",
        args.expect
    );

    // wait for each client's orderly goodbye (sent only after it has
    // verified its job), so no client gets the connection torn out from
    // under a status poll
    let deadline = Instant::now() + Duration::from_secs(300);
    while (service.remote_byes() as usize) < args.expect {
        assert!(
            Instant::now() < deadline,
            "expected {} client goodbyes, saw {} ({} jobs admitted)",
            args.expect,
            service.remote_byes(),
            tracer.counter(Counter::JobsAdmitted)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    service.quiesce();
    for (tenant, serves) in service.per_tenant_serves() {
        println!("tenant {tenant}: {serves} serves");
    }
    println!(
        "service drained {} jobs ✓",
        tracer.counter(Counter::JobsAdmitted)
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--client ADDR --tenant K`: submit over TCP, wait, and assert the
/// remote digest equals the standalone digest at this tenant's seed.
fn client(args: &Args) {
    let addr = args.client.as_deref().expect("client mode");
    let base = base_config(400, 150, args.seed);
    let mut client = ServiceClient::connect(addr).expect("cannot reach the service");

    let (id, predicted) = client
        .submit(job(args.tenant, 1.0, base.clone()))
        .expect("submit io")
        .expect("admission");
    println!(
        "tenant {}: job {id} admitted, predicted tte {predicted:.4}s",
        args.tenant
    );
    let done = client.wait(id).expect("wait io");
    assert_eq!(done.state, JobState::Completed, "remote job must complete");

    let mut standalone = base;
    standalone.seed = tenant_seed(standalone.seed, args.tenant);
    let expected = levels_digest(&run_parallel(&Ridge, &standalone, &Tracer::disabled()).levels);
    assert_eq!(
        done.digest, expected,
        "tenant {}: remote digest {:#x} != standalone {:#x}",
        args.tenant, done.digest, expected
    );
    assert_eq!(done.seed, tenant_seed(args.seed, args.tenant));
    client.bye().expect("goodbye");
    println!(
        "tenant {}: remote digest matches standalone bit-for-bit ✓",
        args.tenant
    );
}

// ---------------------------------------------------------------------
// the bench proper
// ---------------------------------------------------------------------

struct Submitted {
    id: JobId,
    predicted: f64,
    submitted_at: Instant,
    tte: Option<f64>,
}

fn main() {
    let args = parse_args();
    if args.serve.is_some() {
        serve(&args);
        return;
    }
    if args.client.is_some() {
        client(&args);
        return;
    }

    let store_dir = std::env::temp_dir().join(format!("uq-svc-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let tracer = Tracer::new();
    let mut cfg = ServiceConfig::new(&store_dir);
    cfg.lanes = 3;
    cfg.pool_workers = 3;
    cfg.quantum = 10;
    cfg.max_jobs_per_tenant = 8;
    let service = Service::start(cfg, &tracer);
    service.register_model("ridge", Arc::new(Ridge));

    // 1. calibration: one solo job replaces the DES eval-time bootstrap
    // with measured rates before any prediction we score
    let (cal, _) = service
        .submit(job(0, 1.0, base_config(800, 250, args.seed)))
        .expect("calibration admission");
    let cal_done = service.wait(cal);
    assert_eq!(cal_done.state, JobState::Completed);
    println!("calibration job done ({} serves measured)", cal_done.serves);

    // 2. the synthetic tenant mix: priorities 1/1/2/4, three job shapes
    let mix: Vec<(u64, f64, ParallelConfig)> = (0..12)
        .map(|i| {
            let tenant = 1 + (i % 4) as u64;
            let priority = [1.0, 1.0, 2.0, 4.0][(tenant - 1) as usize];
            let (n0, n1) = [(2_000, 700), (3_000, 1_000), (1_200, 400)][i % 3];
            (tenant, priority, base_config(n0, n1, args.seed + i as u64))
        })
        .collect();

    let bench_start = Instant::now();
    let mut jobs: Vec<Submitted> = Vec::new();
    for (tenant, priority, base) in mix {
        let (id, predicted) = service
            .submit(job(tenant, priority, base))
            .expect("mix admission");
        jobs.push(Submitted {
            id,
            predicted,
            submitted_at: Instant::now(),
            tte: None,
        });
    }
    // chaos riders: cancel the second job, preempt/resume the fourth
    let cancel_id = jobs[1].id;
    let preempt_id = jobs[3].id;
    assert!(
        service.cancel(cancel_id),
        "mid-flight cancel must be accepted"
    );

    let mut preempted = false;
    let mut resumed = false;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let mut all_terminal = true;
        for j in jobs.iter_mut() {
            let status = service.status(j.id).expect("submitted job");
            match status.state {
                JobState::Completed | JobState::Cancelled => {
                    if j.tte.is_none() {
                        j.tte = Some(j.submitted_at.elapsed().as_secs_f64());
                    }
                }
                JobState::Preempted => {
                    if j.id == preempt_id && !resumed {
                        resumed = service.resume(j.id);
                        assert!(resumed, "parked job must resume");
                    }
                    all_terminal = false;
                }
                JobState::Running => {
                    if j.id == preempt_id && !preempted && status.snapshots >= 1 {
                        preempted = service.preempt(j.id);
                    }
                    all_terminal = false;
                }
                JobState::Queued => all_terminal = false,
            }
        }
        if all_terminal {
            break;
        }
        assert!(Instant::now() < deadline, "tenant mix never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall = bench_start.elapsed().as_secs_f64();
    assert!(preempted && resumed, "the preempt/resume rider must fire");

    // 3. score the outcome
    let cancelled = service.status(cancel_id).expect("cancelled job");
    assert_eq!(cancelled.state, JobState::Cancelled, "cancel must stick");
    let completed: Vec<&Submitted> = jobs.iter().filter(|j| j.id != cancel_id).collect();
    for j in &completed {
        let state = service.status(j.id).expect("job").state;
        assert_eq!(state, JobState::Completed, "job {} ended {state:?}", j.id);
    }
    let jobs_per_sec = completed.len() as f64 / wall;

    let mut ttes: Vec<f64> = completed.iter().map(|j| j.tte.expect("scored")).collect();
    ttes.sort_by(|a, b| a.partial_cmp(b).expect("finite tte"));
    let p50 = percentile(&ttes, 0.50);
    let p99 = percentile(&ttes, 0.99);

    // DES cross-check: measured tte vs the admission prediction, for
    // jobs that ran undisturbed (the preempted job's tte includes its
    // parked time, which no admission model can see)
    let mut band_lo = f64::INFINITY;
    let mut band_hi = 0.0f64;
    for j in &completed {
        if j.id == preempt_id {
            continue;
        }
        let ratio = j.tte.expect("scored") / j.predicted;
        band_lo = band_lo.min(ratio);
        band_hi = band_hi.max(ratio);
    }
    assert!(
        band_lo > 0.005 && band_hi < 200.0,
        "DES admission predictions drifted out of the sanity band: \
         measured/predicted in [{band_lo:.4}, {band_hi:.4}]"
    );

    let books = service.per_tenant_serves();
    let rows: Vec<Vec<String>> = books
        .iter()
        .map(|&(t, s)| vec![t.to_string(), s.to_string()])
        .collect();
    println!("{}", render_table(&["tenant", "serves"], &rows));
    println!(
        "{} jobs in {wall:.2}s → {jobs_per_sec:.2} jobs/s, tte p50 {p50:.3}s p99 {p99:.3}s, \
         DES band [{band_lo:.3}, {band_hi:.3}] ✓",
        completed.len()
    );

    // 4. artifacts
    let mut json = BenchJson::new();
    json.field_str("experiment", "pr10_service_bench")
        .field("seed", args.seed)
        .field("tenants", 4)
        .field("jobs_submitted", jobs.len())
        .field("jobs_completed", completed.len())
        .field("jobs_cancelled", 1)
        .field("jobs_preempted", tracer.counter(Counter::JobsPreempted))
        .field("jobs_admitted", tracer.counter(Counter::JobsAdmitted))
        .field("jobs_rejected", tracer.counter(Counter::JobsRejected))
        .field("wall_seconds", format!("{wall:.6}"))
        .field("jobs_per_sec", format!("{jobs_per_sec:.6}"))
        .field("tte_p50_seconds", format!("{p50:.6}"))
        .field("tte_p99_seconds", format!("{p99:.6}"))
        .field("des_band_lo", format!("{band_lo:.6}"))
        .field("des_band_hi", format!("{band_hi:.6}"))
        .array(
            "per_tenant_serves",
            &books
                .iter()
                .map(|&(t, s)| format!("{{ \"tenant\": {t}, \"serves\": {s} }}"))
                .collect::<Vec<_>>(),
        );
    write_bench(&args.out_dir, "BENCH_PR10.json", &json.finish());

    if let Some(name) = &args.metrics_out {
        let mut snap = MetricsSnapshot::capture("pr10 service mix", &tracer);
        snap.merge_service(&books);
        let mut doc = String::from("{\n\"schema\": \"uq-obs-metrics-v3\",\n\"service\": ");
        doc.push_str(snap.to_json().trim_end());
        doc.push_str("\n}\n");
        write_bench(&args.out_dir, name, &doc);
    }

    service.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
