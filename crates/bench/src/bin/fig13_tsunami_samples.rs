//! **Fig. 13**: accepted posterior samples of the source location per
//! level, with the running telescoping expectation and the reference
//! point (0, 0). A faster standalone version of the Table-4 run (which
//! also writes the full-quality CSV); defaults to small grids.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uq_bench::{to_csv, write_output, ExpArgs};
use uq_mlmcmc::{run_sequential, MlmcmcConfig};
use uq_swe::tohoku::{Resolution, TsunamiHierarchy};

fn main() {
    let args = ExpArgs::parse();
    let (resolution, samples, burn_in) = if args.paper {
        (Resolution::Reduced, vec![800, 450, 240], vec![100, 40, 20])
    } else {
        (
            Resolution::Custom([9, 15, 25]),
            vec![300, 150, 60],
            vec![40, 20, 10],
        )
    };
    println!("Fig. 13 — tsunami posterior samples per level");
    let hierarchy = TsunamiHierarchy::new(resolution);
    let config = MlmcmcConfig::new(samples).with_burn_in(burn_in).recording();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let report = run_sequential(&hierarchy, &config, &mut rng);

    let mut rows = Vec::new();
    for lvl in &report.levels {
        for s in &lvl.theta_samples {
            rows.push(vec![lvl.level as f64, s[0], s[1]]);
        }
    }
    write_output(
        &args.out_dir,
        "fig13_tsunami_samples.csv",
        &to_csv("level,theta_x,theta_y", &rows),
    );
    let partials = report.partial_sums();
    for (l, p) in partials.iter().enumerate() {
        println!(
            "level {l}: E up to level {l} = ({:+.2}, {:+.2}) km  [reference (0, 0)]",
            p[0], p[1]
        );
    }
}
