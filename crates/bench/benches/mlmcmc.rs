//! Criterion benchmarks of the MCMC/MLMCMC machinery itself: kernel
//! throughput, coupled-chain stepping, the communicator round-trip and
//! end-to-end mini multilevel runs (sequential, thread-parallel,
//! cooperative runtime, DES).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uq_mcmc::kernel::{mh_step, SamplingState};
use uq_mcmc::problem::GaussianTarget;
use uq_mcmc::proposal::GaussianRandomWalk;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::coupled::{build_chain_stack, MlChain};
use uq_mlmcmc::{run_sequential, LevelFactory, MlmcmcConfig};
use uq_parallel::comm::{RankCtx, Universe};
use uq_parallel::des::{simulate, DesConfig};
use uq_parallel::{run_parallel, run_runtime, ParallelConfig, RuntimeConfig, Tracer};

struct Hierarchy;

impl LevelFactory for Hierarchy {
    fn n_levels(&self) -> usize {
        3
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        let mean = [0.6, 0.9, 1.0][level];
        Box::new(GaussianTarget::new(vec![mean; 4], 0.5))
    }
    fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
        Box::new(GaussianRandomWalk::new(0.5))
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        [8, 5, 0][level]
    }
    fn starting_point(&self, _level: usize) -> Vec<f64> {
        vec![0.0; 4]
    }
}

fn bench_mh_kernel(c: &mut Criterion) {
    let mut problem = GaussianTarget::standard(8);
    let mut proposal = GaussianRandomWalk::new(0.5);
    let mut rng = StdRng::seed_from_u64(1);
    let mut state = SamplingState::initial(&mut problem, vec![0.0; 8]);
    c.bench_function("mh_step_dim8", |b| {
        b.iter(|| {
            let (s, acc) = mh_step(&mut problem, &mut proposal, &state, &mut rng);
            state = s;
            black_box(acc)
        });
    });
}

fn bench_coupled_step(c: &mut Criterion) {
    let mut chain: MlChain = build_chain_stack(&Hierarchy, 2);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("coupled_stack_step_3level", |b| {
        b.iter(|| black_box(chain.step(&mut rng)));
    });
}

fn bench_sequential_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("sequential_3level", |b| {
        b.iter(|| {
            let config = MlmcmcConfig::new(vec![500, 100, 20]).with_burn_in(vec![50, 20, 5]);
            let mut rng = StdRng::seed_from_u64(3);
            black_box(run_sequential(&Hierarchy, &config, &mut rng))
        });
    });
    group.bench_function("parallel_3level", |b| {
        b.iter(|| {
            let mut config = ParallelConfig::new(vec![500, 100, 20], vec![1, 1, 1]);
            config.burn_in = vec![50, 20, 5];
            black_box(run_parallel(&Hierarchy, &config, &Tracer::disabled()))
        });
    });
    group.bench_function("runtime_3level", |b| {
        b.iter(|| {
            let mut config = RuntimeConfig::new(vec![500, 100, 20], vec![1, 1, 1]);
            config.base.burn_in = vec![50, 20, 5];
            config.n_workers = 2;
            black_box(run_runtime(&Hierarchy, &config, &Tracer::disabled()))
        });
    });
    group.bench_function("runtime_3level_24chains", |b| {
        b.iter(|| {
            let mut config = RuntimeConfig::new(vec![500, 100, 20], vec![12, 8, 4]);
            config.base.burn_in = vec![50, 20, 5];
            config.n_workers = 4;
            config.collector_shards = 2;
            black_box(run_runtime(&Hierarchy, &config, &Tracer::disabled()))
        });
    });
    group.finish();
}

fn bench_comm(c: &mut Criterion) {
    c.bench_function("comm_ping_pong_1000", |b| {
        b.iter(|| {
            let results = Universe::run(2, |mut ctx: RankCtx<u64>| {
                let peer = 1 - ctx.rank();
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    if ctx.rank() == 0 {
                        ctx.send(peer, i);
                        acc += ctx.recv().msg;
                    } else {
                        let v = ctx.recv().msg;
                        ctx.send(peer, v + 1);
                        acc += v;
                    }
                }
                acc
            });
            black_box(results)
        });
    });
}

fn bench_des(c: &mut Criterion) {
    let cfg = DesConfig {
        eval_time: vec![3.35e-3, 45.6e-3, 0.93],
        eval_jitter: 0.2,
        samples_per_level: vec![10_000, 1_000, 100],
        burn_in: vec![500, 100, 20],
        subsampling: vec![206, 17, 0],
        chains_per_level: vec![32, 8, 4],
        group_size: 1,
        phonebook_service_time: 2e-4,
        collector_service_time: 1e-3,
        load_balancing: true,
        seed: 4,
        ledger: false,
        ledger_pairing_overhead: 0.0,
        spec_hit_rate: 0.0,
        spec_waste: 0.0,
    };
    c.bench_function("des_poisson_schedule_44chains", |b| {
        b.iter(|| black_box(simulate(&cfg)));
    });
}

criterion_group!(
    benches,
    bench_mh_kernel,
    bench_coupled_step,
    bench_sequential_run,
    bench_comm,
    bench_des
);
criterion_main!(benches);
