//! Criterion micro-benchmarks of the numerical kernels underneath the
//! MLMCMC stack: sparse mat-vec, stiffness assembly (COO rebuild vs
//! in-place refill), preconditioned CG (plain/SSOR/multigrid), the MG
//! V-cycle, FFT, KL tabulation and Gaussian sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uq_bench::pipeline_bench::{bench_hierarchy, bench_kappa};
use uq_fem::assembly::assemble;
use uq_fem::{StiffnessOperator, StructuredGrid};
use uq_linalg::fft::{fft_in_place, Complex};
use uq_linalg::prob::standard_normal_vec;
use uq_linalg::solvers::{cg, IdentityPrecond, SolverOptions, SsorPrecond};
use uq_randfield::KlField2d;

/// Per-κ operator update: legacy COO assembly + sort vs in-place refill
/// through the precomputed scatter map.
fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembly");
    for n in [16usize, 64] {
        let grid = StructuredGrid::new(n);
        let kappa = bench_kappa(&grid);
        group.bench_with_input(BenchmarkId::new("coo_sort", n), &n, |b, _| {
            b.iter(|| black_box(assemble(&grid, &kappa)));
        });
        group.bench_with_input(BenchmarkId::new("refill", n), &n, |b, _| {
            let mut op = StiffnessOperator::new(&grid);
            b.iter(|| {
                op.refill(black_box(&kappa));
                black_box(op.matrix().nnz())
            });
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_matvec");
    for n in [16usize, 64, 128] {
        let grid = StructuredGrid::new(n);
        let kappa = vec![1.0; grid.n_elements()];
        let sys = assemble(&grid, &kappa);
        let x = vec![1.0; grid.n_nodes()];
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            let mut y = vec![0.0; grid.n_nodes()];
            b.iter(|| sys.matrix.matvec_into(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_cg");
    group.sample_size(20);
    for n in [16usize, 64] {
        let grid = StructuredGrid::new(n);
        let kappa = bench_kappa(&grid);
        let sys = assemble(&grid, &kappa);
        group.bench_with_input(BenchmarkId::new("ssor", n), &n, |b, _| {
            let pre = SsorPrecond::new(&sys.matrix, 1.0);
            b.iter(|| {
                let r = cg(&sys.matrix, &sys.rhs, None, &pre, SolverOptions::default());
                assert!(r.converged);
                black_box(r.x)
            });
        });
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| {
                let r = cg(
                    &sys.matrix,
                    &sys.rhs,
                    None,
                    &IdentityPrecond,
                    SolverOptions::default(),
                );
                assert!(r.converged);
                black_box(r.x)
            });
        });
        group.bench_with_input(BenchmarkId::new("mg", n), &n, |b, _| {
            let h = bench_hierarchy(n);
            b.iter(|| {
                let r = cg(h.matrix(0), &sys.rhs, None, &h, SolverOptions::default());
                assert!(r.converged);
                black_box(r.x)
            });
        });
    }
    group.finish();
}

/// Single V-cycle application (the per-CG-iteration preconditioner cost).
fn bench_vcycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mg_vcycle");
    for n in [16usize, 64] {
        let h = bench_hierarchy(n);
        let nodes = (n + 1) * (n + 1);
        let r: Vec<f64> = (0..nodes).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut z = vec![0.0; nodes];
            b.iter(|| {
                h.vcycle_into(black_box(&r), &mut z);
                black_box(z[nodes / 2])
            });
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 4096] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fft_in_place(&mut d, false);
                black_box(d)
            });
        });
    }
    group.finish();
}

fn bench_kl(c: &mut Criterion) {
    let field = KlField2d::new(0.15, 1.0, 113);
    let grid = StructuredGrid::new(64);
    let centers = grid.element_centers();
    c.bench_function("kl_tabulate_64x64_m113", |b| {
        b.iter(|| black_box(field.tabulate(&centers)));
    });
    let phi = field.tabulate(&centers);
    let mut rng = StdRng::seed_from_u64(1);
    let theta = standard_normal_vec(&mut rng, 113);
    c.bench_function("kl_field_eval_matvec", |b| {
        b.iter(|| black_box(phi.matvec(&theta)));
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("standard_normal_113", |b| {
        b.iter(|| black_box(standard_normal_vec(&mut rng, 113)));
    });
}

criterion_group!(
    benches,
    bench_spmv,
    bench_assembly,
    bench_cg,
    bench_vcycle,
    bench_fft,
    bench_kl,
    bench_sampling
);
criterion_main!(benches);
