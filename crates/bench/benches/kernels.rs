//! Criterion micro-benchmarks of the numerical kernels underneath the
//! MLMCMC stack: sparse mat-vec, preconditioned CG, FFT, KL tabulation
//! and Gaussian sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uq_fem::assembly::assemble;
use uq_fem::StructuredGrid;
use uq_linalg::fft::{fft_in_place, Complex};
use uq_linalg::prob::standard_normal_vec;
use uq_linalg::solvers::{cg, IdentityPrecond, SolverOptions, SsorPrecond};
use uq_randfield::KlField2d;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_matvec");
    for n in [16usize, 64, 128] {
        let grid = StructuredGrid::new(n);
        let kappa = vec![1.0; grid.n_elements()];
        let sys = assemble(&grid, &kappa);
        let x = vec![1.0; grid.n_nodes()];
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            let mut y = vec![0.0; grid.n_nodes()];
            b.iter(|| sys.matrix.matvec_into(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_cg");
    group.sample_size(20);
    for n in [16usize, 64] {
        let grid = StructuredGrid::new(n);
        let kappa: Vec<f64> = (0..grid.n_elements())
            .map(|e| 1.0 + 0.5 * ((e % 7) as f64 / 7.0))
            .collect();
        let sys = assemble(&grid, &kappa);
        group.bench_with_input(BenchmarkId::new("ssor", n), &n, |b, _| {
            let pre = SsorPrecond::new(&sys.matrix, 1.0);
            b.iter(|| {
                let r = cg(&sys.matrix, &sys.rhs, None, &pre, SolverOptions::default());
                assert!(r.converged);
                black_box(r.x)
            });
        });
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| {
                let r = cg(
                    &sys.matrix,
                    &sys.rhs,
                    None,
                    &IdentityPrecond,
                    SolverOptions::default(),
                );
                assert!(r.converged);
                black_box(r.x)
            });
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 4096] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fft_in_place(&mut d, false);
                black_box(d)
            });
        });
    }
    group.finish();
}

fn bench_kl(c: &mut Criterion) {
    let field = KlField2d::new(0.15, 1.0, 113);
    let grid = StructuredGrid::new(64);
    let centers = grid.element_centers();
    c.bench_function("kl_tabulate_64x64_m113", |b| {
        b.iter(|| black_box(field.tabulate(&centers)));
    });
    let phi = field.tabulate(&centers);
    let mut rng = StdRng::seed_from_u64(1);
    let theta = standard_normal_vec(&mut rng, 113);
    c.bench_function("kl_field_eval_matvec", |b| {
        b.iter(|| black_box(phi.matvec(&theta)));
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("standard_normal_113", |b| {
        b.iter(|| black_box(standard_normal_vec(&mut rng, 113)));
    });
}

criterion_group!(
    benches,
    bench_spmv,
    bench_cg,
    bench_fft,
    bench_kl,
    bench_sampling
);
criterion_main!(benches);
