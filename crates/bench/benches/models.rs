//! Criterion benchmarks of the forward models: the per-level costs that
//! become the `t_l` columns of the paper's Tables 3 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uq_bench::pipeline_bench::{theta_chain, LegacyForward};
use uq_fem::PoissonModel;
use uq_randfield::circulant::Circulant2d;
use uq_randfield::KlField2d;
use uq_swe::solver::{Boundary, Scheme, SweSolver, SweState};
use uq_swe::tohoku::{Resolution, TsunamiModel};
use uq_swe::Grid2d;

fn bench_poisson_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_forward");
    group.sample_size(10);
    let field = KlField2d::new(0.15, 1.0, 113);
    let thetas = theta_chain(1, 113, 16);
    // level 0 and 1 of the paper's hierarchy (level 2 is benched by the
    // table3 experiment binary; it is too slow for criterion's defaults)
    for n in [16usize, 64] {
        let mut model = PoissonModel::new(n, &field);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut k = 0;
            b.iter(|| {
                let theta = &thetas[k % thetas.len()];
                k += 1;
                black_box(model.forward(theta))
            });
        });
    }
    group.finish();
}

/// The pre-PR-2 pipeline (see [`LegacyForward`]) for comparison with
/// `poisson_forward`, driven by the same θ chain.
fn bench_poisson_forward_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_forward_legacy");
    group.sample_size(10);
    let field = KlField2d::new(0.15, 1.0, 113);
    let thetas = theta_chain(1, 113, 16);
    for n in [16usize, 64] {
        let model = PoissonModel::new(n, &field);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut legacy = LegacyForward::new(&model);
            let mut k = 0;
            b.iter(|| {
                let theta = &thetas[k % thetas.len()];
                k += 1;
                black_box(legacy.step(&model, theta))
            });
        });
    }
    group.finish();
}

fn bench_swe_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("swe_step");
    for (name, scheme) in [
        ("first_order", Scheme::FirstOrder),
        ("second_order", Scheme::SecondOrder { limiter: false }),
        (
            "second_order_limited",
            Scheme::SecondOrder { limiter: true },
        ),
    ] {
        let grid = Grid2d::new(64, 64, (0.0, 1000.0), (0.0, 1000.0));
        let bathy = vec![-100.0; grid.n_cells()];
        let mut state = SweState::lake_at_rest(&bathy, 0.0);
        for j in 0..64 {
            for i in 0..64 {
                let (x, y) = grid.center(i, j);
                let r2 = ((x - 500.0) / 100.0).powi(2) + ((y - 500.0) / 100.0).powi(2);
                state.h[grid.idx(i, j)] += (-r2).exp();
            }
        }
        group.bench_function(name, |b| {
            let mut solver = SweSolver::new(
                grid.clone(),
                bathy.clone(),
                state.clone(),
                scheme,
                Boundary::Outflow,
            );
            b.iter(|| {
                solver.step();
                black_box(solver.time())
            });
        });
    }
    group.finish();
}

fn bench_tsunami_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsunami_forward_tiny");
    group.sample_size(10);
    for level in 0..3 {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, _| {
            let mut model = TsunamiModel::new(level, Resolution::Custom([9, 13, 17]));
            b.iter(|| black_box(model.forward(&[0.0, 0.0])));
        });
    }
    group.finish();
}

fn bench_randfield(c: &mut Criterion) {
    let circ = Circulant2d::new(65, 65, 1.0 / 64.0, 1.0 / 64.0, |dx, dy| {
        (-(dx + dy) / 0.15).exp()
    })
    .expect("embedding");
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("circulant2d_sample_65x65", |b| {
        b.iter(|| black_box(circ.sample(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_poisson_forward,
    bench_poisson_forward_legacy,
    bench_swe_step,
    bench_tsunami_forward,
    bench_randfield
);
criterion_main!(benches);
