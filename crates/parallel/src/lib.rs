//! # uq-parallel
//!
//! The paper's parallelization strategy for multilevel MCMC (Section 4),
//! rebuilt on an in-process rank substrate:
//!
//! * [`comm`] — the message-passing layer standing in for MPI: ranks are
//!   threads, point-to-point sends are channels, and `recv_match` gives
//!   the tag-matching receive semantics the role protocols need. The
//!   substitution is documented in DESIGN.md: Rust MPI bindings are thin
//!   and no cluster is available, but the scheduling logic and
//!   communication pattern — the paper's contribution — are preserved.
//! * [`scheduler`] — the process architecture of paper Fig. 8: one
//!   **root**, one **phonebook** (sample routing + dynamic load
//!   balancing), per-level **collectors** (distributed moment
//!   accumulation) and chain groups (**controllers**) running the coupled
//!   kernels from `uq-mlmcmc`, with coarse proposals requested across
//!   controllers through the phonebook.
//! * [`runtime`] — the cooperative virtual-rank runtime: suspendable
//!   state machines multiplexed over a small worker pool, so
//!   hundreds-to-thousands of ranks run **live** on a handful of cores.
//! * [`roles`] — the same role protocols ported onto the runtime, with
//!   batched phonebook routing and per-level sharded collectors
//!   (`run_runtime` is the drop-in peer of `run_parallel`).
//! * [`obs`] — the observability layer: per-rank activity spans (the data
//!   behind the paper's Fig. 9 Gantt chart), counters and histograms,
//!   shared by all three backends and exportable as Chrome trace JSON
//!   and metrics snapshots. Zero-cost when disabled, and recording
//!   never perturbs the computation (bit-parity pinned by tests).
//! * [`des`] — a discrete-event simulator replaying the same scheduling
//!   policy in virtual time, used to reproduce the strong/weak scaling
//!   studies (Figs. 11–12) beyond any hardware.
//! * [`net`] — the multi-process TCP transport: the same role protocols
//!   over length-prefixed, checksummed frames, assembling one logical
//!   universe from a driver plus N worker processes, with elastic
//!   join/leave at checkpoint barriers via phonebook session migration.
//! * [`service`] — the always-on multi-tenant UQ service: many
//!   concurrent inversion jobs multiplexed over one shared worker pool
//!   with fair-share + priority dispatch, DES admission control on
//!   measured load, per-tenant seed/ledger isolation, and graceful
//!   preemption through the quiesce-barrier snapshots (preempted jobs
//!   resume bit-identically). Remote clients speak [`ServiceFrame`]s
//!   in the `net` frame format.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod comm;
pub mod des;
pub mod net;
pub mod obs;
pub mod roles;
pub mod runtime;
pub mod scheduler;
pub mod service;

pub use comm::{Envelope, RankCtx, Universe, UniverseStats};
pub use net::{
    decode_frame, encode_frame, levels_digest, report_digest, run_net_worker, Frame, NetDriver,
    NetDriverOptions, NetReport, NetWorkerOptions, NetWorkerReport, PROTOCOL_VERSION,
};
pub use obs::{
    chrome_trace, Counter, Epoch, Hist, HistSnapshot, MetricsSnapshot, ObservedFactory, SpanKind,
    TraceEvent, Tracer,
};
pub use roles::{
    run_runtime, run_runtime_ckpt, run_runtime_ckpt_on, run_runtime_on, RuntimeConfig,
    RuntimeReport,
};
pub use runtime::{Poll, Runtime, RuntimeStats, StealProbe, VCtx, VirtualRank};
pub use scheduler::{
    run_parallel, run_parallel_ckpt, ParallelCheckpoint, ParallelConfig, ParallelReport,
};
pub use service::{
    decode_service_frame, encode_service_frame, JobId, JobSpec, JobState, JobStatus, Service,
    ServiceClient, ServiceConfig, ServiceFrame, SERVICE_PROTOCOL_VERSION,
};
