//! Unified observability: spans, counters and histograms across all
//! three backends (sequential estimator, thread scheduler, cooperative
//! runtime), the ledger/phonebook and the checkpoint barrier.
//!
//! Grown from the skeletal per-rank tracer behind the paper's Fig. 9
//! Gantt chart into a common sink for everything the scheduling stack
//! can measure:
//!
//! * **Spans** ([`SpanKind`]) — what a rank was doing and when:
//!   evaluations, burn-in, (speculative) serves, work steals, quiesce
//!   pauses and checkpoint assembly, each tagged with rank + level.
//! * **Counters** ([`Counter`]) — monotone totals: serves, write-backs,
//!   speculation hits/misses/launches, steals, dropped sends, barrier
//!   acks. Some are incremented live at the instrumentation site, the
//!   rest are merged from the authoritative subsystem statistics
//!   (`LedgerStats`, `RuntimeStats`) at snapshot time — so equalities
//!   like *serves == write-backs* genuinely cross-check two independent
//!   accounting paths.
//! * **Histograms** ([`Hist`]) — log₂-bucketed distributions of serve
//!   latency, coarse-request wait, per-evaluation solve time and MG-CG
//!   iteration counts.
//!
//! Two hard design rules, pinned by `tests/obs_conformance.rs`:
//!
//! 1. **Zero-cost when disabled.** A disabled [`Tracer`] holds no sink
//!    at all: every record/incr/observe is a branch on `Option::None`
//!    and [`Tracer::now`] does not even read the clock.
//! 2. **Observation never perturbs the computation.** Recording takes
//!    no RNG draws, sends no messages and wakes no rank; the sink is
//!    sharded by rank so writers do not contend. Tracing-on runs are
//!    bit-for-bit identical to tracing-off runs on all three backends.
//!
//! Exporters: [`chrome_trace`] (trace-event JSON loadable in Perfetto /
//! `chrome://tracing`), [`MetricsSnapshot`] (a JSON metrics artifact for
//! `uq_bench::write_bench`) and the compact [`Tracer::progress_line`]
//! polled by `scaling_live --progress`.

use crate::runtime::RuntimeStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uq_mcmc::{Proposal, SamplingProblem};
use uq_mlmcmc::ledger::LedgerStats;
use uq_mlmcmc::LevelFactory;

// ---------------------------------------------------------------------
// epoch
// ---------------------------------------------------------------------

/// Monotonic time origin shared by every tracer of one logical run.
///
/// Previously each `Tracer` captured its own `Instant` at construction,
/// so traces from two backends (or from the two halves of a
/// checkpoint/resume pair) were not comparable. The driver now creates
/// one `Epoch` and hands it to every tracer: all timestamps are seconds
/// since that origin, and a resumed run can continue the clock of the
/// interrupted one via [`Epoch::resumed`] — which also keeps live spans
/// alignable with DES virtual time (both start at zero).
#[derive(Clone, Copy, Debug)]
pub struct Epoch {
    origin: Instant,
    offset: f64,
}

impl Epoch {
    /// An epoch starting now (timestamps count up from 0).
    pub fn now() -> Self {
        Self {
            origin: Instant::now(),
            offset: 0.0,
        }
    }

    /// An epoch whose clock continues at `offset` seconds — the wall
    /// time the interrupted run had already accumulated when its last
    /// snapshot was taken.
    pub fn resumed(offset: f64) -> Self {
        Self {
            origin: Instant::now(),
            offset,
        }
    }

    /// Seconds since the (possibly resumed) origin.
    pub fn elapsed(&self) -> f64 {
        self.offset + self.origin.elapsed().as_secs_f64()
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Self::now()
    }
}

// ---------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------

/// What a rank was doing during a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A forward-model evaluation on `level`.
    Eval { level: usize },
    /// Chain burn-in on `level` (Fig. 9's yellow boxes).
    Burnin { level: usize },
    /// Serving a coarse-proposal request.
    Serve { level: usize },
    /// A speculative accept-case serve (no requester on the critical
    /// path; the outcome parks in the phonebook's speculation store).
    Speculate { level: usize },
    /// Reassigned to a new level by the load balancer.
    Reassign { from: usize, to: usize },
    /// A runnable rank was stolen from worker `victim`'s run queue.
    Steal { victim: usize },
    /// Paused at a clean boundary for a checkpoint (quiesce interval:
    /// `Checkpoint` received → `CheckpointDone`).
    Quiesce,
    /// Root-side checkpoint barrier: first pause broadcast → snapshot
    /// persisted and `CheckpointDone` broadcast.
    Checkpoint,
}

impl SpanKind {
    /// Short stable name (CSV column, Chrome trace category).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Eval { .. } => "eval",
            SpanKind::Burnin { .. } => "burnin",
            SpanKind::Serve { .. } => "serve",
            SpanKind::Speculate { .. } => "speculate",
            SpanKind::Reassign { .. } => "reassign",
            SpanKind::Steal { .. } => "steal",
            SpanKind::Quiesce => "quiesce",
            SpanKind::Checkpoint => "checkpoint",
        }
    }

    /// The level-like payload rendered in the CSV's `level` column
    /// (`-1` where no level applies).
    fn level_col(self) -> isize {
        match self {
            SpanKind::Eval { level }
            | SpanKind::Burnin { level }
            | SpanKind::Serve { level }
            | SpanKind::Speculate { level } => level as isize,
            SpanKind::Reassign { to, .. } => to as isize,
            SpanKind::Steal { victim } => victim as isize,
            SpanKind::Quiesce | SpanKind::Checkpoint => -1,
        }
    }
}

/// One recorded activity span.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub rank: usize,
    pub kind: SpanKind,
    /// Seconds since the tracer epoch.
    pub start: f64,
    pub end: f64,
}

// ---------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------

/// Monotone event counters. `Serves`, `WriteBacks` and `BarrierAcks`
/// are incremented live at the instrumentation sites (controller serve
/// loop, phonebook `ServeDone` handler, root checkpoint barrier); the
/// speculation and runtime counters are merged from `LedgerStats` /
/// [`RuntimeStats`] when a [`MetricsSnapshot`] is assembled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Ledger serves executed by server chains (real + speculative).
    Serves,
    /// Serve outcomes applied by the phonebook (write-backs + stored
    /// speculations). Must equal `Serves` — counted at the *other* end
    /// of the message.
    WriteBacks,
    /// Checkpoint-barrier acknowledgements received by the root
    /// (controller pauses, collector flush markers, the ledger export).
    BarrierAcks,
    /// Speculative serves dispatched to idle servers.
    SpecLaunched,
    /// Requests answered from a stored speculation.
    SpecHits,
    /// Speculations discarded (anchor mismatch / stale / rewound).
    SpecMisses,
    /// Runnable ranks stolen by idle workers.
    Steals,
    /// Sends to already-exited ranks (observable shutdown loss).
    DroppedSends,
    // --- net transport counters (schema v2; appended at the end so
    // every v1 counter keeps its position and the v1 JSON fields stay
    // byte-stable) ---
    /// Frames written to peer sockets by this process.
    NetFramesOut,
    /// Frames read from peer sockets by this process.
    NetFramesIn,
    /// Bytes written to peer sockets (frame headers included).
    NetBytesOut,
    /// Bytes read from peer sockets (frame headers included).
    NetBytesIn,
    /// Sockets accepted beyond the initial rendezvous (elastic joiners).
    NetReconnects,
    /// Ranks migrated across processes at checkpoint barriers.
    NetMigrations,
    // --- multi-tenant service counters (schema v3; appended so every
    // v1/v2 counter keeps its position and their JSON fields stay
    // byte-stable) ---
    /// Service jobs admitted (`crate::service`).
    JobsAdmitted,
    /// Service jobs turned away at admission (tenant budget exhausted or
    /// DES-predicted time-to-estimate beyond the deadline).
    JobsRejected,
    /// Service jobs preempted at a quiesce barrier (each resume that is
    /// preempted again counts once more).
    JobsPreempted,
}

/// All counters, in `repr` order (the atomic array layout).
pub const COUNTERS: [Counter; 17] = [
    Counter::Serves,
    Counter::WriteBacks,
    Counter::BarrierAcks,
    Counter::SpecLaunched,
    Counter::SpecHits,
    Counter::SpecMisses,
    Counter::Steals,
    Counter::DroppedSends,
    Counter::NetFramesOut,
    Counter::NetFramesIn,
    Counter::NetBytesOut,
    Counter::NetBytesIn,
    Counter::NetReconnects,
    Counter::NetMigrations,
    Counter::JobsAdmitted,
    Counter::JobsRejected,
    Counter::JobsPreempted,
];

impl Counter {
    /// Stable snake_case name used in the metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Serves => "serves",
            Counter::WriteBacks => "write_backs",
            Counter::BarrierAcks => "barrier_acks",
            Counter::SpecLaunched => "spec_launched",
            Counter::SpecHits => "spec_hits",
            Counter::SpecMisses => "spec_misses",
            Counter::Steals => "steals",
            Counter::DroppedSends => "dropped_sends",
            Counter::NetFramesOut => "net_frames_out",
            Counter::NetFramesIn => "net_frames_in",
            Counter::NetBytesOut => "net_bytes_out",
            Counter::NetBytesIn => "net_bytes_in",
            Counter::NetReconnects => "net_reconnects",
            Counter::NetMigrations => "net_migrations",
            Counter::JobsAdmitted => "jobs_admitted",
            Counter::JobsRejected => "jobs_rejected",
            Counter::JobsPreempted => "jobs_preempted",
        }
    }
}

// ---------------------------------------------------------------------
// histograms
// ---------------------------------------------------------------------

/// Histogram identities. Time-valued histograms observe microseconds;
/// `MgCgIters` observes iteration counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Duration of one ledger serve (µs) — real and speculative; fed
    /// automatically from `Serve`/`Speculate` spans.
    ServeLatency,
    /// Requester-side wait between issuing a coarse request and the
    /// sample's arrival (µs).
    RequestWait,
    /// Duration of one own-chain step (µs) — fed automatically from
    /// `Eval`/`Burnin` spans; the per-level split lives in
    /// [`MetricsSnapshot::per_level`].
    SolveTime,
    /// MG-CG iterations per cold-start solve (observed by the bench
    /// harness, which is the layer that sees solver internals).
    MgCgIters,
}

/// All histograms, in `repr` order.
pub const HISTS: [Hist; 4] = [
    Hist::ServeLatency,
    Hist::RequestWait,
    Hist::SolveTime,
    Hist::MgCgIters,
];

impl Hist {
    /// Stable snake_case name used in the metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ServeLatency => "serve_latency_us",
            Hist::RequestWait => "request_wait_us",
            Hist::SolveTime => "solve_time_us",
            Hist::MgCgIters => "mg_cg_iters",
        }
    }
}

/// Log₂ bucket count: bucket `i` holds values in `[2^i, 2^(i+1))`
/// (bucket 0 additionally catches everything below 1).
const N_BUCKETS: usize = 40;

fn bucket_of(value: f64) -> usize {
    if value < 1.0 {
        0
    } else {
        (value.log2() as usize).min(N_BUCKETS - 1)
    }
}

/// One histogram's atomic cells: per-bucket counts plus a sum in
/// micro-units (fixed point, so a `fetch_add` suffices).
struct HistCell {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_milli: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: f64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_milli
            .fetch_add((value.max(0.0) * 1e3) as u64, Ordering::Relaxed);
    }
}

/// Immutable snapshot of one histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: f64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile (an upper
    /// bound on the true quantile, exact to within the 2x bucketing).
    pub fn quantile_ceil(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target && c > 0 {
                return 2f64.powi(i as i32 + 1);
            }
        }
        0.0
    }
}

// ---------------------------------------------------------------------
// the tracer
// ---------------------------------------------------------------------

/// Span shards: writers lock `shard = rank % N_SHARDS`, so ranks on
/// different shards never contend (and the common backends put every
/// role on its own shard entirely).
const N_SHARDS: usize = 16;

struct Sink {
    shards: [Mutex<Vec<TraceEvent>>; N_SHARDS],
    counters: [AtomicU64; COUNTERS.len()],
    hists: [HistCell; HISTS.len()],
}

/// Shared, thread-safe observability sink.
///
/// Cloning is cheap (an `Arc` handle). A [`disabled`](Tracer::disabled)
/// tracer holds no sink at all: every operation is a no-op behind one
/// `Option` check and [`now`](Tracer::now) returns 0 without touching
/// the clock — the zero-cost-when-off contract.
#[derive(Clone)]
pub struct Tracer {
    epoch: Epoch,
    sink: Option<Arc<Sink>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// An enabled tracer with its own fresh epoch.
    pub fn new() -> Self {
        Self::with_epoch(Epoch::now())
    }

    /// An enabled tracer on a driver-provided epoch — every tracer of
    /// one logical run should share the same one so their timestamps
    /// (and Chrome-trace timelines) are comparable.
    pub fn with_epoch(epoch: Epoch) -> Self {
        Self {
            epoch,
            sink: Some(Arc::new(Sink {
                shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| HistCell::new()),
            })),
        }
    }

    /// A tracer that drops everything (zero overhead in hot paths).
    pub fn disabled() -> Self {
        Self {
            epoch: Epoch::now(),
            sink: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// This tracer's epoch (hand it to sibling tracers / exporters).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Seconds since the epoch — 0 when disabled, so hot paths that
    /// bracket work with `now()`/`record()` pay nothing when off.
    pub fn now(&self) -> f64 {
        if self.sink.is_some() {
            self.epoch.elapsed()
        } else {
            0.0
        }
    }

    /// Record a span with explicit timestamps. `Serve`/`Speculate` and
    /// `Eval`/`Burnin` spans additionally feed the serve-latency and
    /// solve-time histograms (no extra instrumentation site needed).
    pub fn record(&self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        let Some(sink) = &self.sink else { return };
        let dur_us = (end - start) * 1e6;
        match kind {
            SpanKind::Serve { .. } | SpanKind::Speculate { .. } => {
                sink.hists[Hist::ServeLatency as usize].observe(dur_us);
            }
            SpanKind::Eval { .. } | SpanKind::Burnin { .. } => {
                sink.hists[Hist::SolveTime as usize].observe(dur_us);
            }
            _ => {}
        }
        sink.shards[rank % N_SHARDS].lock().push(TraceEvent {
            rank,
            kind,
            start,
            end,
        });
    }

    /// Record an instantaneous marker.
    pub fn mark(&self, rank: usize, kind: SpanKind) {
        if self.sink.is_some() {
            let t = self.now();
            self.record(rank, kind, t, t);
        }
    }

    /// Time a closure and record it as a span.
    pub fn span<R>(&self, rank: usize, kind: SpanKind, f: impl FnOnce() -> R) -> R {
        if self.sink.is_none() {
            return f();
        }
        let start = self.now();
        let out = f();
        self.record(rank, kind, start, self.now());
        out
    }

    /// Increment a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Add `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(sink) = &self.sink {
            sink.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.sink
            .as_ref()
            .map_or(0, |s| s.counters[counter as usize].load(Ordering::Relaxed))
    }

    /// Observe a histogram value (µs for the time histograms).
    pub fn observe(&self, hist: Hist, value: f64) {
        if let Some(sink) = &self.sink {
            sink.hists[hist as usize].observe(value);
        }
    }

    /// Snapshot one histogram.
    pub fn hist(&self, hist: Hist) -> HistSnapshot {
        let (count, sum, buckets) = self
            .sink
            .as_ref()
            .map_or((0, 0.0, vec![0; N_BUCKETS]), |s| {
                let cell = &s.hists[hist as usize];
                (
                    cell.count.load(Ordering::Relaxed),
                    cell.sum_milli.load(Ordering::Relaxed) as f64 / 1e3,
                    cell.buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                )
            });
        HistSnapshot {
            name: hist.name(),
            count,
            sum,
            buckets,
        }
    }

    /// Snapshot of all recorded events, sorted by start time (ties by
    /// rank, so the order is deterministic for identical timestamps).
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(sink) = &self.sink else {
            return Vec::new();
        };
        let mut evts: Vec<TraceEvent> = Vec::new();
        for shard in &sink.shards {
            evts.extend(shard.lock().iter().copied());
        }
        evts.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap()
                .then(a.rank.cmp(&b.rank))
        });
        evts
    }

    /// Total recorded spans (lock-taking; meant for progress polling
    /// and tests, not hot paths).
    pub fn n_events(&self) -> usize {
        self.sink
            .as_ref()
            .map_or(0, |s| s.shards.iter().map(|sh| sh.lock().len()).sum())
    }

    /// Render a CSV (`rank,kind,level,start,end`) for plotting Fig. 9.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,kind,level,start,end\n");
        for e in self.events() {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6}\n",
                e.rank,
                e.kind.name(),
                e.kind.level_col(),
                e.start,
                e.end
            ));
        }
        out
    }

    /// One compact status line for a live progress ticker (reads
    /// atomics and shard lengths only — never blocks the computation).
    pub fn progress_line(&self) -> String {
        format!(
            "t={:.1}s spans={} serves={} write_backs={} acks={}",
            self.epoch.elapsed(),
            self.n_events(),
            self.counter(Counter::Serves),
            self.counter(Counter::WriteBacks),
            self.counter(Counter::BarrierAcks),
        )
    }
}

// ---------------------------------------------------------------------
// sequential-backend instrumentation
// ---------------------------------------------------------------------

/// [`LevelFactory`] adapter instrumenting the **sequential** backend:
/// wraps every problem so each `log_density` call is recorded as an
/// `Eval` span on `rank` (the sequential estimator is one logical
/// rank). Pure pass-through otherwise — with a disabled tracer the
/// wrapper is observably identical to the inner factory, and with an
/// enabled one the computation itself is untouched (bit-parity pinned
/// by `tests/obs_conformance.rs`).
pub struct ObservedFactory<'a> {
    inner: &'a dyn LevelFactory,
    tracer: Tracer,
    rank: usize,
}

impl<'a> ObservedFactory<'a> {
    pub fn new(inner: &'a dyn LevelFactory, tracer: &Tracer, rank: usize) -> Self {
        Self {
            inner,
            tracer: tracer.clone(),
            rank,
        }
    }
}

impl LevelFactory for ObservedFactory<'_> {
    fn n_levels(&self) -> usize {
        self.inner.n_levels()
    }
    fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
        Box::new(ObservedProblem {
            inner: self.inner.problem(level),
            tracer: self.tracer.clone(),
            rank: self.rank,
            level,
        })
    }
    fn proposal(&self, level: usize) -> Box<dyn Proposal> {
        self.inner.proposal(level)
    }
    fn subsampling_rate(&self, level: usize) -> usize {
        self.inner.subsampling_rate(level)
    }
    fn starting_point(&self, level: usize) -> Vec<f64> {
        self.inner.starting_point(level)
    }
}

struct ObservedProblem {
    inner: Box<dyn SamplingProblem>,
    tracer: Tracer,
    rank: usize,
    level: usize,
}

impl SamplingProblem for ObservedProblem {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn log_density(&mut self, theta: &[f64]) -> f64 {
        let level = self.level;
        let rank = self.rank;
        let inner = &mut self.inner;
        self.tracer
            .span(rank, SpanKind::Eval { level }, || inner.log_density(theta))
    }
    fn qoi(&mut self, theta: &[f64]) -> Vec<f64> {
        self.inner.qoi(theta)
    }
    fn qoi_dim(&self) -> usize {
        self.inner.qoi_dim()
    }
}

// ---------------------------------------------------------------------
// exporters
// ---------------------------------------------------------------------

/// Render one or more tracers as Chrome trace-event JSON, loadable in
/// Perfetto / `chrome://tracing`. Each `(label, tracer)` pair becomes a
/// process (`pid` = index, named by a `process_name` metadata event);
/// ranks map to `tid`s. Spans become `ph:"X"` complete events with
/// microsecond `ts`/`dur`; instantaneous markers become `ph:"i"`
/// instant events. All tracers should share one [`Epoch`] so the
/// processes align on a common timeline.
pub fn chrome_trace(processes: &[(&str, &Tracer)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&s);
    };
    for (pid, (label, tracer)) in processes.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
            &mut out,
        );
        for e in tracer.events() {
            let ts = e.start * 1e6;
            let dur = (e.end - e.start) * 1e6;
            let name = e.kind.name();
            let mut args = String::new();
            match e.kind {
                SpanKind::Eval { level }
                | SpanKind::Burnin { level }
                | SpanKind::Serve { level }
                | SpanKind::Speculate { level } => {
                    write!(args, "\"level\":{level}").unwrap();
                }
                SpanKind::Reassign { from, to } => {
                    write!(args, "\"from\":{from},\"to\":{to}").unwrap();
                }
                SpanKind::Steal { victim } => write!(args, "\"victim\":{victim}").unwrap(),
                SpanKind::Quiesce | SpanKind::Checkpoint => {}
            }
            let ev = if dur > 0.0 {
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{{args}}}}}",
                    e.rank
                )
            } else {
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{ts:.3},\"args\":{{{args}}}}}",
                    e.rank
                )
            };
            push(ev, &mut out);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Per-rank busy time split by activity (seconds).
#[derive(Clone, Debug, Default)]
pub struct RankActivity {
    pub rank: usize,
    pub eval: f64,
    pub burnin: f64,
    pub serve: f64,
    pub speculate: f64,
    pub quiesce: f64,
}

impl RankActivity {
    /// Productive busy seconds (everything except quiesce pauses).
    pub fn busy(&self) -> f64 {
        self.eval + self.burnin + self.serve + self.speculate
    }
}

/// Per-level busy time split by activity (seconds) plus span counts.
#[derive(Clone, Debug, Default)]
pub struct LevelActivity {
    pub level: usize,
    pub eval: f64,
    pub burnin: f64,
    pub serve: f64,
    pub eval_spans: usize,
}

impl LevelActivity {
    pub fn busy(&self) -> f64 {
        self.eval + self.burnin + self.serve
    }
}

/// A complete metrics export: counters, histograms and the span-derived
/// per-rank / per-level activity tables, rendered to JSON for
/// `uq_bench::write_bench` (which also indexes it in the run-store
/// manifest).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    pub label: String,
    /// Wall-clock seconds covered (epoch time of the snapshot).
    pub wall: f64,
    pub counters: Vec<(&'static str, u64)>,
    pub histograms: Vec<HistSnapshot>,
    pub per_rank: Vec<RankActivity>,
    pub per_level: Vec<LevelActivity>,
    /// Per-tenant serve counts `(tenant, serves)` merged from the
    /// multi-tenant service (schema v3; empty outside a service run).
    pub per_tenant: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Assemble from a tracer: live counters, histograms, and the
    /// per-rank / per-level activity splits derived from spans.
    pub fn capture(label: &str, tracer: &Tracer) -> Self {
        let events = tracer.events();
        let mut per_rank: Vec<RankActivity> = Vec::new();
        let mut per_level: Vec<LevelActivity> = Vec::new();
        let rank_slot = |rank: usize, v: &mut Vec<RankActivity>| -> usize {
            match v.iter().position(|r| r.rank == rank) {
                Some(i) => i,
                None => {
                    v.push(RankActivity {
                        rank,
                        ..RankActivity::default()
                    });
                    v.len() - 1
                }
            }
        };
        for e in &events {
            let dur = e.end - e.start;
            let ri = rank_slot(e.rank, &mut per_rank);
            match e.kind {
                SpanKind::Eval { level } => {
                    per_rank[ri].eval += dur;
                    level_slot(level, &mut per_level).eval += dur;
                    level_slot(level, &mut per_level).eval_spans += 1;
                }
                SpanKind::Burnin { level } => {
                    per_rank[ri].burnin += dur;
                    level_slot(level, &mut per_level).burnin += dur;
                }
                SpanKind::Serve { level } | SpanKind::Speculate { level } => {
                    if matches!(e.kind, SpanKind::Serve { .. }) {
                        per_rank[ri].serve += dur;
                    } else {
                        per_rank[ri].speculate += dur;
                    }
                    level_slot(level, &mut per_level).serve += dur;
                }
                SpanKind::Quiesce => per_rank[ri].quiesce += dur,
                SpanKind::Reassign { .. } | SpanKind::Steal { .. } | SpanKind::Checkpoint => {}
            }
        }
        per_rank.sort_by_key(|r| r.rank);
        per_level.sort_by_key(|l| l.level);
        Self {
            label: label.to_string(),
            wall: tracer.now(),
            counters: COUNTERS
                .iter()
                .map(|&c| (c.name(), tracer.counter(c)))
                .collect(),
            histograms: HISTS.iter().map(|&h| tracer.hist(h)).collect(),
            per_rank,
            per_level,
            per_tenant: Vec::new(),
        }
    }

    fn counter_mut(&mut self, c: Counter) -> &mut u64 {
        &mut self
            .counters
            .iter_mut()
            .find(|(n, _)| *n == c.name())
            .expect("capture() populates every counter")
            .1
    }

    /// Named counter value (0 if absent).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == c.name())
            .map_or(0, |&(_, v)| v)
    }

    /// Merge the ledger's authoritative speculation statistics (the
    /// live `Serves`/`WriteBacks` counters are deliberately *not*
    /// overwritten — their equality with `LedgerStats::serves` is the
    /// cross-source sanity check).
    pub fn merge_ledger(&mut self, stats: &LedgerStats) -> &mut Self {
        *self.counter_mut(Counter::SpecLaunched) += stats.spec_launched as u64;
        *self.counter_mut(Counter::SpecHits) += stats.spec_hits as u64;
        *self.counter_mut(Counter::SpecMisses) += stats.spec_misses as u64;
        self
    }

    /// Merge the runtime pool's authoritative counters.
    pub fn merge_runtime(&mut self, stats: &RuntimeStats) -> &mut Self {
        *self.counter_mut(Counter::Steals) += stats.steals as u64;
        *self.counter_mut(Counter::DroppedSends) += stats.dropped_sends as u64;
        self
    }

    /// Merge the service's per-tenant serve accounting (schema v3):
    /// `(tenant, serves)` rows, accumulated into any rows already
    /// present and kept sorted by tenant id.
    pub fn merge_service(&mut self, per_tenant: &[(u64, u64)]) -> &mut Self {
        for &(tenant, serves) in per_tenant {
            match self.per_tenant.iter_mut().find(|(t, _)| *t == tenant) {
                Some(row) => row.1 += serves,
                None => self.per_tenant.push((tenant, serves)),
            }
        }
        self.per_tenant.sort_by_key(|&(t, _)| t);
        self
    }

    /// Render as a standalone JSON document (hand-rolled: the offline
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        writeln!(out, "  \"label\": \"{}\",", self.label).unwrap();
        writeln!(out, "  \"wall_s\": {:.6},", self.wall).unwrap();
        out.push_str("  \"counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            writeln!(out, "    \"{name}\": {v}{comma}").unwrap();
        }
        out.push_str("  },\n  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 == self.histograms.len() {
                ""
            } else {
                ","
            };
            // trim trailing empty buckets for readability
            let used = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |p| p + 1);
            writeln!(
                out,
                "    {{ \"name\": \"{}\", \"count\": {}, \"mean\": {:.3}, \
                 \"p50_le\": {:.0}, \"p99_le\": {:.0}, \"log2_buckets\": {:?} }}{comma}",
                h.name,
                h.count,
                h.mean(),
                h.quantile_ceil(0.5),
                h.quantile_ceil(0.99),
                &h.buckets[..used]
            )
            .unwrap();
        }
        out.push_str("  ],\n  \"per_rank\": [\n");
        for (i, r) in self.per_rank.iter().enumerate() {
            let comma = if i + 1 == self.per_rank.len() {
                ""
            } else {
                ","
            };
            writeln!(
                out,
                "    {{ \"rank\": {}, \"eval_s\": {:.6}, \"burnin_s\": {:.6}, \
                 \"serve_s\": {:.6}, \"speculate_s\": {:.6}, \"quiesce_s\": {:.6}, \
                 \"utilization\": {:.4} }}{comma}",
                r.rank,
                r.eval,
                r.burnin,
                r.serve,
                r.speculate,
                r.quiesce,
                if self.wall > 0.0 {
                    r.busy() / self.wall
                } else {
                    0.0
                }
            )
            .unwrap();
        }
        out.push_str("  ],\n  \"per_level\": [\n");
        for (i, l) in self.per_level.iter().enumerate() {
            let comma = if i + 1 == self.per_level.len() {
                ""
            } else {
                ","
            };
            writeln!(
                out,
                "    {{ \"level\": {}, \"eval_s\": {:.6}, \"burnin_s\": {:.6}, \
                 \"serve_s\": {:.6}, \"eval_spans\": {} }}{comma}",
                l.level, l.eval, l.burnin, l.serve, l.eval_spans
            )
            .unwrap();
        }
        // schema v3 addition, emitted after every v1/v2 field so their
        // positions stay byte-stable
        out.push_str("  ],\n  \"per_tenant\": [\n");
        for (i, (tenant, serves)) in self.per_tenant.iter().enumerate() {
            let comma = if i + 1 == self.per_tenant.len() {
                ""
            } else {
                ","
            };
            writeln!(
                out,
                "    {{ \"tenant\": {tenant}, \"serves\": {serves} }}{comma}"
            )
            .unwrap();
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn level_slot(level: usize, v: &mut Vec<LevelActivity>) -> &mut LevelActivity {
    let i = match v.iter().position(|l| l.level == level) {
        Some(i) => i,
        None => {
            v.push(LevelActivity {
                level,
                ..LevelActivity::default()
            });
            v.len() - 1
        }
    };
    &mut v[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans() {
        let t = Tracer::new();
        t.record(3, SpanKind::Eval { level: 1 }, 0.0, 0.5);
        t.record(2, SpanKind::Burnin { level: 0 }, 0.1, 0.2);
        let evts = t.events();
        assert_eq!(evts.len(), 2);
        assert_eq!(evts[0].rank, 3); // sorted by start
    }

    #[test]
    fn disabled_tracer_drops_everything_and_reads_no_clock() {
        let t = Tracer::disabled();
        t.record(0, SpanKind::Eval { level: 0 }, 0.0, 1.0);
        t.incr(Counter::Serves);
        t.observe(Hist::ServeLatency, 3.0);
        assert!(t.events().is_empty());
        assert_eq!(t.counter(Counter::Serves), 0);
        assert_eq!(t.hist(Hist::ServeLatency).count, 0);
        assert_eq!(t.now(), 0.0);
    }

    #[test]
    fn span_times_closure() {
        let t = Tracer::new();
        let v = t.span(1, SpanKind::Serve { level: 2 }, || 42);
        assert_eq!(v, 42);
        let evts = t.events();
        assert_eq!(evts.len(), 1);
        assert!(evts[0].end >= evts[0].start);
        // serve spans feed the latency histogram automatically
        assert_eq!(t.hist(Hist::ServeLatency).count, 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = Tracer::new();
        t.record(0, SpanKind::Eval { level: 2 }, 0.0, 1.0);
        t.record(1, SpanKind::Reassign { from: 0, to: 2 }, 1.0, 1.0);
        t.record(2, SpanKind::Quiesce, 1.5, 2.0);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "rank,kind,level,start,end");
        assert!(lines[1].starts_with("0,eval,2,"));
        assert!(lines[3].starts_with("2,quiesce,-1,"));
    }

    #[test]
    fn tracer_is_shareable_across_threads() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for rank in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    t.mark(rank, SpanKind::Burnin { level: 0 });
                    t.incr(Counter::WriteBacks);
                });
            }
        });
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.counter(Counter::WriteBacks), 4);
    }

    #[test]
    fn resumed_epoch_continues_the_clock() {
        let t = Tracer::with_epoch(Epoch::resumed(100.0));
        assert!(t.now() >= 100.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let t = Tracer::new();
        for v in [1.0, 2.0, 3.0, 500.0] {
            t.observe(Hist::RequestWait, v);
        }
        let h = t.hist(Hist::RequestWait);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 126.5).abs() < 0.1);
        assert_eq!(h.buckets[0], 1); // 1.0
        assert_eq!(h.buckets[1], 2); // 2.0, 3.0
        assert_eq!(h.buckets[8], 1); // 500.0 in [256, 512)
        assert_eq!(h.quantile_ceil(0.5) as u64, 4);
        assert_eq!(h.quantile_ceil(1.0) as u64, 512);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let t = Tracer::new();
        t.record(5, SpanKind::Eval { level: 1 }, 0.001, 0.002);
        t.record(1, SpanKind::Reassign { from: 1, to: 0 }, 0.003, 0.003);
        let json = chrome_trace(&[("thread", &t), ("runtime", &Tracer::new())]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"tid\":5"));
        // braces balance (cheap well-formedness check; the CI pipeline
        // additionally runs a real JSON parse over the emitted artifact)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_aggregates_and_merges() {
        let t = Tracer::new();
        t.record(4, SpanKind::Eval { level: 1 }, 0.0, 2.0);
        t.record(4, SpanKind::Serve { level: 0 }, 2.0, 3.0);
        t.record(5, SpanKind::Speculate { level: 0 }, 0.0, 0.5);
        t.record(4, SpanKind::Quiesce, 3.0, 3.25);
        t.incr(Counter::Serves);
        t.incr(Counter::Serves);
        t.incr(Counter::WriteBacks);
        let mut snap = MetricsSnapshot::capture("test", &t);
        assert_eq!(snap.counter(Counter::Serves), 2);
        let r4 = snap.per_rank.iter().find(|r| r.rank == 4).unwrap();
        assert!((r4.eval - 2.0).abs() < 1e-12);
        assert!((r4.serve - 1.0).abs() < 1e-12);
        assert!((r4.quiesce - 0.25).abs() < 1e-12);
        let l0 = snap.per_level.iter().find(|l| l.level == 0).unwrap();
        assert!((l0.serve - 1.5).abs() < 1e-12);
        snap.merge_runtime(&RuntimeStats {
            polls: 0,
            wakeups: 0,
            dropped_sends: 3,
            steals: 7,
        });
        assert_eq!(snap.counter(Counter::Steals), 7);
        assert_eq!(snap.counter(Counter::DroppedSends), 3);
        let json = snap.to_json();
        assert!(json.contains("\"serves\": 2"));
        assert!(json.contains("\"per_rank\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn observed_factory_passes_through_and_records() {
        use uq_mcmc::problem::GaussianTarget;
        struct F;
        impl LevelFactory for F {
            fn n_levels(&self) -> usize {
                1
            }
            fn problem(&self, _: usize) -> Box<dyn SamplingProblem> {
                Box::new(GaussianTarget {
                    mean: vec![0.0],
                    sd: 1.0,
                })
            }
            fn proposal(&self, _: usize) -> Box<dyn Proposal> {
                Box::new(uq_mcmc::GaussianRandomWalk::new(0.5))
            }
            fn subsampling_rate(&self, _: usize) -> usize {
                1
            }
            fn starting_point(&self, _: usize) -> Vec<f64> {
                vec![0.0]
            }
        }
        let t = Tracer::new();
        let f = ObservedFactory::new(&F, &t, 0);
        let mut p = f.problem(0);
        let mut q = F.problem(0);
        // identical densities, one Eval span per call
        assert_eq!(
            p.log_density(&[0.3]).to_bits(),
            q.log_density(&[0.3]).to_bits()
        );
        assert_eq!(p.qoi(&[0.3]), q.qoi(&[0.3]));
        assert_eq!(t.events().len(), 1);
        assert!(matches!(t.events()[0].kind, SpanKind::Eval { level: 0 }));
    }
}
