//! In-process rank substrate: the MPI stand-in.
//!
//! A [`Universe`] owns one unbounded channel per rank; each rank runs on
//! its own OS thread with a [`RankCtx`] handle providing point-to-point
//! `send`, blocking `recv`, predicate-matching `recv_match` (the analogue
//! of tagged `MPI_Recv`, with out-of-order messages buffered) and
//! non-blocking `try_recv`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// A delivered message with its sender rank.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    pub from: usize,
    pub msg: M,
}

/// Per-rank communication handle.
pub struct RankCtx<M: Send> {
    rank: usize,
    size: usize,
    rx: Receiver<Envelope<M>>,
    txs: Vec<Sender<Envelope<M>>>,
    /// Messages received but not yet matched by `recv_match`.
    buffer: VecDeque<Envelope<M>>,
}

impl<M: Send> RankCtx<M> {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `msg` to rank `to`. Sends never block (unbounded channels);
    /// sends to already-exited ranks are silently dropped, mirroring the
    /// teardown semantics the scheduler relies on.
    pub fn send(&self, to: usize, msg: M) {
        assert!(to < self.size, "send: rank {to} out of range");
        let _ = self.txs[to].send(Envelope {
            from: self.rank,
            msg,
        });
    }

    /// Blocking receive of the next message (buffered first).
    pub fn recv(&mut self) -> Envelope<M> {
        if let Some(env) = self.buffer.pop_front() {
            return env;
        }
        self.rx.recv().expect("RankCtx::recv: universe torn down")
    }

    /// Blocking receive of the first message satisfying `pred`;
    /// non-matching messages are buffered in arrival order.
    pub fn recv_match(&mut self, mut pred: impl FnMut(&Envelope<M>) -> bool) -> Envelope<M> {
        if let Some(pos) = self.buffer.iter().position(&mut pred) {
            return self.buffer.remove(pos).unwrap();
        }
        loop {
            let env = self
                .rx
                .recv()
                .expect("RankCtx::recv_match: universe torn down");
            if pred(&env) {
                return env;
            }
            self.buffer.push_back(env);
        }
    }

    /// Non-blocking receive (buffered first).
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        if let Some(env) = self.buffer.pop_front() {
            return Some(env);
        }
        self.rx.try_recv().ok()
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&mut self) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }

    /// Put a message back at the front of the buffer (it will be the next
    /// one returned by `recv`/`try_recv`).
    pub fn unrecv(&mut self, env: Envelope<M>) {
        self.buffer.push_front(env);
    }
}

/// The set of communicating ranks.
pub struct Universe;

impl Universe {
    /// Run `n_ranks` ranks, each executing `f(ctx)` on its own thread, and
    /// gather their return values by rank index.
    ///
    /// # Panics
    /// Propagates panics from rank threads.
    pub fn run<M, R, F>(n_ranks: usize, f: F) -> Vec<R>
    where
        M: Send + 'static,
        R: Send,
        F: Fn(RankCtx<M>) -> R + Send + Sync,
    {
        assert!(n_ranks > 0, "Universe::run: need at least one rank");
        let mut txs = Vec::with_capacity(n_ranks);
        let mut rxs = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let ctx = RankCtx {
                    rank,
                    size: n_ranks,
                    rx,
                    txs: txs.clone(),
                    buffer: VecDeque::new(),
                };
                let f = &f;
                handles.push(scope.spawn(move || f(ctx)));
            }
            // the senders held by `txs` are dropped only after all ranks
            // finish, so recv() during execution never observes teardown
            for (rank, handle) in handles.into_iter().enumerate() {
                results[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        });
        results.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(usize),
        Pong(usize),
        Data(Vec<f64>),
    }

    #[test]
    fn ring_pass() {
        // each rank sends its rank to the next; everyone receives prev
        let results = Universe::run(5, |mut ctx: RankCtx<TestMsg>| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, TestMsg::Ping(ctx.rank()));
            let env = ctx.recv();
            match env.msg {
                TestMsg::Ping(r) => r,
                _ => panic!("unexpected"),
            }
        });
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn recv_match_buffers_out_of_order() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // send Pong first, then Ping
                ctx.send(1, TestMsg::Pong(7));
                ctx.send(1, TestMsg::Ping(3));
                0
            } else {
                // wait for the Ping first even though Pong arrives earlier
                let ping = ctx.recv_match(|e| matches!(e.msg, TestMsg::Ping(_)));
                let pong = ctx.recv();
                match (ping.msg, pong.msg) {
                    (TestMsg::Ping(a), TestMsg::Pong(b)) => a + b,
                    _ => panic!("wrong order"),
                }
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn gather_to_root() {
        let results = Universe::run(4, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                let mut sum = 0.0;
                for _ in 0..3 {
                    if let TestMsg::Data(v) = ctx.recv().msg {
                        sum += v.iter().sum::<f64>();
                    }
                }
                sum
            } else {
                ctx.send(0, TestMsg::Data(vec![ctx.rank() as f64; 2]));
                0.0
            }
        });
        assert_eq!(results[0], 12.0);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // nothing sent yet
                let empty = ctx.try_recv().is_none();
                ctx.send(1, TestMsg::Ping(0));
                empty
            } else {
                let env = ctx.recv();
                assert_eq!(env.from, 0);
                true
            }
        });
        assert!(results[0] && results[1]);
    }

    #[test]
    fn unrecv_requeues_at_front() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                ctx.send(1, TestMsg::Ping(1));
                ctx.send(1, TestMsg::Ping(2));
                0
            } else {
                let first = ctx.recv();
                ctx.unrecv(first);
                let again = ctx.recv();
                match again.msg {
                    TestMsg::Ping(v) => v,
                    _ => panic!(),
                }
            }
        });
        assert_eq!(results[1], 1);
    }

    #[test]
    fn drain_collects_pending() {
        let results = Universe::run(3, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // wait until both messages are in, then drain
                let a = ctx.recv();
                let b = ctx.recv();
                ctx.unrecv(b);
                ctx.unrecv(a);
                ctx.drain().len()
            } else {
                ctx.send(0, TestMsg::Ping(ctx.rank()));
                0
            }
        });
        assert_eq!(results[0], 2);
    }
}
