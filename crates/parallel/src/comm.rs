//! In-process rank substrate: the MPI stand-in.
//!
//! A [`Universe`] owns one unbounded channel per rank; each rank runs on
//! its own OS thread with a [`RankCtx`] handle providing point-to-point
//! `send`, blocking `recv`, predicate-matching `recv_match` (the analogue
//! of tagged `MPI_Recv`, with out-of-order messages buffered) and
//! non-blocking `try_recv`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A delivered message with its sender rank.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    pub from: usize,
    pub msg: M,
}

/// Where a send to a given destination rank is delivered: a direct
/// channel to a rank hosted in this process, or the process's shared
/// relay channel ([`crate::net`]'s router/uplink), with the destination
/// rank tagged on because relayed destinations share one channel —
/// sharing is what preserves a sender's program order across remote
/// destinations once frames hit a socket.
pub(crate) enum Outbox<M> {
    Local(Sender<Envelope<M>>),
    Relay(Sender<(usize, Envelope<M>)>),
}

// manual impl: `Sender` clones regardless of `M`, the derive would
// needlessly demand `M: Clone`
impl<M> Clone for Outbox<M> {
    fn clone(&self) -> Self {
        match self {
            Outbox::Local(tx) => Outbox::Local(tx.clone()),
            Outbox::Relay(tx) => Outbox::Relay(tx.clone()),
        }
    }
}

/// Per-rank communication handle.
pub struct RankCtx<M: Send> {
    rank: usize,
    size: usize,
    rx: Receiver<Envelope<M>>,
    txs: Vec<Outbox<M>>,
    /// Messages received but not yet matched by `recv_match`.
    buffer: VecDeque<Envelope<M>>,
    /// Universe-wide tally of sends to already-exited ranks.
    dropped_sends: Arc<AtomicUsize>,
}

impl<M: Send> RankCtx<M> {
    /// Assemble a handle from raw parts — how [`Universe::run_counted`]
    /// and the net transport build their rank endpoints.
    pub(crate) fn from_parts(
        rank: usize,
        size: usize,
        rx: Receiver<Envelope<M>>,
        txs: Vec<Outbox<M>>,
        dropped_sends: Arc<AtomicUsize>,
    ) -> Self {
        Self {
            rank,
            size,
            rx,
            txs,
            buffer: VecDeque::new(),
            dropped_sends,
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `msg` to rank `to`. Sends never block (unbounded channels);
    /// sends to already-exited ranks — and sends to out-of-range rank
    /// indices, a routine race under elastic membership rather than a
    /// programmer error — are dropped but counted (and warned about in
    /// debug builds), so message loss is observable via
    /// [`Universe::run_counted`] instead of silent.
    pub fn send(&self, to: usize, msg: M) {
        if to >= self.txs.len() {
            self.note_drop(to, "out-of-range");
            return;
        }
        let env = Envelope {
            from: self.rank,
            msg,
        };
        let lost = match &self.txs[to] {
            Outbox::Local(tx) => tx.send(env).is_err(),
            Outbox::Relay(tx) => tx.send((to, env)).is_err(),
        };
        if lost {
            self.note_drop(to, "exited");
        }
    }

    fn note_drop(&self, to: usize, why: &str) {
        let prev = self.dropped_sends.fetch_add(1, Ordering::Relaxed);
        // debug builds surface the first loss per universe (teardown
        // legitimately drops a handful; the count tells the rest)
        #[cfg(debug_assertions)]
        if prev == 0 {
            eprintln!(
                "uq-parallel comm: dropping send from rank {} to {why} rank {to} \
                 (further drops counted silently)",
                self.rank
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = (prev, to, why);
    }

    /// Sends to exited ranks observed universe-wide so far.
    pub fn dropped_sends(&self) -> usize {
        self.dropped_sends.load(Ordering::Relaxed)
    }

    /// Blocking receive of the next message (buffered first).
    pub fn recv(&mut self) -> Envelope<M> {
        if let Some(env) = self.buffer.pop_front() {
            return env;
        }
        self.rx.recv().expect("RankCtx::recv: universe torn down")
    }

    /// Blocking receive of the first message satisfying `pred`;
    /// non-matching messages are buffered in arrival order.
    pub fn recv_match(&mut self, mut pred: impl FnMut(&Envelope<M>) -> bool) -> Envelope<M> {
        if let Some(pos) = self.buffer.iter().position(&mut pred) {
            return self.buffer.remove(pos).unwrap();
        }
        loop {
            let env = self
                .rx
                .recv()
                .expect("RankCtx::recv_match: universe torn down");
            if pred(&env) {
                return env;
            }
            self.buffer.push_back(env);
        }
    }

    /// Non-blocking receive (buffered first).
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        if let Some(env) = self.buffer.pop_front() {
            return Some(env);
        }
        self.rx.try_recv().ok()
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&mut self) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }

    /// Put a message back at the front of the buffer (it will be the next
    /// one returned by `recv`/`try_recv`).
    pub fn unrecv(&mut self, env: Envelope<M>) {
        self.buffer.push_front(env);
    }
}

/// Statistics of one universe execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniverseStats {
    /// Sends that targeted an already-exited rank (dropped messages).
    /// Nonzero values are expected during scheduler shutdown; anything
    /// nonzero *outside* teardown indicates a protocol bug.
    pub dropped_sends: usize,
}

/// The set of communicating ranks.
pub struct Universe;

impl Universe {
    /// Run `n_ranks` ranks, each executing `f(ctx)` on its own thread, and
    /// gather their return values by rank index.
    ///
    /// # Panics
    /// Propagates panics from rank threads.
    pub fn run<M, R, F>(n_ranks: usize, f: F) -> Vec<R>
    where
        M: Send + 'static,
        R: Send,
        F: Fn(RankCtx<M>) -> R + Send + Sync,
    {
        Self::run_counted(n_ranks, f).0
    }

    /// [`run`](Self::run), additionally reporting universe-wide
    /// statistics — in particular the count of messages dropped because
    /// their destination rank had already exited.
    ///
    /// # Panics
    /// Propagates panics from rank threads.
    pub fn run_counted<M, R, F>(n_ranks: usize, f: F) -> (Vec<R>, UniverseStats)
    where
        M: Send + 'static,
        R: Send,
        F: Fn(RankCtx<M>) -> R + Send + Sync,
    {
        assert!(n_ranks > 0, "Universe::run: need at least one rank");
        let mut txs = Vec::with_capacity(n_ranks);
        let mut rxs = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            txs.push(Outbox::Local(tx));
            rxs.push(rx);
        }
        let dropped_sends = Arc::new(AtomicUsize::new(0));
        let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let ctx =
                    RankCtx::from_parts(rank, n_ranks, rx, txs.clone(), Arc::clone(&dropped_sends));
                let f = &f;
                handles.push(scope.spawn(move || f(ctx)));
            }
            // the senders held by `txs` are dropped only after all ranks
            // finish, so recv() during execution never observes teardown
            for (rank, handle) in handles.into_iter().enumerate() {
                results[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        });
        let stats = UniverseStats {
            dropped_sends: dropped_sends.load(Ordering::Relaxed),
        };
        (results.into_iter().map(Option::unwrap).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(usize),
        Pong(usize),
        Data(Vec<f64>),
    }

    #[test]
    fn ring_pass() {
        // each rank sends its rank to the next; everyone receives prev
        let results = Universe::run(5, |mut ctx: RankCtx<TestMsg>| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, TestMsg::Ping(ctx.rank()));
            let env = ctx.recv();
            match env.msg {
                TestMsg::Ping(r) => r,
                _ => panic!("unexpected"),
            }
        });
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn recv_match_buffers_out_of_order() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // send Pong first, then Ping
                ctx.send(1, TestMsg::Pong(7));
                ctx.send(1, TestMsg::Ping(3));
                0
            } else {
                // wait for the Ping first even though Pong arrives earlier
                let ping = ctx.recv_match(|e| matches!(e.msg, TestMsg::Ping(_)));
                let pong = ctx.recv();
                match (ping.msg, pong.msg) {
                    (TestMsg::Ping(a), TestMsg::Pong(b)) => a + b,
                    _ => panic!("wrong order"),
                }
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn gather_to_root() {
        let results = Universe::run(4, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                let mut sum = 0.0;
                for _ in 0..3 {
                    if let TestMsg::Data(v) = ctx.recv().msg {
                        sum += v.iter().sum::<f64>();
                    }
                }
                sum
            } else {
                ctx.send(0, TestMsg::Data(vec![ctx.rank() as f64; 2]));
                0.0
            }
        });
        assert_eq!(results[0], 12.0);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // nothing sent yet
                let empty = ctx.try_recv().is_none();
                ctx.send(1, TestMsg::Ping(0));
                empty
            } else {
                let env = ctx.recv();
                assert_eq!(env.from, 0);
                true
            }
        });
        assert!(results[0] && results[1]);
    }

    #[test]
    fn unrecv_requeues_at_front() {
        let results = Universe::run(2, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                ctx.send(1, TestMsg::Ping(1));
                ctx.send(1, TestMsg::Ping(2));
                0
            } else {
                let first = ctx.recv();
                ctx.unrecv(first);
                let again = ctx.recv();
                match again.msg {
                    TestMsg::Ping(v) => v,
                    _ => panic!(),
                }
            }
        });
        assert_eq!(results[1], 1);
    }

    /// Messages for the interleaving tests, mirroring the scheduler's
    /// control-vs-data split.
    #[derive(Clone, Debug, PartialEq)]
    enum CtlMsg {
        Data(usize),
        Sample(usize),
        Poison,
        Shutdown,
    }

    #[test]
    fn multiple_pending_predicates_preserve_arrival_order() {
        // two different predicates pull their matches out of order; the
        // skipped messages must re-deliver in the original arrival order
        let results = Universe::run(2, |mut ctx: RankCtx<CtlMsg>| {
            if ctx.rank() == 1 {
                for m in [
                    CtlMsg::Data(0),
                    CtlMsg::Sample(10),
                    CtlMsg::Data(1),
                    CtlMsg::Sample(11),
                    CtlMsg::Data(2),
                ] {
                    ctx.send(0, m);
                }
                return Vec::new();
            }
            let mut order = Vec::new();
            // predicate A: samples, twice (buffers the Data around them)
            for _ in 0..2 {
                let env = ctx.recv_match(|e| matches!(e.msg, CtlMsg::Sample(_)));
                if let CtlMsg::Sample(v) = env.msg {
                    order.push(v);
                }
            }
            // predicate B (plain recv): the buffered Data, arrival order
            for _ in 0..3 {
                if let CtlMsg::Data(v) = ctx.recv().msg {
                    order.push(v);
                }
            }
            order
        });
        assert_eq!(results[0], vec![10, 11, 0, 1, 2]);
    }

    #[test]
    fn buffered_redelivery_interleaves_with_live_arrivals() {
        // a pending predicate buffers early messages; a later recv_match
        // with a *different* predicate must still see buffered messages
        // before newer channel arrivals
        let results = Universe::run(2, |mut ctx: RankCtx<CtlMsg>| {
            if ctx.rank() == 1 {
                ctx.send(0, CtlMsg::Data(7));
                ctx.send(0, CtlMsg::Sample(1));
                // only send the late message once rank 0 confirmed the
                // first two were processed
                let _ = ctx.recv();
                ctx.send(0, CtlMsg::Data(8));
                0
            } else {
                let s = ctx.recv_match(|e| matches!(e.msg, CtlMsg::Sample(_)));
                assert_eq!(s.msg, CtlMsg::Sample(1)); // Data(7) now buffered
                ctx.send(1, CtlMsg::Data(0)); // ack
                let first = ctx.recv_match(|e| matches!(e.msg, CtlMsg::Data(_)));
                let second = ctx.recv_match(|e| matches!(e.msg, CtlMsg::Data(_)));
                assert_eq!(first.msg, CtlMsg::Data(7), "buffered must win");
                assert_eq!(second.msg, CtlMsg::Data(8));
                1
            }
        });
        assert_eq!(results[0], 1);
    }

    #[test]
    fn poison_and_shutdown_never_starved_behind_buffered_data() {
        // a teardown-matching receive must find Poison/Shutdown no matter
        // how much unconsumed data is buffered ahead of them
        let results = Universe::run(2, |mut ctx: RankCtx<CtlMsg>| {
            if ctx.rank() == 1 {
                for i in 0..50 {
                    ctx.send(0, CtlMsg::Data(i));
                }
                ctx.send(0, CtlMsg::Poison);
                for i in 50..100 {
                    ctx.send(0, CtlMsg::Data(i));
                }
                ctx.send(0, CtlMsg::Shutdown);
                0
            } else {
                // force everything into the out-of-order buffer first
                let teardown =
                    |e: &Envelope<CtlMsg>| matches!(e.msg, CtlMsg::Poison | CtlMsg::Shutdown);
                let first = ctx.recv_match(teardown);
                assert_eq!(first.msg, CtlMsg::Poison, "first teardown in order");
                let second = ctx.recv_match(teardown);
                assert_eq!(second.msg, CtlMsg::Shutdown);
                // the 100 data messages are all still there, in order
                let mut n = 0usize;
                for expect in 0..100 {
                    let CtlMsg::Data(v) = ctx.recv().msg else {
                        panic!("expected data")
                    };
                    assert_eq!(v, expect);
                    n += 1;
                }
                n
            }
        });
        assert_eq!(results[0], 100);
    }

    #[test]
    fn dropped_sends_to_exited_ranks_are_counted() {
        let (_, stats) = Universe::run_counted(2, |ctx: RankCtx<CtlMsg>| {
            if ctx.rank() == 1 {
                // exit immediately: rank 0's pings eventually hit a
                // dropped receiver
                return 0;
            }
            let mut tries = 0usize;
            while ctx.dropped_sends() == 0 {
                ctx.send(1, CtlMsg::Data(tries));
                tries += 1;
                assert!(tries < 1_000_000, "rank 1 never exited?");
                std::thread::yield_now();
            }
            ctx.dropped_sends()
        });
        assert!(stats.dropped_sends >= 1);
    }

    #[test]
    fn out_of_range_send_is_counted_not_fatal() {
        // under elastic membership a stale rank index is a routine race:
        // the send must be dropped and tallied, never panic
        let (_, stats) = Universe::run_counted(2, |ctx: RankCtx<CtlMsg>| {
            if ctx.rank() == 0 {
                ctx.send(99, CtlMsg::Data(0));
                ctx.send(7, CtlMsg::Poison);
            }
            ctx.dropped_sends()
        });
        assert_eq!(stats.dropped_sends, 2);
    }

    #[test]
    fn drain_collects_pending() {
        let results = Universe::run(3, |mut ctx: RankCtx<TestMsg>| {
            if ctx.rank() == 0 {
                // wait until both messages are in, then drain
                let a = ctx.recv();
                let b = ctx.recv();
                ctx.unrecv(b);
                ctx.unrecv(a);
                ctx.drain().len()
            } else {
                ctx.send(0, TestMsg::Ping(ctx.rank()));
                0
            }
        });
        assert_eq!(results[0], 2);
    }
}
