//! The always-on **multi-tenant UQ service**: a long-lived server
//! multiplexing many concurrent inversion jobs over one shared worker
//! pool.
//!
//! Every layer built so far is exactly the substrate of a shared
//! inference service, and this module only composes them:
//!
//! * **Isolation** — each job runs its own root/phonebook/collector
//!   ranks and its own ledger book (one `Runtime::run` universe per
//!   dispatch), and its RNG streams live in a per-tenant seed namespace
//!   ([`uq_mlmcmc::ledger::tenant_seed`]), so two tenants submitting the
//!   very same config can never share a session substream. In the
//!   deterministic regime a serviced job is bit-for-bit
//!   [`levels_digest`]-identical to the same job run standalone,
//!   regardless of what the other tenants are doing (pinned by
//!   `tests/service_conformance.rs`).
//! * **Fair-share + priority dispatch** — queued jobs are ordered by
//!   `(measured tenant usage + 1) / priority`, where usage is the
//!   tenant's cumulative ledger serves *measured* by the per-job tracer
//!   ([`Counter::Serves`]) — not a pending-queue length. The shared
//!   worker budget is split across concurrently running jobs with
//!   [`uq_mlmcmc::allocate::fair_share_split`] (weights = priorities,
//!   demands = requested worker counts).
//! * **Admission control** — every submit is tested against current
//!   load with the discrete-event simulator ([`crate::des`]): per-level
//!   evaluation times are the *measured* `mean_eval_ms` from completed
//!   dispatches (EWMA), the DES predicts the job's solo
//!   time-to-estimate, and the in-flight job count scales it to a
//!   loaded prediction. A job whose prediction exceeds its deadline is
//!   turned away ([`Counter::JobsRejected`]). This replaces the PR-5
//!   pending-queue saturation heuristic with a measured signal.
//! * **Graceful preemption** — [`Service::preempt`] raises the job's
//!   [`ParallelCheckpoint::stop`] flag; at the next PR-6 quiesce
//!   barrier every one of the job's chains is paused at a clean
//!   boundary with the ledger drained, the snapshot is persisted into
//!   the job's own content-addressed store, and the run tears down
//!   through the normal shutdown chain — no `ServeJob` is ever
//!   stranded. [`Service::resume`] re-queues the job, which continues
//!   from `latest_snapshot` bit-identically (the PR-6 equivalence
//!   machinery is what makes preemption *exact*).
//! * **Remote clients** — submit/status/cancel/preempt/resume travel as
//!   [`ServiceFrame`]s in the PR-9 frame format (length-prefixed,
//!   checksummed, version-stamped) over TCP; a remote submit names a
//!   registered model instead of carrying a factory.
//!
//! See `DESIGN.md` §10 for the admission model and the
//! isolation/preemption-exactness argument.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use uq_mlmcmc::allocate::fair_share_split;
use uq_mlmcmc::ledger::tenant_seed;
use uq_mlmcmc::store::{fnv1a, Codec, Dec, Enc, RunStore, StoreError};
use uq_mlmcmc::LevelFactory;

use crate::des::{simulate, DesConfig};
use crate::net::levels_digest;
use crate::obs::{Counter, Tracer};
use crate::roles::{run_runtime_ckpt_on, RuntimeConfig};
use crate::runtime::Runtime;
use crate::scheduler::ParallelCheckpoint;

/// Version stamped into every service frame header. Bump on any change
/// to the [`ServiceFrame`] encoding.
pub const SERVICE_PROTOCOL_VERSION: u32 = 1;

/// Service frame magic (8 bytes), distinct from the net transport's
/// `b"UQNETFR\0"` and the snapshot store's `b"UQSNAP\0\0"`.
const SVC_MAGIC: &[u8; 8] = b"UQSVCFR\0";

/// Refuse frames claiming more than this payload (corrupt length field).
const MAX_FRAME_LEN: u64 = 1 << 24;

/// Bootstrap per-level evaluation time fed to the admission DES until a
/// completed dispatch provides a measured value (seconds).
const DEFAULT_EVAL_SECS: f64 = 50e-6;

// ---------------------------------------------------------------------
// job model
// ---------------------------------------------------------------------

/// A job identifier, unique within one service instance.
pub type JobId = u64;

/// Lifecycle of a serviced job.
///
/// `Queued → Running → {Completed, Cancelled, Preempted}`, with
/// `Preempted → Queued` on [`Service::resume`]. `Cancelled` and
/// `Completed` are terminal; `Preempted` holds a persisted snapshot and
/// frees the job's worker share until resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Preempted,
    Completed,
    Cancelled,
}

impl JobState {
    /// Terminal states free the tenant's admission budget.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Cancelled)
    }
}

/// Everything a tenant submits for one inversion job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Tenant identity: seed namespace, budget account and fair-share
    /// usage account.
    pub tenant: u64,
    /// Fair-share weight (must be positive and finite). A tenant with
    /// twice the priority gets twice the worker share under contention
    /// and drains its queue twice as fast per unit of measured usage.
    pub priority: f64,
    /// Name of a model registered with [`Service::register_model`] —
    /// factories cannot travel over the wire, so remote and local
    /// submits both name one.
    pub model: String,
    /// The run configuration. `load_balancing` is forced off (snapshots
    /// pin chains to levels; every serviced job is preemptible) and
    /// `seed` is re-derived through the tenant namespace.
    pub config: RuntimeConfig,
    /// Admission deadline on the DES-predicted time-to-estimate under
    /// current load (seconds); `0` disables the deadline check.
    pub deadline: f64,
}

/// A point-in-time view of one job, served locally and over the wire.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub job: JobId,
    pub tenant: u64,
    pub state: JobState,
    /// The effective (tenant-namespaced) base seed the job runs under.
    pub seed: u64,
    /// Quiesce-barrier snapshots persisted so far (each is a valid
    /// resume point).
    pub snapshots: usize,
    /// Ledger serves measured by the job's tracer across all dispatches.
    pub serves: u64,
    /// [`levels_digest`] of the completed report (0 until `Completed`).
    pub digest: u64,
    /// Telescoping estimate of the completed report (empty until
    /// `Completed`).
    pub estimate: Vec<f64>,
    /// The admission DES prediction for this job (seconds, under the
    /// load seen at submit time).
    pub predicted_tte: f64,
}

struct Job {
    spec: JobSpec,
    state: JobState,
    /// Raised by preempt/cancel/shutdown; checked by the run at every
    /// completed quiesce barrier.
    stop: Arc<AtomicBool>,
    /// Cancel requested — the job ends `Cancelled` whatever the run
    /// returns.
    cancel: bool,
    /// Next dispatch resumes from the job store's latest snapshot.
    resume_next: bool,
    /// Worker share while `Running` (returned to the pool afterwards).
    workers: usize,
    effective_seed: u64,
    config_hash: u64,
    snapshots: usize,
    serves: u64,
    digest: u64,
    estimate: Vec<f64>,
    predicted_tte: f64,
}

impl Job {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            job: id,
            tenant: self.spec.tenant,
            state: self.state,
            seed: self.effective_seed,
            snapshots: self.snapshots,
            serves: self.serves,
            digest: self.digest,
            estimate: self.estimate.clone(),
            predicted_tte: self.predicted_tte,
        }
    }
}

// ---------------------------------------------------------------------
// service
// ---------------------------------------------------------------------

/// Static policy of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Dispatcher lanes — the maximum number of concurrently running
    /// jobs.
    pub lanes: usize,
    /// Total worker budget split fair-share across running jobs.
    pub pool_workers: usize,
    /// Preemption quantum: every job checkpoints each `quantum`
    /// top-level corrections, so a preempt lands within one quantum.
    pub quantum: usize,
    /// Root directory of the per-job content-addressed run stores.
    pub store_root: PathBuf,
    /// Admission budget: maximum non-terminal jobs per tenant.
    pub max_jobs_per_tenant: usize,
}

impl ServiceConfig {
    pub fn new(store_root: impl Into<PathBuf>) -> Self {
        Self {
            lanes: 2,
            pool_workers: 4,
            quantum: 25,
            store_root: store_root.into(),
            max_jobs_per_tenant: 4,
        }
    }
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<JobId, Job>,
    next_job: JobId,
    /// Cumulative measured serves per tenant (the fair-share signal).
    tenant_usage: BTreeMap<u64, u64>,
    /// Measured per-level mean evaluation seconds (EWMA over completed
    /// dispatches) — the admission DES input.
    eval_secs: Vec<f64>,
    /// Workers currently allocated to running jobs.
    workers_busy: usize,
    shutdown: bool,
}

impl State {
    fn active_jobs(&self, tenant: u64) -> usize {
        self.jobs
            .values()
            .filter(|j| j.spec.tenant == tenant && !j.state.is_terminal())
            .count()
    }

    fn inflight(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .count()
    }
}

struct ServiceInner {
    config: ServiceConfig,
    state: Mutex<State>,
    cv: Condvar,
    models: Mutex<BTreeMap<String, Arc<dyn LevelFactory + Send + Sync>>>,
    tracer: Tracer,
    /// Orderly goodbyes received from remote clients (the signal a
    /// hosting process waits on before tearing the service down).
    byes: std::sync::atomic::AtomicU64,
}

/// The long-lived multi-tenant server. See the module docs for the
/// dispatch/admission/preemption semantics.
pub struct Service {
    inner: Arc<ServiceInner>,
    lanes: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    listen_addr: Option<SocketAddr>,
}

impl Service {
    /// Start the dispatcher lanes. `tracer` receives the service-level
    /// counters ([`Counter::JobsAdmitted`] / `JobsRejected` /
    /// `JobsPreempted`); each job additionally runs under its own
    /// always-on tracer whose measured serves feed the fair-share
    /// policy.
    ///
    /// # Panics
    /// Panics on a degenerate config (zero lanes/workers/quantum).
    pub fn start(config: ServiceConfig, tracer: &Tracer) -> Self {
        assert!(config.lanes >= 1, "service: need at least one lane");
        assert!(config.pool_workers >= 1, "service: need workers");
        assert!(config.quantum >= 1, "service: need a preemption quantum");
        assert!(config.max_jobs_per_tenant >= 1, "service: need a budget");
        let inner = Arc::new(ServiceInner {
            config,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            models: Mutex::new(BTreeMap::new()),
            tracer: tracer.clone(),
            byes: std::sync::atomic::AtomicU64::new(0),
        });
        let lanes = (0..inner.config.lanes)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || lane_loop(&inner))
            })
            .collect();
        Self {
            inner,
            lanes,
            acceptor: None,
            listen_addr: None,
        }
    }

    /// Register a model under `name` for subsequent submits (local and
    /// remote). Re-registering a name replaces the factory.
    pub fn register_model(&self, name: &str, factory: Arc<dyn LevelFactory + Send + Sync>) {
        self.inner
            .models
            .lock()
            .expect("service models poisoned")
            .insert(name.to_string(), factory);
    }

    /// Submit a job: validate, admission-test against current load and
    /// enqueue. Returns the job id and the DES-predicted
    /// time-to-estimate, or the rejection reason.
    pub fn submit(&self, spec: JobSpec) -> Result<(JobId, f64), String> {
        self.inner.submit(spec)
    }

    /// Point-in-time status of a job (`None` for an unknown id).
    pub fn status(&self, job: JobId) -> Option<JobStatus> {
        let st = self.inner.lock_state();
        st.jobs.get(&job).map(|j| j.status(job))
    }

    /// Cancel a job. Queued jobs are dequeued immediately; a running
    /// job is stopped at its next quiesce barrier; a preempted job is
    /// discarded. Always frees the tenant's budget; returns `false` if
    /// the job is unknown or already terminal.
    pub fn cancel(&self, job: JobId) -> bool {
        self.inner.cancel(job)
    }

    /// Request graceful preemption of a *running* job: its `ServeJob`s
    /// are suspended at the next quiesce barrier, the snapshot persists
    /// and the job parks as [`JobState::Preempted`]. Returns `false`
    /// unless the job is currently `Running`.
    pub fn preempt(&self, job: JobId) -> bool {
        let mut st = self.inner.lock_state();
        match st.jobs.get_mut(&job) {
            Some(j) if j.state == JobState::Running => {
                j.stop.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Re-queue a preempted job; its next dispatch resumes from the
    /// latest snapshot, bit-identically. Returns `false` unless the job
    /// is `Preempted`.
    pub fn resume(&self, job: JobId) -> bool {
        let mut st = self.inner.lock_state();
        match st.jobs.get_mut(&job) {
            Some(j) if j.state == JobState::Preempted => {
                j.state = JobState::Queued;
                j.resume_next = true;
                drop(st);
                self.inner.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Block until `job` leaves the `Queued`/`Running` states and
    /// return its status (so it ends `Completed`, `Cancelled` or parked
    /// `Preempted`).
    ///
    /// # Panics
    /// Panics on an unknown job id.
    pub fn wait(&self, job: JobId) -> JobStatus {
        let mut st = self.inner.lock_state();
        loop {
            let j = st.jobs.get(&job).expect("service: wait on unknown job");
            if !matches!(j.state, JobState::Queued | JobState::Running) {
                return j.status(job);
            }
            st = self.inner.cv.wait(st).expect("service state poisoned");
        }
    }

    /// Block until no job is queued or running (preempted jobs park).
    pub fn quiesce(&self) {
        let mut st = self.inner.lock_state();
        while st
            .jobs
            .values()
            .any(|j| matches!(j.state, JobState::Queued | JobState::Running))
        {
            st = self.inner.cv.wait(st).expect("service state poisoned");
        }
    }

    /// Cumulative measured serves per tenant, sorted by tenant id — the
    /// `per_tenant` table of the v3 metrics schema
    /// ([`crate::obs::MetricsSnapshot::merge_service`]).
    pub fn per_tenant_serves(&self) -> Vec<(u64, u64)> {
        let st = self.inner.lock_state();
        st.tenant_usage.iter().map(|(&t, &s)| (t, s)).collect()
    }

    /// Orderly [`ServiceFrame::Bye`]s received from remote clients so
    /// far. A process hosting the service for N known clients can wait
    /// on this before shutting down, so no client gets the connection
    /// torn out from under a status poll.
    pub fn remote_byes(&self) -> u64 {
        self.inner.byes.load(Ordering::SeqCst)
    }

    /// Accept remote clients on `addr` (e.g. `"127.0.0.1:0"`); returns
    /// the bound address. One acceptor per service.
    pub fn listen(&mut self, addr: &str) -> io::Result<SocketAddr> {
        assert!(self.acceptor.is_none(), "service: already listening");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::clone(&self.inner);
        self.acceptor = Some(std::thread::spawn(move || accept_loop(&listener, &inner)));
        self.listen_addr = Some(local);
        Ok(local)
    }

    /// Stop accepting work, preempt every running job at its next
    /// barrier, and join the lanes. Queued jobs stay queued (they would
    /// resume if a future service instance re-read the stores; this
    /// instance simply drops them).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.inner.lock_state();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            for j in st.jobs.values() {
                if j.state == JobState::Running {
                    j.stop.store(true, Ordering::SeqCst);
                }
            }
        }
        self.inner.cv.notify_all();
        // unblock the acceptor with a dummy connection
        if let Some(addr) = self.listen_addr.take() {
            let _ = TcpStream::connect(addr);
        }
        for lane in self.lanes.drain(..) {
            let _ = lane.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl ServiceInner {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("service state poisoned")
    }

    fn model(&self, name: &str) -> Option<Arc<dyn LevelFactory + Send + Sync>> {
        self.models
            .lock()
            .expect("service models poisoned")
            .get(name)
            .cloned()
    }

    fn submit(&self, mut spec: JobSpec) -> Result<(JobId, f64), String> {
        let Some(factory) = self.model(&spec.model) else {
            self.tracer.incr(Counter::JobsRejected);
            return Err(format!("unknown model '{}'", spec.model));
        };
        if let Err(reason) = validate_spec(&spec, factory.as_ref()) {
            self.tracer.incr(Counter::JobsRejected);
            return Err(reason);
        }
        // every serviced job is preemptible: snapshots pin chains to
        // levels, so the balancer must stay off
        spec.config.base.load_balancing = false;
        let effective_seed = tenant_seed(spec.config.base.seed, spec.tenant);

        let mut st = self.lock_state();
        if st.shutdown {
            self.tracer.incr(Counter::JobsRejected);
            return Err("service is shutting down".to_string());
        }
        if st.active_jobs(spec.tenant) >= self.config.max_jobs_per_tenant {
            self.tracer.incr(Counter::JobsRejected);
            return Err(format!(
                "tenant {} budget exhausted ({} active jobs)",
                spec.tenant, self.config.max_jobs_per_tenant
            ));
        }
        let predicted_tte = self.predict_tte(&st, factory.as_ref(), &spec);
        if spec.deadline > 0.0 && predicted_tte > spec.deadline {
            self.tracer.incr(Counter::JobsRejected);
            return Err(format!(
                "admission denied: predicted time-to-estimate {predicted_tte:.3}s \
                 exceeds deadline {:.3}s under current load",
                spec.deadline
            ));
        }

        let id = st.next_job;
        st.next_job += 1;
        let config_hash = fnv1a(
            format!(
                "service job {id} tenant {} model {} seed {:#x}",
                spec.tenant, spec.model, effective_seed
            )
            .as_bytes(),
        );
        st.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                stop: Arc::new(AtomicBool::new(false)),
                cancel: false,
                resume_next: false,
                workers: 0,
                effective_seed,
                config_hash,
                snapshots: 0,
                serves: 0,
                digest: 0,
                estimate: Vec::new(),
                predicted_tte,
            },
        );
        drop(st);
        self.tracer.incr(Counter::JobsAdmitted);
        self.cv.notify_all();
        Ok((id, predicted_tte))
    }

    /// The admission model: a DES replay of the job's schedule under the
    /// *measured* per-level evaluation times, scaled by the in-flight
    /// job count sharing the lanes (the measured-saturation replacement
    /// for the pending-queue heuristic).
    fn predict_tte(&self, st: &State, factory: &dyn LevelFactory, spec: &JobSpec) -> f64 {
        let n_levels = spec.config.n_levels();
        let eval_time: Vec<f64> = (0..n_levels)
            .map(|l| st.eval_secs.get(l).copied().unwrap_or(DEFAULT_EVAL_SECS))
            .collect();
        let des = DesConfig {
            eval_time,
            eval_jitter: 0.0,
            samples_per_level: spec.config.base.samples_per_level.clone(),
            burn_in: spec.config.base.burn_in.clone(),
            subsampling: (0..n_levels).map(|l| factory.subsampling_rate(l)).collect(),
            chains_per_level: spec.config.base.chains_per_level.clone(),
            group_size: 1,
            phonebook_service_time: 0.0,
            collector_service_time: 0.0,
            load_balancing: false,
            seed: spec.config.base.seed,
            ledger: true,
            ledger_pairing_overhead: 1.0,
            spec_hit_rate: 0.0,
            spec_waste: 0.0,
        };
        let solo = simulate(&des).makespan;
        solo * (1.0 + st.inflight() as f64 / self.config.lanes as f64)
    }

    fn cancel(&self, job: JobId) -> bool {
        let mut st = self.lock_state();
        let Some(j) = st.jobs.get_mut(&job) else {
            return false;
        };
        match j.state {
            JobState::Completed | JobState::Cancelled => false,
            JobState::Queued | JobState::Preempted => {
                j.state = JobState::Cancelled;
                j.cancel = true;
                drop(st);
                self.cv.notify_all();
                true
            }
            JobState::Running => {
                j.cancel = true;
                j.stop.store(true, Ordering::SeqCst);
                true
            }
        }
    }
}

fn validate_spec(spec: &JobSpec, factory: &dyn LevelFactory) -> Result<(), String> {
    if !(spec.priority.is_finite() && spec.priority > 0.0) {
        return Err(format!("priority must be positive, got {}", spec.priority));
    }
    let config = &spec.config;
    let n_levels = config.n_levels();
    if n_levels == 0 {
        return Err("config has no levels".to_string());
    }
    if n_levels > factory.n_levels() {
        return Err(format!(
            "config has {n_levels} levels but model '{}' provides {}",
            spec.model,
            factory.n_levels()
        ));
    }
    if config.base.burn_in.len() != n_levels || config.base.chains_per_level.len() != n_levels {
        return Err("per-level vectors have mismatched lengths".to_string());
    }
    if config.base.chains_per_level.contains(&0) {
        return Err("every level needs at least one chain".to_string());
    }
    if config.collector_shards == 0 || config.n_workers == 0 {
        return Err("need at least one collector shard and one worker".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// dispatcher lanes
// ---------------------------------------------------------------------

/// Fair-share pick: the queued job minimizing
/// `(tenant's measured usage + 1) / priority`, ties toward the older
/// job. Usage is cumulative measured serves, so a tenant that has
/// consumed more of the pool yields to one that hasn't, proportionally
/// to priority.
fn pick(st: &State) -> Option<JobId> {
    st.jobs
        .iter()
        .filter(|(_, j)| j.state == JobState::Queued)
        .min_by(|(a, ja), (b, jb)| {
            let usage = |j: &Job| *st.tenant_usage.get(&j.spec.tenant).unwrap_or(&0);
            let score_a = (usage(ja) + 1) as f64 / ja.spec.priority;
            let score_b = (usage(jb) + 1) as f64 / jb.spec.priority;
            score_a
                .partial_cmp(&score_b)
                .expect("finite fair-share scores")
                .then(a.cmp(b))
        })
        .map(|(&id, _)| id)
}

/// Split the pool across the currently running jobs (plus the claimed
/// one) and return the claimed job's share, clamped to what the pool
/// still has free (always at least 1 — lanes never exceed the pool in a
/// sane config, and a transiently oversubscribed worker is only a
/// cooperative thread).
fn worker_share(st: &State, pool: usize, claimed: JobId) -> usize {
    let mut ids: Vec<JobId> = st
        .jobs
        .iter()
        .filter(|(&id, j)| j.state == JobState::Running || id == claimed)
        .map(|(&id, _)| id)
        .collect();
    ids.sort_unstable();
    let demands: Vec<usize> = ids
        .iter()
        .map(|id| st.jobs[id].spec.config.n_workers)
        .collect();
    let weights: Vec<f64> = ids.iter().map(|id| st.jobs[id].spec.priority).collect();
    let split = fair_share_split(pool, &demands, &weights);
    let mine = split[ids
        .iter()
        .position(|&id| id == claimed)
        .expect("claimed job listed")];
    let free = pool.saturating_sub(st.workers_busy);
    mine.clamp(1, free.max(1))
}

fn lane_loop(inner: &Arc<ServiceInner>) {
    loop {
        // claim the next job under the fair-share policy
        let (id, factory, config, config_hash, stop, resume_next, workers) = {
            let mut st = inner.lock_state();
            let id = loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = pick(&st) {
                    break id;
                }
                st = inner.cv.wait(st).expect("service state poisoned");
            };
            let workers = worker_share(&st, inner.config.pool_workers, id);
            st.workers_busy += workers;
            let j = st.jobs.get_mut(&id).expect("picked job exists");
            j.state = JobState::Running;
            j.workers = workers;
            j.stop.store(false, Ordering::SeqCst);
            let resume_next = std::mem::take(&mut j.resume_next);
            let mut config = j.spec.config.clone();
            config.base.seed = j.effective_seed;
            config.n_workers = workers;
            let factory = inner
                .models
                .lock()
                .expect("service models poisoned")
                .get(&j.spec.model)
                .cloned()
                .expect("model validated at submit");
            (
                id,
                factory,
                config,
                j.config_hash,
                Arc::clone(&j.stop),
                resume_next,
                workers,
            )
        };
        let store = RunStore::open(inner.config.store_root.join(format!("job-{id}")))
            .expect("service: cannot open job store");
        let resume_snap = if resume_next {
            Some(
                store
                    .latest_snapshot(Some(config_hash))
                    .expect("service: job store manifest unreadable")
                    .expect("service: resume without a snapshot")
                    .1,
            )
        } else {
            None
        };

        let inner_hook = Arc::clone(inner);
        let hook = move |_done: usize, _hash: &str| {
            let mut st = inner_hook.lock_state();
            if let Some(j) = st.jobs.get_mut(&id) {
                j.snapshots += 1;
            }
            drop(st);
            inner_hook.cv.notify_all();
        };
        let ckpt = ParallelCheckpoint {
            store: &store,
            config_hash,
            every: inner.config.quantum,
            on_snapshot: Some(&hook),
            stop: Some(&stop),
        };
        // per-job tracer: always on, so serves are *measured* for the
        // fair-share ledger (tracing is bit-parity-inert, pinned by the
        // PR-8 obs conformance suite)
        let job_tracer = Tracer::new();
        let rt = run_runtime_ckpt_on(
            &Runtime::new(workers),
            factory.as_ref(),
            &config,
            &job_tracer,
            Some(&ckpt),
            resume_snap.as_ref(),
        );

        let serves = job_tracer.counter(Counter::Serves);
        let mut st = inner.lock_state();
        for level in &rt.report.levels {
            if level.evaluations > 0 {
                if st.eval_secs.len() <= level.level {
                    st.eval_secs.resize(level.level + 1, DEFAULT_EVAL_SECS);
                }
                let ewma = &mut st.eval_secs[level.level];
                *ewma = 0.5 * *ewma + 0.5 * (level.mean_eval_ms * 1e-3);
            }
        }
        let tenant = st.jobs[&id].spec.tenant;
        *st.tenant_usage.entry(tenant).or_insert(0) += serves;
        st.workers_busy -= workers;
        let j = st.jobs.get_mut(&id).expect("running job exists");
        j.serves += serves;
        j.workers = 0;
        if j.cancel {
            j.state = JobState::Cancelled;
        } else if rt.preempted {
            j.state = JobState::Preempted;
            inner.tracer.incr(Counter::JobsPreempted);
        } else {
            j.state = JobState::Completed;
            j.digest = levels_digest(&rt.report.levels);
            j.estimate = rt.report.expectation();
        }
        drop(st);
        inner.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// wire protocol (PR-9 frame format, service magic)
// ---------------------------------------------------------------------

/// One service request or reply.
#[derive(Clone, Debug)]
pub enum ServiceFrame {
    /// Client → service: admission-test and enqueue a job.
    Submit(Box<JobSpec>),
    /// Service → client: the job was admitted.
    Submitted { job: JobId, predicted_tte: f64 },
    /// Service → client: the submit was turned away.
    Denied { reason: String },
    /// Client → service: status query.
    Status { job: JobId },
    /// Service → client: status reply.
    StatusIs(Box<JobStatus>),
    /// Service → client: no such job.
    NoSuchJob,
    /// Client → service: cancel.
    Cancel { job: JobId },
    /// Client → service: preempt a running job.
    Preempt { job: JobId },
    /// Client → service: resume a preempted job.
    Resume { job: JobId },
    /// Service → client: cancel/preempt/resume outcome.
    Ack { ok: bool },
    /// Either direction: orderly goodbye.
    Bye,
}

impl Codec for JobState {
    fn encode(&self, enc: &mut Enc) {
        let tag: u8 = match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Preempted => 2,
            JobState::Completed => 3,
            JobState::Cancelled => 4,
        };
        tag.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(match u8::decode(dec)? {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Preempted,
            3 => JobState::Completed,
            4 => JobState::Cancelled,
            _ => return Err(StoreError::Corrupt("invalid JobState tag")),
        })
    }
}

impl Codec for RuntimeConfig {
    fn encode(&self, enc: &mut Enc) {
        self.base.encode(enc);
        self.n_workers.encode(enc);
        self.collector_shards.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            base: Codec::decode(dec)?,
            n_workers: Codec::decode(dec)?,
            collector_shards: Codec::decode(dec)?,
        })
    }
}

impl Codec for JobSpec {
    fn encode(&self, enc: &mut Enc) {
        self.tenant.encode(enc);
        self.priority.encode(enc);
        self.model.encode(enc);
        self.config.encode(enc);
        self.deadline.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            tenant: Codec::decode(dec)?,
            priority: Codec::decode(dec)?,
            model: Codec::decode(dec)?,
            config: Codec::decode(dec)?,
            deadline: Codec::decode(dec)?,
        })
    }
}

impl Codec for JobStatus {
    fn encode(&self, enc: &mut Enc) {
        self.job.encode(enc);
        self.tenant.encode(enc);
        self.state.encode(enc);
        self.seed.encode(enc);
        self.snapshots.encode(enc);
        self.serves.encode(enc);
        self.digest.encode(enc);
        self.estimate.encode(enc);
        self.predicted_tte.encode(enc);
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(Self {
            job: Codec::decode(dec)?,
            tenant: Codec::decode(dec)?,
            state: Codec::decode(dec)?,
            seed: Codec::decode(dec)?,
            snapshots: Codec::decode(dec)?,
            serves: Codec::decode(dec)?,
            digest: Codec::decode(dec)?,
            estimate: Codec::decode(dec)?,
            predicted_tte: Codec::decode(dec)?,
        })
    }
}

impl Codec for ServiceFrame {
    fn encode(&self, enc: &mut Enc) {
        match self {
            ServiceFrame::Submit(spec) => {
                0u8.encode(enc);
                spec.encode(enc);
            }
            ServiceFrame::Submitted { job, predicted_tte } => {
                1u8.encode(enc);
                job.encode(enc);
                predicted_tte.encode(enc);
            }
            ServiceFrame::Denied { reason } => {
                2u8.encode(enc);
                reason.encode(enc);
            }
            ServiceFrame::Status { job } => {
                3u8.encode(enc);
                job.encode(enc);
            }
            ServiceFrame::StatusIs(status) => {
                4u8.encode(enc);
                status.encode(enc);
            }
            ServiceFrame::NoSuchJob => 5u8.encode(enc),
            ServiceFrame::Cancel { job } => {
                6u8.encode(enc);
                job.encode(enc);
            }
            ServiceFrame::Preempt { job } => {
                7u8.encode(enc);
                job.encode(enc);
            }
            ServiceFrame::Resume { job } => {
                8u8.encode(enc);
                job.encode(enc);
            }
            ServiceFrame::Ack { ok } => {
                9u8.encode(enc);
                ok.encode(enc);
            }
            ServiceFrame::Bye => 10u8.encode(enc),
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, StoreError> {
        Ok(match u8::decode(dec)? {
            0 => ServiceFrame::Submit(Codec::decode(dec)?),
            1 => ServiceFrame::Submitted {
                job: Codec::decode(dec)?,
                predicted_tte: Codec::decode(dec)?,
            },
            2 => ServiceFrame::Denied {
                reason: Codec::decode(dec)?,
            },
            3 => ServiceFrame::Status {
                job: Codec::decode(dec)?,
            },
            4 => ServiceFrame::StatusIs(Codec::decode(dec)?),
            5 => ServiceFrame::NoSuchJob,
            6 => ServiceFrame::Cancel {
                job: Codec::decode(dec)?,
            },
            7 => ServiceFrame::Preempt {
                job: Codec::decode(dec)?,
            },
            8 => ServiceFrame::Resume {
                job: Codec::decode(dec)?,
            },
            9 => ServiceFrame::Ack {
                ok: Codec::decode(dec)?,
            },
            10 => ServiceFrame::Bye,
            _ => return Err(StoreError::Corrupt("invalid ServiceFrame tag")),
        })
    }
}

/// Encode a frame in the shared wire layout: magic, version, payload
/// length, payload, FNV-1a checksum over everything before it.
pub fn encode_service_frame(frame: &ServiceFrame) -> Vec<u8> {
    let mut enc = Enc::new();
    frame.encode(&mut enc);
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(SVC_MAGIC);
    out.extend_from_slice(&SERVICE_PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode one service frame, validating magic, version, length and
/// checksum.
pub fn decode_service_frame(bytes: &[u8]) -> Result<ServiceFrame, StoreError> {
    if bytes.len() < 28 {
        return Err(StoreError::Corrupt("service frame too short"));
    }
    if &bytes[..8] != SVC_MAGIC {
        return Err(StoreError::Corrupt("bad service frame magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SERVICE_PROTOCOL_VERSION {
        return Err(StoreError::Corrupt("service protocol version mismatch"));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if len > MAX_FRAME_LEN || bytes.len() as u64 != 28 + len {
        return Err(StoreError::Corrupt("service frame length mismatch"));
    }
    let body_end = bytes.len() - 8;
    let stated = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_end]) != stated {
        return Err(StoreError::Corrupt("service frame checksum mismatch"));
    }
    let mut dec = Dec::new(&bytes[20..body_end]);
    let frame = ServiceFrame::decode(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(StoreError::Corrupt("service frame trailing bytes"));
    }
    Ok(frame)
}

fn corrupt(err: StoreError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{err:?}"))
}

fn write_frame(stream: &mut TcpStream, frame: &ServiceFrame) -> io::Result<()> {
    stream.write_all(&encode_service_frame(frame))
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<ServiceFrame>> {
    let mut header = [0u8; 20];
    match stream.read(&mut header)? {
        0 => return Ok(None),
        mut n => {
            while n < header.len() {
                let m = stream.read(&mut header[n..])?;
                if m == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "torn service frame header",
                    ));
                }
                n += m;
            }
        }
    }
    let len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(corrupt(StoreError::Corrupt("service frame length")));
    }
    let mut rest = vec![0u8; len as usize + 8];
    stream.read_exact(&mut rest)?;
    let mut bytes = Vec::with_capacity(28 + len as usize);
    bytes.extend_from_slice(&header);
    bytes.extend_from_slice(&rest);
    decode_service_frame(&bytes).map(Some).map_err(corrupt)
}

fn accept_loop(listener: &TcpListener, inner: &Arc<ServiceInner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if inner.lock_state().shutdown {
            return;
        }
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            let mut stream = stream;
            let _ = serve_connection(&mut stream, &inner);
        });
    }
}

fn serve_connection(stream: &mut TcpStream, inner: &Arc<ServiceInner>) -> io::Result<()> {
    while let Some(frame) = read_frame(stream)? {
        let reply = match frame {
            ServiceFrame::Submit(spec) => match inner.submit(*spec) {
                Ok((job, predicted_tte)) => ServiceFrame::Submitted { job, predicted_tte },
                Err(reason) => ServiceFrame::Denied { reason },
            },
            ServiceFrame::Status { job } => {
                let st = inner.lock_state();
                match st.jobs.get(&job) {
                    Some(j) => ServiceFrame::StatusIs(Box::new(j.status(job))),
                    None => ServiceFrame::NoSuchJob,
                }
            }
            ServiceFrame::Cancel { job } => ServiceFrame::Ack {
                ok: inner.cancel(job),
            },
            ServiceFrame::Preempt { job } => {
                let mut st = inner.lock_state();
                let ok = match st.jobs.get_mut(&job) {
                    Some(j) if j.state == JobState::Running => {
                        j.stop.store(true, Ordering::SeqCst);
                        true
                    }
                    _ => false,
                };
                drop(st);
                ServiceFrame::Ack { ok }
            }
            ServiceFrame::Resume { job } => {
                let mut st = inner.lock_state();
                let ok = match st.jobs.get_mut(&job) {
                    Some(j) if j.state == JobState::Preempted => {
                        j.state = JobState::Queued;
                        j.resume_next = true;
                        true
                    }
                    _ => false,
                };
                drop(st);
                if ok {
                    inner.cv.notify_all();
                }
                ServiceFrame::Ack { ok }
            }
            ServiceFrame::Bye => {
                write_frame(stream, &ServiceFrame::Bye)?;
                inner.byes.fetch_add(1, Ordering::SeqCst);
                return Ok(());
            }
            // reply-only frames are protocol errors from a client
            ServiceFrame::Submitted { .. }
            | ServiceFrame::Denied { .. }
            | ServiceFrame::StatusIs(_)
            | ServiceFrame::NoSuchJob
            | ServiceFrame::Ack { .. } => {
                return Err(corrupt(StoreError::Corrupt("unexpected client frame")))
            }
        };
        write_frame(stream, &reply)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// client
// ---------------------------------------------------------------------

/// A blocking request–reply client for a remote [`Service`].
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connect, retrying for a few seconds so client processes can
    /// start before the service finishes binding (mirrors the net
    /// transport's worker rendezvous).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Self { stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn call(&mut self, frame: &ServiceFrame) -> io::Result<ServiceFrame> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "service hung up mid-call"))
    }

    /// Submit a job; `Ok(Err(reason))` is an admission rejection.
    #[allow(clippy::result_large_err)]
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<Result<(JobId, f64), String>> {
        match self.call(&ServiceFrame::Submit(Box::new(spec)))? {
            ServiceFrame::Submitted { job, predicted_tte } => Ok(Ok((job, predicted_tte))),
            ServiceFrame::Denied { reason } => Ok(Err(reason)),
            other => Err(corrupt(StoreError::Corrupt(frame_name(&other)))),
        }
    }

    pub fn status(&mut self, job: JobId) -> io::Result<Option<JobStatus>> {
        match self.call(&ServiceFrame::Status { job })? {
            ServiceFrame::StatusIs(status) => Ok(Some(*status)),
            ServiceFrame::NoSuchJob => Ok(None),
            other => Err(corrupt(StoreError::Corrupt(frame_name(&other)))),
        }
    }

    pub fn cancel(&mut self, job: JobId) -> io::Result<bool> {
        self.ack(&ServiceFrame::Cancel { job })
    }

    pub fn preempt(&mut self, job: JobId) -> io::Result<bool> {
        self.ack(&ServiceFrame::Preempt { job })
    }

    pub fn resume(&mut self, job: JobId) -> io::Result<bool> {
        self.ack(&ServiceFrame::Resume { job })
    }

    fn ack(&mut self, frame: &ServiceFrame) -> io::Result<bool> {
        match self.call(frame)? {
            ServiceFrame::Ack { ok } => Ok(ok),
            other => Err(corrupt(StoreError::Corrupt(frame_name(&other)))),
        }
    }

    /// Poll until the job leaves `Queued`/`Running` (remote counterpart
    /// of [`Service::wait`]).
    pub fn wait(&mut self, job: JobId) -> io::Result<JobStatus> {
        loop {
            let status = self
                .status(job)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "wait on unknown job"))?;
            if !matches!(status.state, JobState::Queued | JobState::Running) {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Orderly goodbye (the service closes the connection after).
    pub fn bye(mut self) -> io::Result<()> {
        match self.call(&ServiceFrame::Bye)? {
            ServiceFrame::Bye => Ok(()),
            other => Err(corrupt(StoreError::Corrupt(frame_name(&other)))),
        }
    }
}

fn frame_name(frame: &ServiceFrame) -> &'static str {
    match frame {
        ServiceFrame::Submit(_) => "unexpected Submit reply",
        ServiceFrame::Submitted { .. } => "unexpected Submitted reply",
        ServiceFrame::Denied { .. } => "unexpected Denied reply",
        ServiceFrame::Status { .. } => "unexpected Status reply",
        ServiceFrame::StatusIs(_) => "unexpected StatusIs reply",
        ServiceFrame::NoSuchJob => "unexpected NoSuchJob reply",
        ServiceFrame::Cancel { .. } => "unexpected Cancel reply",
        ServiceFrame::Preempt { .. } => "unexpected Preempt reply",
        ServiceFrame::Resume { .. } => "unexpected Resume reply",
        ServiceFrame::Ack { .. } => "unexpected Ack reply",
        ServiceFrame::Bye => "unexpected Bye reply",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ParallelConfig;
    use uq_mlmcmc::ledger::PairingMode;

    fn spec() -> JobSpec {
        let mut base = ParallelConfig::new(vec![40, 20], vec![1, 1]);
        base.burn_in = vec![4, 2];
        base.seed = 77;
        base.record_samples = true;
        base.speculation = true;
        base.pairing = PairingMode::Ledger;
        JobSpec {
            tenant: 3,
            priority: 2.0,
            model: "ridge".to_string(),
            config: RuntimeConfig {
                base,
                n_workers: 1,
                collector_shards: 1,
            },
            deadline: 0.0,
        }
    }

    #[test]
    fn service_frames_round_trip() {
        let frames = vec![
            ServiceFrame::Submit(Box::new(spec())),
            ServiceFrame::Submitted {
                job: 9,
                predicted_tte: 1.25,
            },
            ServiceFrame::Denied {
                reason: "no".to_string(),
            },
            ServiceFrame::Status { job: 4 },
            ServiceFrame::StatusIs(Box::new(JobStatus {
                job: 4,
                tenant: 3,
                state: JobState::Preempted,
                seed: 0xAB,
                snapshots: 2,
                serves: 41,
                digest: 0xDEAD,
                estimate: vec![0.25, -1.5],
                predicted_tte: 0.5,
            })),
            ServiceFrame::NoSuchJob,
            ServiceFrame::Cancel { job: 1 },
            ServiceFrame::Preempt { job: 2 },
            ServiceFrame::Resume { job: 3 },
            ServiceFrame::Ack { ok: true },
            ServiceFrame::Bye,
        ];
        for frame in frames {
            let bytes = encode_service_frame(&frame);
            let back = decode_service_frame(&bytes).expect("round trip");
            assert_eq!(
                format!("{frame:?}"),
                format!("{back:?}"),
                "frame changed across the wire"
            );
        }
    }

    #[test]
    fn torn_and_flipped_service_frames_are_rejected() {
        let bytes = encode_service_frame(&ServiceFrame::Submit(Box::new(spec())));
        assert!(decode_service_frame(&bytes[..bytes.len() - 1]).is_err());
        for i in [0, 9, 15, 25, bytes.len() - 3] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_service_frame(&bad).is_err(),
                "flipped byte {i} must not decode"
            );
        }
    }
}
