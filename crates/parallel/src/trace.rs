//! Per-rank activity tracing — the data behind the paper's Fig. 9
//! load-balancing Gantt chart (green = model evaluations, yellow =
//! burn-in).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// What a rank was doing during a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A forward-model evaluation on `level`.
    Eval { level: usize },
    /// Chain burn-in on `level` (Fig. 9's yellow boxes).
    Burnin { level: usize },
    /// Serving a coarse-proposal request.
    Serve { level: usize },
    /// Reassigned to a new level by the load balancer.
    Reassign { from: usize, to: usize },
}

/// One recorded activity span.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub rank: usize,
    pub kind: SpanKind,
    /// Seconds since the tracer epoch.
    pub start: f64,
    pub end: f64,
}

/// Shared, thread-safe trace sink.
#[derive(Clone)]
pub struct Tracer {
    epoch: Instant,
    events: Arc<Mutex<Vec<TraceEvent>>>,
    enabled: bool,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: true,
        }
    }

    /// A tracer that drops everything (zero overhead in hot paths).
    pub fn disabled() -> Self {
        Self {
            epoch: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the epoch.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record a span with explicit timestamps.
    pub fn record(&self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        if self.enabled {
            self.events.lock().push(TraceEvent {
                rank,
                kind,
                start,
                end,
            });
        }
    }

    /// Record an instantaneous marker.
    pub fn mark(&self, rank: usize, kind: SpanKind) {
        let t = self.now();
        self.record(rank, kind, t, t);
    }

    /// Time a closure and record it as a span.
    pub fn span<R>(&self, rank: usize, kind: SpanKind, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = self.now();
        let out = f();
        self.record(rank, kind, start, self.now());
        out
    }

    /// Snapshot of all recorded events (sorted by start time).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evts = self.events.lock().clone();
        evts.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        evts
    }

    /// Render a CSV (`rank,kind,level,start,end`) for plotting Fig. 9.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,kind,level,start,end\n");
        for e in self.events() {
            let (kind, level) = match e.kind {
                SpanKind::Eval { level } => ("eval", level as isize),
                SpanKind::Burnin { level } => ("burnin", level as isize),
                SpanKind::Serve { level } => ("serve", level as isize),
                SpanKind::Reassign { to, .. } => ("reassign", to as isize),
            };
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6}\n",
                e.rank, kind, level, e.start, e.end
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans() {
        let t = Tracer::new();
        t.record(3, SpanKind::Eval { level: 1 }, 0.0, 0.5);
        t.record(2, SpanKind::Burnin { level: 0 }, 0.1, 0.2);
        let evts = t.events();
        assert_eq!(evts.len(), 2);
        assert_eq!(evts[0].rank, 3); // sorted by start
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let t = Tracer::disabled();
        t.record(0, SpanKind::Eval { level: 0 }, 0.0, 1.0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn span_times_closure() {
        let t = Tracer::new();
        let v = t.span(1, SpanKind::Serve { level: 2 }, || 42);
        assert_eq!(v, 42);
        let evts = t.events();
        assert_eq!(evts.len(), 1);
        assert!(evts[0].end >= evts[0].start);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = Tracer::new();
        t.record(0, SpanKind::Eval { level: 2 }, 0.0, 1.0);
        t.record(1, SpanKind::Reassign { from: 0, to: 2 }, 1.0, 1.0);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "rank,kind,level,start,end");
        assert!(lines[1].starts_with("0,eval,2,"));
    }

    #[test]
    fn tracer_is_shareable_across_threads() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for rank in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    t.mark(rank, SpanKind::Burnin { level: 0 });
                });
            }
        });
        assert_eq!(t.events().len(), 4);
    }
}
