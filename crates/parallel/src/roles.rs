//! The MLMCMC role protocols (paper Fig. 8) ported onto the cooperative
//! [`runtime`](crate::runtime): the **same scheduling policy** as the
//! thread scheduler in [`crate::scheduler`], executed by suspendable
//! state machines so paper-scale rank counts run live on a few cores.
//!
//! Differences from the thread scheduler — all mechanical, none of
//! policy:
//!
//! * **Suspendable controllers.** A controller's coupled chain uses
//!   [`PendingCoarseSource`], so a step that needs a coarse proposal
//!   suspends at `StepOutcome::NeedCoarse`; the controller sends the
//!   `CoarseRequest` itself, parks on a wait predicate and finishes the
//!   step via `MlChain::resume_step` when the sample (or a teardown
//!   poison) arrives. No OS thread ever blocks on a chain's behalf.
//! * **Batched phonebook routing.** The phonebook drains *every* queued
//!   message per wakeup and routes the whole batch in one pass; batch
//!   sizes are reported in [`PhonebookStats`] (the `BENCH_PR3` routing
//!   metric).
//! * **Sharded collectors.** Each level owns `collector_shards` collector
//!   ranks; controllers scatter corrections round-robin, shards absorb a
//!   quota of `N_l / shards` each and the root merges their streaming
//!   moments (Chan's parallel combination) at shutdown, so no single
//!   collector rank serializes a fast level.
//!
//! With `collector_shards == 1` the rank layout is identical to the
//! thread scheduler's (root 0, phonebook 1, collectors `2..2+L+1`,
//! controllers after) and controllers derive the same per-rank RNG
//! streams, which is what the `scaling_live` experiment's estimate
//! cross-check relies on.

use crate::obs::{Counter, Hist, SpanKind, Tracer};
use crate::runtime::{Poll, Runtime, RuntimeStats, VCtx, VirtualRank};
use crate::scheduler::{
    controller_seed, poison_sample, CollectorData, Msg, ParallelCheckpoint, ParallelConfig,
    ParallelLevelReport, ParallelReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::Instant;
use uq_mcmc::SamplingProblem;
use uq_mlmcmc::counting::{CountingProblem, EvalCounter};
use uq_mlmcmc::coupled::{CoarseSample, MlChain, PendingCoarseSource, StepOutcome};
use uq_mlmcmc::ledger::{self, LedgerBook, LedgerLease, LedgerState, LedgerStats, PairingMode};
use uq_mlmcmc::store::{Backend, ChainCkpt, CollectorCkpt, RunSnapshot};
use uq_mlmcmc::LevelFactory;

const ROOT: usize = 0;
const PHONEBOOK: usize = 1;

/// Configuration of a cooperative-runtime run: the thread scheduler's
/// [`ParallelConfig`] plus the runtime's worker-pool and sharding knobs.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// The scheduling policy inputs (targets, burn-in, chains, seed, …).
    pub base: ParallelConfig,
    /// OS threads driving the virtual ranks.
    pub n_workers: usize,
    /// Collector shards per level (`1` reproduces the thread scheduler's
    /// rank layout exactly).
    pub collector_shards: usize,
}

impl RuntimeConfig {
    pub fn new(samples_per_level: Vec<usize>, chains_per_level: Vec<usize>) -> Self {
        Self {
            base: ParallelConfig::new(samples_per_level, chains_per_level),
            n_workers: 4,
            collector_shards: 1,
        }
    }

    pub fn n_levels(&self) -> usize {
        self.base.n_levels()
    }

    /// Total virtual ranks: root + phonebook + `shards` collectors per
    /// level + one rank per chain.
    pub fn n_ranks(&self) -> usize {
        2 + self.n_levels() * self.collector_shards
            + self.base.chains_per_level.iter().sum::<usize>()
    }

    fn first_controller_rank(&self) -> usize {
        2 + self.n_levels() * self.collector_shards
    }

    fn collector_rank(&self, level: usize, shard: usize) -> usize {
        2 + level * self.collector_shards + shard
    }

    /// Initial level of the controller at `rank`.
    fn initial_level(&self, rank: usize) -> usize {
        let mut offset = rank - self.first_controller_rank();
        for (level, &count) in self.base.chains_per_level.iter().enumerate() {
            if offset < count {
                return level;
            }
            offset -= count;
        }
        unreachable!("rank beyond controller range")
    }

    /// Correction quota of `shard` on `level`: `N_l` split as evenly as
    /// possible, summing exactly to `N_l`.
    fn shard_quota(&self, level: usize, shard: usize) -> usize {
        let target = self.base.samples_per_level[level];
        let shards = self.collector_shards;
        target / shards + usize::from(shard < target % shards)
    }
}

/// Phonebook routing/batching statistics (the perf signature of batched
/// routing: messages handled per wakeup).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhonebookStats {
    /// Wakeups that processed at least one message.
    pub wakeups: usize,
    /// Total messages processed.
    pub messages: usize,
    /// Largest batch drained in a single wakeup.
    pub max_batch: usize,
    /// Coarse-proposal handoffs routed (`Serve` forwards).
    pub routed: usize,
    /// Load-balancer reassignments issued.
    pub reassignments: usize,
    /// Rewind-ledger session statistics (sessions opened, serves,
    /// diverged pairing legs).
    pub ledger: LedgerStats,
}

impl PhonebookStats {
    /// Mean messages per wakeup.
    pub fn mean_batch(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.messages as f64 / self.wakeups as f64
        }
    }
}

/// Results of a cooperative-runtime run.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The assembled estimator report — same shape as the thread
    /// scheduler's, so downstream analysis is backend-agnostic.
    pub report: ParallelReport,
    pub phonebook: PhonebookStats,
    /// Runtime counters (polls, wakeups, dropped shutdown sends).
    pub runtime: RuntimeStats,
    pub n_workers: usize,
    /// The run was stopped by [`ParallelCheckpoint::stop`] at a quiesce
    /// barrier: `report` carries the partial moments up to the cut and
    /// the just-persisted snapshot is the resume point.
    pub preempted: bool,
}

/// Per-rank outputs collected by the runtime.
enum RoleOut {
    Root(Box<(ParallelReport, PhonebookStats, bool)>),
    Quiet,
}

// ---------------------------------------------------------------------
// root
// ---------------------------------------------------------------------

enum RootPhase {
    /// Waiting for every collector shard of every level.
    Levels,
    /// Phonebook shutdown handshake.
    Phonebook,
    /// Gathering collector/controller reports.
    Gather,
}

struct RootRank<'a> {
    config: &'a RuntimeConfig,
    start: Instant,
    phase: RootPhase,
    /// Shards of each level that reported `LevelDone`.
    shards_done: Vec<usize>,
    level_done: Vec<bool>,
    phonebook_stats: PhonebookStats,
    collectors: Vec<Option<CollectorData>>,
    collector_reports: usize,
    controller_reports: usize,
    evals: Vec<usize>,
    eval_secs: Vec<f64>,
    reassignments: usize,
    /// Checkpoint policy (None disables the quiesce protocol).
    ckpt: Option<&'a ParallelCheckpoint<'a>>,
    /// A checkpoint is in flight (at most one at a time; shutdown waits
    /// for it so a snapshot cut is never torn).
    ckpt_active: bool,
    ckpt_start: f64,
    chain_ckpts: Vec<ChainCkpt>,
    coll_ckpts: Vec<CollectorCkpt>,
    /// Set when [`ParallelCheckpoint::stop`] fired at a barrier.
    preempted: bool,
    tracer: Tracer,
}

impl<'a> RootRank<'a> {
    fn new(
        config: &'a RuntimeConfig,
        start: Instant,
        tracer: &Tracer,
        ckpt: Option<&'a ParallelCheckpoint<'a>>,
    ) -> Self {
        let n_levels = config.n_levels();
        Self {
            config,
            start,
            tracer: tracer.clone(),
            phase: RootPhase::Levels,
            shards_done: vec![0; n_levels],
            level_done: vec![false; n_levels],
            phonebook_stats: PhonebookStats::default(),
            collectors: vec![None; n_levels],
            collector_reports: 0,
            controller_reports: 0,
            evals: vec![0; n_levels],
            eval_secs: vec![0.0; n_levels],
            reassignments: 0,
            ckpt,
            ckpt_active: false,
            ckpt_start: 0.0,
            chain_ckpts: Vec::new(),
            coll_ckpts: Vec::new(),
            preempted: false,
        }
    }

    /// Once every controller acked its pause and every collector shard
    /// flushed, ask the phonebook for the ledger export (the final piece
    /// of the cut).
    fn maybe_request_ledger(&self, ctx: &VCtx<'_, Msg>) {
        let n_controllers = self.config.n_ranks() - self.config.first_controller_rank();
        let n_collectors = self.config.n_levels() * self.config.collector_shards;
        if self.chain_ckpts.len() == n_controllers && self.coll_ckpts.len() == n_collectors {
            ctx.send(PHONEBOOK, Msg::Checkpoint);
        }
    }

    /// Assemble the consistent cut, persist it, resume the controllers.
    fn complete_checkpoint(&mut self, ctx: &VCtx<'_, Msg>, ledger: LedgerState) {
        let spec = self
            .ckpt
            .expect("ledger checkpoint without a checkpoint spec");
        self.chain_ckpts.sort_by_key(|c| c.rank);
        self.coll_ckpts.sort_by_key(|c| (c.level, c.shard));
        let top = self.config.n_levels() - 1;
        let samples_done = self
            .coll_ckpts
            .iter()
            .filter(|c| c.level == top)
            .map(|c| c.count)
            .sum();
        let snapshot = RunSnapshot {
            backend: Backend::Runtime,
            seed: self.config.base.seed,
            samples_done,
            chains: std::mem::take(&mut self.chain_ckpts),
            collectors: std::mem::take(&mut self.coll_ckpts),
            ledger: Some(ledger),
            sequential: None,
        };
        let hash = spec
            .store
            .put_snapshot(&snapshot, spec.config_hash)
            .expect("checkpoint: snapshot write failed");
        if let Some(hook) = spec.on_snapshot {
            hook(samples_done, &hash);
        }
        if spec
            .stop
            .is_some_and(|s| s.load(std::sync::atomic::Ordering::SeqCst))
        {
            // Graceful preemption: the snapshot just persisted is the
            // resume point. Every controller is paused at a clean
            // boundary (they accept `Shutdown` while paused) and the
            // ledger is drained, so declaring all levels done drives the
            // normal phonebook → collectors → controllers teardown with
            // nothing in flight.
            self.preempted = true;
            for done in self.level_done.iter_mut() {
                *done = true;
            }
        } else {
            for rank in self.config.first_controller_rank()..self.config.n_ranks() {
                ctx.send(rank, Msg::CheckpointDone);
            }
        }
        self.tracer.record(
            ROOT,
            SpanKind::Checkpoint,
            self.ckpt_start,
            self.tracer.now(),
        );
        self.ckpt_active = false;
    }

    /// Merge a shard's data into the level accumulator (Chan's parallel
    /// moment combination, matching `RunningMoments::merge`).
    fn absorb_collector(&mut self, data: CollectorData) {
        let level = data.level;
        self.collector_reports += 1;
        let acc = &mut self.collectors[level];
        let Some(acc) = acc else {
            *acc = Some(data);
            return;
        };
        if data.n_samples == 0 {
            return;
        }
        if acc.n_samples == 0 {
            *acc = data;
            return;
        }
        let n1 = acc.n_samples as f64;
        let n2 = data.n_samples as f64;
        let total = n1 + n2;
        for i in 0..acc.mean.len() {
            let delta = data.mean[i] - acc.mean[i];
            // m2 reconstructed from the unbiased sample variance
            let m2 = acc.variance[i] * (n1 - 1.0).max(0.0)
                + data.variance[i] * (n2 - 1.0).max(0.0)
                + delta * delta * n1 * n2 / total;
            acc.mean[i] += delta * n2 / total;
            acc.variance[i] = if total < 2.0 { 0.0 } else { m2 / (total - 1.0) };
        }
        acc.n_samples += data.n_samples;
        acc.theta_samples.extend(data.theta_samples);
        acc.correction_pairs.extend(data.correction_pairs);
    }

    fn assemble(&mut self) -> ParallelReport {
        let levels = self
            .collectors
            .iter_mut()
            .enumerate()
            .map(|(level, c)| {
                let c = c.take().expect("collector report missing");
                ParallelLevelReport {
                    level,
                    n_samples: c.n_samples,
                    mean_correction: c.mean,
                    var_correction: c.variance,
                    evaluations: self.evals[level],
                    mean_eval_ms: if self.evals[level] > 0 {
                        self.eval_secs[level] * 1e3 / self.evals[level] as f64
                    } else {
                        0.0
                    },
                    theta_samples: c.theta_samples,
                    correction_pairs: c.correction_pairs,
                }
            })
            .collect();
        ParallelReport {
            levels,
            elapsed: self.start.elapsed().as_secs_f64(),
            n_ranks: self.config.n_ranks(),
            reassignments: self.reassignments,
        }
    }
}

impl VirtualRank<Msg> for RootRank<'_> {
    type Output = RoleOut;

    fn poll(&mut self, ctx: &mut VCtx<'_, Msg>) -> Poll<Msg, RoleOut> {
        let config = self.config;
        let n_levels = config.n_levels();
        let n_controllers = config.n_ranks() - config.first_controller_rank();
        loop {
            match self.phase {
                RootPhase::Levels => {
                    while let Some(env) = ctx.try_recv_match(|e| {
                        matches!(
                            e.msg,
                            Msg::LevelDone { .. }
                                | Msg::Reassign { .. }
                                | Msg::CheckpointTick
                                | Msg::ControllerCkpt(_)
                                | Msg::CollectorCkpt(_)
                                | Msg::LedgerCkpt(_)
                        )
                    }) {
                        match env.msg {
                            Msg::LevelDone { level } => {
                                self.shards_done[level] += 1;
                                if self.shards_done[level] == config.collector_shards
                                    && !self.level_done[level]
                                {
                                    self.level_done[level] = true;
                                    for rank in config.first_controller_rank()..config.n_ranks() {
                                        ctx.send(rank, Msg::StopProducing { level });
                                    }
                                    ctx.send(PHONEBOOK, Msg::LevelDone { level });
                                }
                            }
                            Msg::Reassign { .. } => self.reassignments += 1,
                            Msg::CheckpointTick => {
                                // start a checkpoint unless one is in
                                // flight or shutdown is imminent
                                if self.ckpt.is_some()
                                    && !self.ckpt_active
                                    && self.level_done.iter().any(|d| !d)
                                {
                                    self.ckpt_active = true;
                                    self.ckpt_start = self.tracer.now();
                                    self.chain_ckpts.clear();
                                    self.coll_ckpts.clear();
                                    for rank in config.first_controller_rank()..config.n_ranks() {
                                        ctx.send(rank, Msg::Checkpoint);
                                    }
                                }
                            }
                            Msg::ControllerCkpt(c) => {
                                self.tracer.incr(Counter::BarrierAcks);
                                self.chain_ckpts.push(*c);
                                self.maybe_request_ledger(ctx);
                            }
                            Msg::CollectorCkpt(c) => {
                                self.tracer.incr(Counter::BarrierAcks);
                                self.coll_ckpts.push(*c);
                                self.maybe_request_ledger(ctx);
                            }
                            Msg::LedgerCkpt(ledger) => {
                                self.tracer.incr(Counter::BarrierAcks);
                                self.complete_checkpoint(ctx, *ledger);
                            }
                            _ => unreachable!(),
                        }
                    }
                    // an in-flight checkpoint defers shutdown (its cut
                    // must be fully persisted, never torn)
                    if self.level_done.iter().all(|&d| d) && !self.ckpt_active {
                        // shut the phonebook down first, so no request can
                        // be forwarded to a controller that already exited
                        ctx.send(PHONEBOOK, Msg::Shutdown);
                        self.phase = RootPhase::Phonebook;
                        continue;
                    }
                    return Poll::Wait(Box::new(|e| {
                        matches!(
                            e.msg,
                            Msg::LevelDone { .. }
                                | Msg::Reassign { .. }
                                | Msg::CheckpointTick
                                | Msg::ControllerCkpt(_)
                                | Msg::CollectorCkpt(_)
                                | Msg::LedgerCkpt(_)
                        )
                    }));
                }
                RootPhase::Phonebook => {
                    let mut acked = false;
                    while let Some(env) = ctx.try_recv_match(|e| {
                        matches!(
                            e.msg,
                            Msg::PhonebookDown | Msg::PhonebookReport(_) | Msg::Reassign { .. }
                        )
                    }) {
                        match env.msg {
                            Msg::PhonebookDown => acked = true,
                            Msg::PhonebookReport(stats) => self.phonebook_stats = *stats,
                            Msg::Reassign { .. } => self.reassignments += 1,
                            _ => unreachable!(),
                        }
                    }
                    if !acked {
                        return Poll::Wait(Box::new(|e| {
                            matches!(e.msg, Msg::PhonebookDown | Msg::PhonebookReport(_))
                        }));
                    }
                    for level in 0..n_levels {
                        for shard in 0..config.collector_shards {
                            ctx.send(config.collector_rank(level, shard), Msg::Shutdown);
                        }
                    }
                    for rank in config.first_controller_rank()..config.n_ranks() {
                        ctx.send(rank, Msg::Shutdown);
                    }
                    self.phase = RootPhase::Gather;
                }
                RootPhase::Gather => {
                    while let Some(env) = ctx.try_recv() {
                        match env.msg {
                            Msg::CollectorReport(data) => self.absorb_collector(*data),
                            Msg::ControllerReport { evals, eval_secs } => {
                                for (acc, v) in self.evals.iter_mut().zip(&evals) {
                                    *acc += v;
                                }
                                for (acc, v) in self.eval_secs.iter_mut().zip(&eval_secs) {
                                    *acc += v;
                                }
                                self.controller_reports += 1;
                            }
                            Msg::Reassign { .. } => self.reassignments += 1,
                            _ => {}
                        }
                    }
                    if self.collector_reports == n_levels * config.collector_shards
                        && self.controller_reports == n_controllers
                    {
                        let report = self.assemble();
                        let stats = self.phonebook_stats;
                        let preempted = self.preempted;
                        return Poll::Exit(RoleOut::Root(Box::new((report, stats, preempted))));
                    }
                    return Poll::Wait(Box::new(|_| true));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// phonebook
// ---------------------------------------------------------------------

struct PhonebookRank<'a> {
    config: &'a RuntimeConfig,
    tracer: &'a Tracer,
    /// Controllers of level `l` announcing serve availability.
    ready: Vec<VecDeque<usize>>,
    /// Requesters waiting for a level-`l` serve, with their anchors.
    pending: Vec<VecDeque<(usize, Box<CoarseSample>)>>,
    /// The per-requester rewind ledger (lease lookups happen inside the
    /// batched drain loop — one session map access per routed serve).
    ledger: LedgerBook,
    level_of: std::collections::HashMap<usize, usize>,
    done: Vec<bool>,
    stats: PhonebookStats,
    // reassignment rate limiting at the model-runtime timescale (same
    // policy as the thread scheduler's phonebook)
    last_ready_at: Vec<f64>,
    ema_interval: Vec<f64>,
    last_reassign_at: f64,
    epoch: Instant,
    /// Serves dispatched but not yet written back: a checkpoint's ledger
    /// export waits for zero, so the export reflects every outcome a
    /// captured chain observed (consistent cut — DESIGN.md §7).
    in_flight: usize,
    ckpt_pending: bool,
}

impl<'a> PhonebookRank<'a> {
    fn new(config: &'a RuntimeConfig, tracer: &'a Tracer, resume: Option<&LedgerState>) -> Self {
        let n_levels = config.n_levels();
        Self {
            config,
            tracer,
            ready: vec![VecDeque::new(); n_levels],
            pending: vec![VecDeque::new(); n_levels],
            ledger: resume
                .map_or_else(LedgerBook::default, |s| LedgerBook::import_state(s.clone())),
            level_of: (config.first_controller_rank()..config.n_ranks())
                .map(|rank| (rank, config.initial_level(rank)))
                .collect(),
            done: vec![false; n_levels],
            stats: PhonebookStats::default(),
            last_ready_at: vec![f64::NAN; n_levels],
            ema_interval: vec![0.05; n_levels],
            last_reassign_at: f64::NEG_INFINITY,
            epoch: Instant::now(),
            in_flight: 0,
            ckpt_pending: false,
        }
    }

    /// One load-balancing pass (paper Section 4.3) — run once per batch
    /// instead of once per message.
    fn balance(&mut self, ctx: &VCtx<'_, Msg>, now: f64) {
        if !self.config.base.load_balancing {
            return;
        }
        let n_levels = self.config.n_levels();
        let Some(starved) = (0..n_levels).find(|&l| !self.pending[l].is_empty()) else {
            return;
        };
        let donor_level = (0..n_levels).filter(|&m| m != starved).find(|&m| {
            let idle = self.ready[m].len();
            let group_count = self.level_of.values().filter(|&&l| l == m).count();
            let still_needed = (m + 1..n_levels).any(|f| !self.done[f]) || !self.done[m];
            if self.done[m] && self.pending[m].is_empty() {
                idle >= 1 && (!still_needed || group_count >= 2)
            } else {
                idle >= 2 && group_count >= 2
            }
        });
        let Some(donor_level) = donor_level else {
            return;
        };
        let cooldown = self.ema_interval[starved].max(self.ema_interval[donor_level]) * 2.0;
        if now - self.last_reassign_at < cooldown {
            return;
        }
        if let Some(rank) = self.ready[donor_level].pop_front() {
            self.level_of.insert(rank, starved);
            // the reassigned chain restarts: drop its requester sessions
            // (their generations advance, so re-opened sessions derive
            // fresh substreams)
            self.ledger.forget_requester(rank);
            ctx.send(rank, Msg::Reassign { level: starved });
            ctx.send(ROOT, Msg::Reassign { level: starved });
            self.tracer.mark(
                rank,
                SpanKind::Reassign {
                    from: donor_level,
                    to: starved,
                },
            );
            self.stats.reassignments += 1;
            self.last_reassign_at = now;
        }
    }

    /// Speculation may use idle capacity only while no level has unmet
    /// real demand (queued requests outrank precomputation, and the
    /// load balancer needs parked donors when a level starves).
    fn speculation_allowed(&self) -> bool {
        self.config.base.speculation && self.pending.iter().all(VecDeque::is_empty)
    }

    /// A server became available (initial announce or completed serve):
    /// route a queued request first, else put the idle capacity to work
    /// on an accept-case speculation, else park it.
    fn server_available(&mut self, ctx: &VCtx<'_, Msg>, server: usize, level: usize, now: f64) {
        if !self.last_ready_at[level].is_nan() {
            let dt = now - self.last_ready_at[level];
            self.ema_interval[level] = 0.8 * self.ema_interval[level] + 0.2 * dt;
        }
        self.last_ready_at[level] = now;
        if let Some((reply_to, anchor)) = self.pending[level].pop_front() {
            let lease = self
                .ledger
                .lease(self.config.base.seed, level, reply_to, *anchor);
            self.in_flight += 1;
            ctx.send(
                server,
                Msg::Serve {
                    reply_to,
                    lease,
                    speculative: false,
                },
            );
            self.stats.routed += 1;
        } else if self.speculation_allowed() {
            match self.ledger.speculative_lease(level) {
                Some((requester, lease)) => {
                    self.in_flight += 1;
                    ctx.send(
                        server,
                        Msg::Serve {
                            reply_to: requester,
                            lease,
                            speculative: true,
                        },
                    );
                }
                None => self.ready[level].push_back(server),
            }
        } else {
            self.ready[level].push_back(server);
        }
    }
}

impl VirtualRank<Msg> for PhonebookRank<'_> {
    type Output = RoleOut;

    fn poll(&mut self, ctx: &mut VCtx<'_, Msg>) -> Poll<Msg, RoleOut> {
        // batched routing: drain EVERYTHING queued, route in one pass
        let mut batch = 0usize;
        let mut shutdown = false;
        let now = self.epoch.elapsed().as_secs_f64();
        while let Some(env) = ctx.try_recv() {
            batch += 1;
            match env.msg {
                Msg::SampleReady { level } => self.server_available(ctx, env.from, level, now),
                Msg::CoarseRequest {
                    level,
                    reply_to,
                    anchor,
                } => {
                    if let Some(sample) = self.ledger.try_commit(reply_to, level, &anchor) {
                        // speculation hit: answer from the store, zero
                        // serve latency on the requester's critical path
                        ctx.send(
                            reply_to,
                            Msg::CoarseSample {
                                level,
                                sample: Box::new(sample),
                            },
                        );
                        // the commit re-armed the session as a
                        // candidate; pair it with a parked server
                        if self.speculation_allowed() {
                            if let Some(server) = self.ready[level].pop_front() {
                                match self.ledger.speculative_lease(level) {
                                    Some((requester, lease)) => {
                                        self.in_flight += 1;
                                        ctx.send(
                                            server,
                                            Msg::Serve {
                                                reply_to: requester,
                                                lease,
                                                speculative: true,
                                            },
                                        );
                                    }
                                    None => self.ready[level].push_front(server),
                                }
                            }
                        }
                    } else if let Some(server) = self.ready[level].pop_front() {
                        let lease =
                            self.ledger
                                .lease(self.config.base.seed, level, reply_to, *anchor);
                        self.in_flight += 1;
                        ctx.send(
                            server,
                            Msg::Serve {
                                reply_to,
                                lease,
                                speculative: false,
                            },
                        );
                        self.stats.routed += 1;
                    } else {
                        self.pending[level].push_back((reply_to, anchor));
                    }
                }
                Msg::ServeDone {
                    requester,
                    level,
                    session,
                    serves,
                    outcome,
                    speculative,
                } => {
                    self.in_flight -= 1;
                    self.tracer.incr(Counter::WriteBacks);
                    if speculative {
                        self.ledger
                            .store_speculation(requester, level, session, serves, *outcome);
                    } else {
                        self.ledger
                            .write_back(requester, level, session, serves, &outcome);
                    }
                    self.server_available(ctx, env.from, level, now);
                }
                Msg::Checkpoint => self.ckpt_pending = true,
                Msg::LevelDone { level } => self.done[level] = true,
                Msg::Shutdown => shutdown = true,
                _ => {}
            }
        }
        // quiesce: the root sends `Checkpoint` only after every
        // controller acked its pause, so no new real requests arrive and
        // re-dispatches above can only be speculations, which deplete
        // (each parks its session; nothing re-arms candidates while
        // requesters are paused) — `in_flight` reaches zero
        if self.ckpt_pending && self.in_flight == 0 {
            self.ckpt_pending = false;
            debug_assert!(self.pending.iter().all(VecDeque::is_empty));
            ctx.send(ROOT, Msg::LedgerCkpt(Box::new(self.ledger.export_state())));
        }
        if batch > 0 {
            self.stats.wakeups += 1;
            self.stats.messages += batch;
            self.stats.max_batch = self.stats.max_batch.max(batch);
        }
        if shutdown {
            // no more forwards: poison every queued request, report, ack
            for queue in &mut self.pending {
                for (reply_to, _) in queue.drain(..) {
                    ctx.send(reply_to, Msg::Poison);
                }
            }
            self.stats.ledger = self.ledger.stats;
            ctx.send(ROOT, Msg::PhonebookReport(Box::new(self.stats)));
            ctx.send(ROOT, Msg::PhonebookDown);
            return Poll::Exit(RoleOut::Quiet);
        }
        self.balance(ctx, now);
        Poll::Wait(Box::new(|_| true))
    }
}

// ---------------------------------------------------------------------
// collector shard
// ---------------------------------------------------------------------

struct CollectorRank {
    level: usize,
    shard: usize,
    quota: usize,
    record_samples: bool,
    /// Chains assigned to this level (each sends one `CheckpointFlush`).
    producers: usize,
    /// Checkpoint pacing interval; this shard ticks the root when it is
    /// the pacing shard (top level, shard 0) and `ckpt_every > 0`.
    ckpt_every: usize,
    ticker: bool,
    flushes: usize,
    moments: Option<uq_mcmc::stats::VectorMoments>,
    count: usize,
    theta_samples: Vec<Vec<f64>>,
    correction_pairs: Vec<(Vec<f64>, Vec<f64>)>,
    done_sent: bool,
}

impl CollectorRank {
    fn new(
        level: usize,
        shard: usize,
        quota: usize,
        record_samples: bool,
        producers: usize,
        tick_every: Option<usize>,
        resume: Option<&CollectorCkpt>,
    ) -> Self {
        Self {
            level,
            shard,
            quota,
            record_samples,
            producers,
            ckpt_every: tick_every.unwrap_or(0),
            ticker: tick_every.is_some(),
            flushes: 0,
            moments: resume
                .and_then(|r| r.moments.as_deref())
                .map(uq_mcmc::stats::VectorMoments::from_parts),
            count: resume.map_or(0, |r| r.count),
            theta_samples: resume.map(|r| r.theta_samples.clone()).unwrap_or_default(),
            correction_pairs: resume
                .map(|r| r.correction_pairs.clone())
                .unwrap_or_default(),
            done_sent: false,
        }
    }
}

impl VirtualRank<Msg> for CollectorRank {
    type Output = RoleOut;

    fn poll(&mut self, ctx: &mut VCtx<'_, Msg>) -> Poll<Msg, RoleOut> {
        // covers quota == 0 and a resumed shard that was already full
        if !self.done_sent && self.count >= self.quota {
            self.done_sent = true;
            ctx.send(ROOT, Msg::LevelDone { level: self.level });
        }
        while let Some(env) = ctx.try_recv() {
            match env.msg {
                Msg::Correction {
                    level,
                    y,
                    theta,
                    fine_qoi,
                    coarse_qoi,
                } if level == self.level && self.count < self.quota => {
                    self.moments
                        .get_or_insert_with(|| uq_mcmc::stats::VectorMoments::new(y.len()))
                        .push(&y);
                    self.count += 1;
                    if self.record_samples {
                        self.theta_samples.push(theta);
                        if let Some(cq) = coarse_qoi {
                            self.correction_pairs.push((cq, fine_qoi));
                        }
                    }
                    if self.count == self.quota && !self.done_sent {
                        self.done_sent = true;
                        ctx.send(ROOT, Msg::LevelDone { level: self.level });
                    } else if self.ticker && self.count.is_multiple_of(self.ckpt_every) {
                        ctx.send(ROOT, Msg::CheckpointTick);
                    }
                }
                Msg::CheckpointFlush => {
                    // one marker per chain on this level, each sent after
                    // that chain's last pre-pause Correction to this
                    // shard (FIFO per destination): once all arrive the
                    // shard's state is consistent with every captured
                    // chain
                    self.flushes += 1;
                    if self.flushes == self.producers {
                        self.flushes = 0;
                        ctx.send(
                            ROOT,
                            Msg::CollectorCkpt(Box::new(CollectorCkpt {
                                level: self.level,
                                shard: self.shard,
                                count: self.count,
                                moments: self
                                    .moments
                                    .as_ref()
                                    .map(uq_mcmc::stats::VectorMoments::parts),
                                theta_samples: self.theta_samples.clone(),
                                correction_pairs: self.correction_pairs.clone(),
                            })),
                        );
                    }
                }
                Msg::Shutdown => {
                    let (mean, variance) = match &self.moments {
                        Some(m) => (m.mean(), m.variance()),
                        None => (Vec::new(), Vec::new()),
                    };
                    ctx.send(
                        ROOT,
                        Msg::CollectorReport(Box::new(CollectorData {
                            level: self.level,
                            n_samples: self.count,
                            mean,
                            variance,
                            theta_samples: std::mem::take(&mut self.theta_samples),
                            correction_pairs: std::mem::take(&mut self.correction_pairs),
                        })),
                    );
                    return Poll::Exit(RoleOut::Quiet);
                }
                _ => {}
            }
        }
        Poll::Wait(Box::new(|_| true))
    }
}

// ---------------------------------------------------------------------
// controller
// ---------------------------------------------------------------------

/// Which leg of a ledger serve the controller is executing.
enum ServeLeg {
    /// The exactness rewind from the requester's anchor.
    Proposal,
    /// The autonomous pairing track from the session's last state.
    Pairing,
}

/// An in-progress ledger serve: the controller's chain is temporarily
/// rewound to the lease's states and advanced `ρ` steps per leg; nested
/// coarse requests suspend the job like an ordinary coupled step.
/// `speculative` jobs execute the identical pure function of the lease —
/// through every suspension, batched drain and work-stealing migration —
/// but conclude by shipping the outcome to the phonebook's speculation
/// store instead of to `reply_to`.
struct ServeJob {
    reply_to: usize,
    lease: LedgerLease,
    leg: ServeLeg,
    steps_left: usize,
    /// The serve's derived random substream (see `ledger::leg_seed`).
    rng: StdRng,
    /// The controller's own trajectory, restored when the serve ends.
    snapshot: CoarseSample,
    proposal: Option<CoarseSample>,
    /// Accept-case precomputation on the phonebook's behalf.
    speculative: bool,
}

/// What the controller's single outstanding coarse request (if any)
/// belongs to — its own suspended step or the active serve job's nested
/// step. At most one is in flight, so fulfillments route unambiguously.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Await {
    None,
    OwnStep,
    ServeStep,
}

struct ControllerRank<'a> {
    factory: &'a dyn LevelFactory,
    config: &'a RuntimeConfig,
    tracer: &'a Tracer,
    rank: usize,
    level: usize,
    chain: MlChain,
    counters: Vec<EvalCounter>,
    rng: StdRng,
    done_levels: Vec<bool>,
    burnin_left: usize,
    producing: bool,
    pending_serves: VecDeque<(usize, Box<LedgerLease>, bool)>,
    serve_job: Option<ServeJob>,
    announced: bool,
    awaiting: Await,
    /// Epoch time the outstanding coarse request was issued (feeds the
    /// request-wait histogram on fulfillment; meaningless when
    /// `awaiting == Await::None` or tracing is off).
    await_since: f64,
    /// Own stepping suspended for an in-flight checkpoint (serving
    /// continues, so requesters still reach their own clean boundaries).
    paused: bool,
    /// Epoch time the quiesce pause began (span recorded on resume).
    pause_start: f64,
    /// Round-robin cursor over this level's collector shards.
    shard_rr: usize,
}

impl<'a> ControllerRank<'a> {
    fn new(
        factory: &'a dyn LevelFactory,
        config: &'a RuntimeConfig,
        tracer: &'a Tracer,
        rank: usize,
        resume: Option<&ChainCkpt>,
    ) -> Self {
        let n_levels = config.n_levels();
        let level = config.initial_level(rank);
        let counters: Vec<EvalCounter> = (0..n_levels).map(|_| EvalCounter::new()).collect();
        let rng = StdRng::seed_from_u64(controller_seed(config.base.seed, rank));
        let mut this = Self {
            factory,
            config,
            tracer,
            rank,
            level,
            chain: Self::build_chain(factory, &counters, level),
            counters,
            rng,
            done_levels: vec![false; n_levels],
            burnin_left: config.base.burn_in[level],
            producing: true,
            pending_serves: VecDeque::new(),
            serve_job: None,
            announced: false,
            awaiting: Await::None,
            await_since: 0.0,
            paused: false,
            pause_start: 0.0,
            shard_rr: rank,
        };
        this.reset_level_state();
        if let Some(r) = resume {
            // load balancing is off under checkpoint/resume, so the
            // snapshot's level must match the static assignment
            assert_eq!(r.rank, rank, "resume: chain ckpt rank mismatch");
            assert_eq!(r.level, level, "resume: chain ckpt level mismatch");
            this.chain.import_state(r.chain.clone());
            this.rng = StdRng::from_state(r.rng);
            this.done_levels = r.done_levels.clone();
            this.burnin_left = r.burnin_left;
            this.producing = r.producing;
            this.shard_rr = r.shard_rr;
        }
        this
    }

    fn counting_problem(
        factory: &dyn LevelFactory,
        counters: &[EvalCounter],
        level: usize,
    ) -> Box<dyn SamplingProblem> {
        Box::new(CountingProblem::new(
            factory.problem(level),
            counters[level].clone(),
        ))
    }

    fn build_chain(factory: &dyn LevelFactory, counters: &[EvalCounter], level: usize) -> MlChain {
        if level == 0 {
            MlChain::base(
                Self::counting_problem(factory, counters, 0),
                factory.proposal(0),
                factory.starting_point(0),
            )
        } else {
            let coarse_dim = factory.starting_point(level - 1).len();
            let mut theta0 = factory.starting_point(level);
            theta0[..coarse_dim].copy_from_slice(&factory.starting_point(level - 1));
            let source =
                PendingCoarseSource::new(Self::counting_problem(factory, counters, level - 1));
            MlChain::coupled(
                level,
                Self::counting_problem(factory, counters, level),
                Box::new(source),
                factory.proposal(level),
                coarse_dim,
                theta0,
            )
        }
    }

    fn reset_level_state(&mut self) {
        self.burnin_left = self.config.base.burn_in[self.level];
        self.producing = !self.done_levels[self.level];
        self.serve_job = None;
        self.announced = false;
        self.awaiting = Await::None;
    }

    fn rho(&self) -> usize {
        self.factory.subsampling_rate(self.level).max(1)
    }

    /// Trace span for the next chain step — burn-in steps must show up
    /// as `Burnin` like the thread scheduler's (Fig. 9's yellow boxes).
    fn span_kind(&self) -> SpanKind {
        if self.burnin_left > 0 {
            SpanKind::Burnin { level: self.level }
        } else {
            SpanKind::Eval { level: self.level }
        }
    }

    fn is_top(&self) -> bool {
        self.level + 1 >= self.config.n_levels()
    }

    /// Bookkeeping after a completed chain step (mirrors the thread
    /// scheduler's post-step block).
    fn post_step(&mut self, ctx: &VCtx<'_, Msg>) {
        if self.burnin_left > 0 {
            self.burnin_left -= 1;
            return;
        }
        if self.producing {
            let fine_qoi = self.chain.state().qoi.clone();
            let paired = match self.config.base.pairing {
                PairingMode::Proposal => self.chain.last_coarse(),
                PairingMode::Ledger => self.chain.last_pairing(),
            };
            let y = match paired {
                None => fine_qoi.clone(),
                Some(c) => fine_qoi.iter().zip(&c.qoi).map(|(f, cq)| f - cq).collect(),
            };
            // the recorded pair always shows the proposal coupling
            let coarse_qoi = self.chain.last_coarse().map(|c| c.qoi.clone());
            let shards = self.config.collector_shards;
            self.shard_rr = (self.shard_rr + 1) % shards;
            ctx.send(
                self.config.collector_rank(self.level, self.shard_rr),
                Msg::Correction {
                    level: self.level,
                    y,
                    theta: self.chain.state().theta.clone(),
                    fine_qoi,
                    coarse_qoi,
                },
            );
        }
    }

    fn want_step(&self) -> bool {
        self.burnin_left > 0 || self.producing
    }

    /// Begin a ledger serve: snapshot our trajectory, rewind to the
    /// lease's anchor, and set up the proposal leg's substream.
    fn start_serve(&mut self, reply_to: usize, lease: LedgerLease, speculative: bool) {
        let snapshot = self.chain.current_as_sample();
        let rng = StdRng::seed_from_u64(ledger::leg_seed(lease.session_seed, lease.serves));
        self.chain.restore(&lease.anchor);
        self.serve_job = Some(ServeJob {
            reply_to,
            lease,
            leg: ServeLeg::Proposal,
            steps_left: self.rho(),
            rng,
            snapshot,
            proposal: None,
            speculative,
        });
    }

    /// Drive the active serve job until it suspends on a nested coarse
    /// request (`Some(wait predicate)`) or completes (`None`).
    fn drive_serve(&mut self, ctx: &mut VCtx<'_, Msg>) -> Option<crate::runtime::WaitPred<Msg>> {
        let mut job = self.serve_job.take().expect("drive_serve: active job");
        loop {
            if job.steps_left == 0 {
                match job.leg {
                    ServeLeg::Proposal => {
                        let proposal = self.chain.current_as_sample();
                        if job.lease.merged() {
                            // one run serves both tracks while the
                            // requester keeps accepting
                            self.finish_serve(ctx, &job, proposal.clone(), proposal, false);
                            return None;
                        }
                        job.proposal = Some(proposal);
                        job.leg = ServeLeg::Pairing;
                        job.steps_left = self.rho();
                        // common random numbers: the pairing leg re-uses
                        // the serve's substream
                        job.rng = StdRng::seed_from_u64(ledger::leg_seed(
                            job.lease.session_seed,
                            job.lease.serves,
                        ));
                        let pairing = job.lease.pairing.clone().expect("diverged lease");
                        self.chain.restore(&pairing);
                        continue;
                    }
                    ServeLeg::Pairing => {
                        let pairing = self.chain.current_as_sample();
                        let proposal = job.proposal.take().expect("pairing leg has proposal");
                        self.finish_serve(ctx, &job, proposal, pairing, true);
                        return None;
                    }
                }
            }
            let serve_start = self.tracer.now();
            match self.chain.poll_step(&mut job.rng) {
                StepOutcome::Done(_) => {
                    let kind = if job.speculative {
                        SpanKind::Speculate { level: self.level }
                    } else {
                        SpanKind::Serve { level: self.level }
                    };
                    self.tracer
                        .record(self.rank, kind, serve_start, self.tracer.now());
                    job.steps_left -= 1;
                }
                StepOutcome::NeedCoarse => {
                    let want = self.level - 1;
                    let anchor = self
                        .chain
                        .anchor()
                        .expect("serving coupled chain has an anchor")
                        .clone();
                    ctx.send(
                        PHONEBOOK,
                        Msg::CoarseRequest {
                            level: want,
                            reply_to: self.rank,
                            anchor: Box::new(anchor),
                        },
                    );
                    self.awaiting = Await::ServeStep;
                    self.await_since = self.tracer.now();
                    self.serve_job = Some(job);
                    return Some(coarse_wait_pred(want));
                }
            }
        }
    }

    /// Conclude a serve: restore our trajectory, ship the proposal (mate
    /// piggybacked) to the requester — unless the serve was speculative,
    /// in which case nobody asked — and send the phonebook the single
    /// batched `ServeDone` (write-back or speculative outcome plus the
    /// availability re-announce).
    fn finish_serve(
        &mut self,
        ctx: &VCtx<'_, Msg>,
        job: &ServeJob,
        mut proposal: CoarseSample,
        pairing: CoarseSample,
        diverged: bool,
    ) {
        self.chain.restore(&job.snapshot);
        proposal.mate = Some(Box::new(pairing.clone()));
        // the write-back MUST be enqueued before the requester's
        // proposal: program order plus per-destination FIFO then
        // guarantee the phonebook applies it before the requester's
        // next request can arrive — a session never serves the same
        // stream position twice (the no-replay invariant the
        // speculation commit check relies on)
        let for_requester = (!job.speculative).then(|| proposal.clone());
        ctx.send(
            PHONEBOOK,
            Msg::ServeDone {
                requester: job.reply_to,
                level: self.level,
                session: job.lease.session_seed,
                serves: job.lease.serves + 1,
                outcome: Box::new(ledger::ServeOutcome {
                    proposal,
                    pairing,
                    diverged,
                }),
                speculative: job.speculative,
            },
        );
        if let Some(proposal) = for_requester {
            ctx.send(
                job.reply_to,
                Msg::CoarseSample {
                    level: self.level,
                    sample: Box::new(proposal),
                },
            );
        }
        self.tracer.incr(Counter::Serves);
        self.announced = true;
        self.awaiting = Await::None;
    }

    /// Teardown: poison outstanding real serve requests (speculative
    /// targets never asked and must not receive an unsolicited poison),
    /// report, exit.
    fn teardown(&mut self, ctx: &mut VCtx<'_, Msg>) -> Poll<Msg, RoleOut> {
        if let Some(job) = self.serve_job.take() {
            if !job.speculative {
                ctx.send(job.reply_to, Msg::Poison);
            }
        }
        for (reply_to, _, speculative) in self.pending_serves.drain(..) {
            if !speculative {
                ctx.send(reply_to, Msg::Poison);
            }
        }
        while let Some(env) = ctx.try_recv() {
            if let Msg::Serve {
                reply_to,
                speculative: false,
                ..
            } = env.msg
            {
                ctx.send(reply_to, Msg::Poison);
            }
        }
        let evals: Vec<usize> = self.counters.iter().map(EvalCounter::evaluations).collect();
        let eval_secs: Vec<f64> = self.counters.iter().map(EvalCounter::total_secs).collect();
        ctx.send(ROOT, Msg::ControllerReport { evals, eval_secs });
        Poll::Exit(RoleOut::Quiet)
    }
}

impl VirtualRank<Msg> for ControllerRank<'_> {
    type Output = RoleOut;

    fn poll(&mut self, ctx: &mut VCtx<'_, Msg>) -> Poll<Msg, RoleOut> {
        // 1. control messages. While a coarse request or a serve job is
        //    in flight, `Reassign` stays buffered (the thread scheduler
        //    likewise finishes in-flight work before rebuilding).
        let busy = self.awaiting != Await::None || self.serve_job.is_some();
        while let Some(env) = ctx.try_recv_match(|e| {
            matches!(
                e.msg,
                Msg::Serve { .. } | Msg::StopProducing { .. } | Msg::Shutdown | Msg::CheckpointDone
            ) || (!busy && matches!(e.msg, Msg::Reassign { .. } | Msg::Checkpoint))
        }) {
            match env.msg {
                Msg::Serve {
                    reply_to,
                    lease,
                    speculative,
                } => self
                    .pending_serves
                    .push_back((reply_to, lease, speculative)),
                Msg::StopProducing { level } => {
                    self.done_levels[level] = true;
                    if level == self.level {
                        self.producing = false;
                    }
                }
                Msg::Checkpoint => {
                    // `!busy` gates this arm: no own step or serve job is
                    // mid-flight, so the chain sits at a clean boundary
                    // and the rng between draws. Unlike the thread
                    // scheduler this point can be mid-burn-in — the real
                    // `burnin_left` is captured. Flush markers trail our
                    // last Correction to every shard (FIFO per
                    // destination).
                    for shard in 0..self.config.collector_shards {
                        ctx.send(
                            self.config.collector_rank(self.level, shard),
                            Msg::CheckpointFlush,
                        );
                    }
                    ctx.send(
                        ROOT,
                        Msg::ControllerCkpt(Box::new(ChainCkpt {
                            rank: self.rank,
                            level: self.level,
                            burnin_left: self.burnin_left,
                            producing: self.producing,
                            done_levels: self.done_levels.clone(),
                            shard_rr: self.shard_rr,
                            rng: self.rng.state(),
                            chain: self.chain.export_state(),
                        })),
                    );
                    self.paused = true;
                    self.pause_start = self.tracer.now();
                }
                Msg::CheckpointDone => {
                    if self.paused {
                        self.tracer.record(
                            self.rank,
                            SpanKind::Quiesce,
                            self.pause_start,
                            self.tracer.now(),
                        );
                    }
                    self.paused = false;
                }
                Msg::Reassign { level } => {
                    // abandon this chain, rebuild on the new level;
                    // poison anyone we promised a real serve (never a
                    // speculation target, who never asked)
                    for (reply_to, _, speculative) in self.pending_serves.drain(..) {
                        if !speculative {
                            ctx.send(reply_to, Msg::Poison);
                        }
                    }
                    self.level = level;
                    self.chain = Self::build_chain(self.factory, &self.counters, level);
                    self.reset_level_state();
                }
                Msg::Shutdown => return self.teardown(ctx),
                _ => unreachable!(),
            }
        }

        // 2. fulfill the single outstanding coarse request if its sample
        //    arrived — either our own suspended step or the serve job's
        //    nested step
        if self.awaiting != Await::None {
            let want_level = self.level - 1;
            let Some(env) = ctx.try_recv_match(|e| {
                matches!(&e.msg, Msg::CoarseSample { level, .. } if *level == want_level)
                    || matches!(e.msg, Msg::Poison)
            }) else {
                return Poll::Wait(coarse_wait_pred(want_level));
            };
            let coarse = match env.msg {
                Msg::CoarseSample { sample, .. } => *sample,
                _ => poison_sample(),
            };
            self.tracer.observe(
                Hist::RequestWait,
                (self.tracer.now() - self.await_since) * 1e6,
            );
            match self.awaiting {
                Await::OwnStep => {
                    self.awaiting = Await::None;
                    let span = self.span_kind();
                    let eval_start = self.tracer.now();
                    self.chain.resume_step(&mut self.rng, coarse);
                    self.tracer
                        .record(self.rank, span, eval_start, self.tracer.now());
                    self.post_step(ctx);
                    return Poll::Ready;
                }
                Await::ServeStep => {
                    self.awaiting = Await::None;
                    let job = self.serve_job.as_mut().expect("nested step has a job");
                    let serve_start = self.tracer.now();
                    self.chain.resume_step(&mut job.rng, coarse);
                    let kind = if job.speculative {
                        SpanKind::Speculate { level: self.level }
                    } else {
                        SpanKind::Serve { level: self.level }
                    };
                    self.tracer
                        .record(self.rank, kind, serve_start, self.tracer.now());
                    job.steps_left -= 1;
                    return match self.drive_serve(ctx) {
                        Some(wait) => Poll::Wait(wait),
                        None => Poll::Ready,
                    };
                }
                Await::None => unreachable!(),
            }
        }

        // 3. a requester is suspended on every queued serve: run ledger
        //    serves before our own chain
        if self.serve_job.is_some() {
            return match self.drive_serve(ctx) {
                Some(wait) => Poll::Wait(wait),
                None => Poll::Ready,
            };
        }
        if self.burnin_left == 0 {
            if let Some((reply_to, lease, speculative)) = self.pending_serves.pop_front() {
                self.start_serve(reply_to, *lease, speculative);
                return match self.drive_serve(ctx) {
                    Some(wait) => Poll::Wait(wait),
                    None => Poll::Ready,
                };
            }
            if !self.announced && !self.is_top() {
                // availability token: ρ is enforced inside the ledger
                // serve, so no stride gating on our own chain
                ctx.send(PHONEBOOK, Msg::SampleReady { level: self.level });
                self.announced = true;
            }
        }

        // 4. advance our own chain if there is a reason to (never while
        //    paused for a checkpoint — the captured state must stay the
        //    state the snapshot resumes from)
        if self.want_step() && !self.paused {
            let span = self.span_kind();
            let eval_start = self.tracer.now();
            match self.chain.poll_step(&mut self.rng) {
                StepOutcome::Done(_) => {
                    self.tracer
                        .record(self.rank, span, eval_start, self.tracer.now());
                    self.post_step(ctx);
                    Poll::Ready
                }
                StepOutcome::NeedCoarse => {
                    self.awaiting = Await::OwnStep;
                    self.await_since = self.tracer.now();
                    let anchor = self
                        .chain
                        .anchor()
                        .expect("coupled chain has an anchor")
                        .clone();
                    ctx.send(
                        PHONEBOOK,
                        Msg::CoarseRequest {
                            level: self.level - 1,
                            reply_to: self.rank,
                            anchor: Box::new(anchor),
                        },
                    );
                    Poll::Wait(coarse_wait_pred(self.level - 1))
                }
            }
        } else {
            // idle: any message may change the situation
            Poll::Wait(Box::new(|_| true))
        }
    }
}

/// Wait predicate of a controller suspended on a coarse request: its
/// sample, a teardown poison, or shutdown (the single definition keeps
/// the suspend and re-suspend paths in sync).
fn coarse_wait_pred(want_level: usize) -> crate::runtime::WaitPred<Msg> {
    Box::new(move |e| {
        matches!(&e.msg, Msg::CoarseSample { level, .. } if *level == want_level)
            || matches!(e.msg, Msg::Poison | Msg::Shutdown)
    })
}

// ---------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------

/// Run parallel MLMCMC on the cooperative runtime: the thread scheduler's
/// policy with virtual ranks, batched routing and sharded collectors.
///
/// # Panics
/// Panics on inconsistent configuration (levels beyond the factory,
/// levels without chains, zero workers/shards).
pub fn run_runtime(
    factory: &dyn LevelFactory,
    config: &RuntimeConfig,
    tracer: &Tracer,
) -> RuntimeReport {
    run_runtime_on(&Runtime::new(config.n_workers), factory, config, tracer)
}

/// [`run_runtime`] with durable-run support: periodically persist
/// consistent-cut snapshots and/or resume from a captured
/// [`RunSnapshot`] (see [`run_runtime_ckpt_on`] for the contract).
pub fn run_runtime_ckpt(
    factory: &dyn LevelFactory,
    config: &RuntimeConfig,
    tracer: &Tracer,
    checkpoint: Option<&ParallelCheckpoint<'_>>,
    resume: Option<&RunSnapshot>,
) -> RuntimeReport {
    run_runtime_ckpt_on(
        &Runtime::new(config.n_workers),
        factory,
        config,
        tracer,
        checkpoint,
        resume,
    )
}

/// [`run_runtime`] on a caller-provided, reusable worker pool: a scaling
/// sweep drives all its points through one [`Runtime`], whose
/// [`lifetime_stats`](Runtime::lifetime_stats) then aggregate the sweep
/// while each report's [`RuntimeReport::runtime`] stats stay per-run.
/// The pool's worker count wins over `config.n_workers`.
pub fn run_runtime_on(
    runtime: &Runtime,
    factory: &dyn LevelFactory,
    config: &RuntimeConfig,
    tracer: &Tracer,
) -> RuntimeReport {
    run_runtime_ckpt_on(runtime, factory, config, tracer, None, None)
}

/// [`run_runtime_on`] with durable-run support.
///
/// Both `checkpoint` and `resume` require
/// `config.base.load_balancing == false` (snapshots pin each chain to a
/// level). A resumed run continues bit-identically in the deterministic
/// regime (`n_workers == 1`, one chain per level): every chain restores
/// its exact kernel state and RNG stream position, collector shards
/// restore their accumulators and the phonebook re-imports the ledger.
pub fn run_runtime_ckpt_on(
    runtime: &Runtime,
    factory: &dyn LevelFactory,
    config: &RuntimeConfig,
    tracer: &Tracer,
    checkpoint: Option<&ParallelCheckpoint<'_>>,
    resume: Option<&RunSnapshot>,
) -> RuntimeReport {
    assert!(
        config.n_levels() <= factory.n_levels(),
        "run_runtime: more levels configured than the factory provides"
    );
    assert!(
        config.base.chains_per_level.iter().all(|&c| c >= 1),
        "run_runtime: every level needs at least one chain"
    );
    assert!(config.collector_shards >= 1, "run_runtime: need >= 1 shard");
    if checkpoint.is_some() || resume.is_some() {
        assert!(
            !config.base.load_balancing,
            "run_runtime: checkpoint/resume requires load_balancing = false \
             (snapshots pin each chain to a level)"
        );
    }
    let first_controller = config.first_controller_rank();
    if let Some(snap) = resume {
        assert!(
            matches!(snap.backend, Backend::Runtime),
            "run_runtime: snapshot was taken by the {} backend",
            snap.backend
        );
        assert_eq!(
            snap.seed, config.base.seed,
            "run_runtime: snapshot seed mismatch"
        );
        assert_eq!(
            snap.chains.len(),
            config.n_ranks() - first_controller,
            "run_runtime: snapshot chain count mismatch"
        );
        assert_eq!(
            snap.collectors.len(),
            config.n_levels() * config.collector_shards,
            "run_runtime: snapshot collector count mismatch"
        );
    }
    let ckpt_every = checkpoint.map_or(0, |c| c.every);
    // observe work steals as spans on the stolen rank's timeline. The
    // probe runs on the thief's idle path only (after the victim queue
    // lock is released), so installing it cannot perturb scheduling.
    let probe_installed = tracer.is_enabled();
    if probe_installed {
        let t = tracer.clone();
        runtime.set_steal_probe(Some(std::sync::Arc::new(move |rank, victim| {
            t.mark(rank, SpanKind::Steal { victim });
        })));
    }
    let start = Instant::now();
    let run = runtime.run(
        config.n_ranks(),
        |rank, _| -> Box<dyn VirtualRank<Msg, Output = RoleOut> + Send + '_> {
            if rank == ROOT {
                Box::new(RootRank::new(config, start, tracer, checkpoint))
            } else if rank == PHONEBOOK {
                Box::new(PhonebookRank::new(
                    config,
                    tracer,
                    resume.and_then(|s| s.ledger.as_ref()),
                ))
            } else if rank < first_controller {
                let level = (rank - 2) / config.collector_shards;
                let shard = (rank - 2) % config.collector_shards;
                Box::new(CollectorRank::new(
                    level,
                    shard,
                    config.shard_quota(level, shard),
                    config.base.record_samples,
                    config.base.chains_per_level[level],
                    // pacing shard: snapshot collectors are sorted by
                    // (level, shard), so index == rank - 2
                    (ckpt_every > 0 && level + 1 == config.n_levels() && shard == 0)
                        .then_some(ckpt_every),
                    resume.map(|s| &s.collectors[rank - 2]),
                ))
            } else {
                Box::new(ControllerRank::new(
                    factory,
                    config,
                    tracer,
                    rank,
                    resume.map(|s| &s.chains[rank - first_controller]),
                ))
            }
        },
    );
    if probe_installed {
        runtime.set_steal_probe(None);
    }
    let mut report = None;
    for out in run.results {
        if let RoleOut::Root(boxed) = out {
            report = Some(*boxed);
        }
    }
    let (report, phonebook, preempted) = report.expect("root must produce a report");
    RuntimeReport {
        report,
        phonebook,
        runtime: run.stats,
        n_workers: runtime.n_workers(),
        preempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uq_linalg::prob::isotropic_gaussian_logpdf;
    use uq_mcmc::proposal::GaussianRandomWalk;
    use uq_mcmc::Proposal;

    /// Analytic Gaussian hierarchy (same targets as the scheduler tests).
    struct GaussianHierarchy {
        means: Vec<f64>,
        sds: Vec<f64>,
        rho: usize,
    }

    impl GaussianHierarchy {
        fn three_level() -> Self {
            Self {
                means: vec![0.6, 0.9, 1.0],
                sds: vec![0.65, 0.55, 0.5],
                rho: 3,
            }
        }
    }

    struct Target {
        mean: f64,
        sd: f64,
    }

    impl SamplingProblem for Target {
        fn dim(&self) -> usize {
            1
        }
        fn log_density(&mut self, theta: &[f64]) -> f64 {
            isotropic_gaussian_logpdf(theta, &[self.mean], self.sd)
        }
    }

    impl LevelFactory for GaussianHierarchy {
        fn n_levels(&self) -> usize {
            self.means.len()
        }
        fn problem(&self, level: usize) -> Box<dyn SamplingProblem> {
            Box::new(Target {
                mean: self.means[level],
                sd: self.sds[level],
            })
        }
        fn proposal(&self, _level: usize) -> Box<dyn Proposal> {
            Box::new(GaussianRandomWalk::new(0.8))
        }
        fn subsampling_rate(&self, _level: usize) -> usize {
            self.rho
        }
        fn starting_point(&self, _level: usize) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn two_level_runtime_run_completes() {
        let h = GaussianHierarchy {
            means: vec![0.5, 1.0],
            sds: vec![0.6, 0.5],
            rho: 3,
        };
        let mut config = RuntimeConfig::new(vec![2000, 800], vec![1, 1]);
        config.n_workers = 2;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        assert_eq!(r.report.levels[0].n_samples, 2000);
        assert_eq!(r.report.levels[1].n_samples, 800);
        assert!(r.report.total_evaluations() >= 2800);
        assert!(r.phonebook.messages > 0);
    }

    #[test]
    fn three_level_estimate_matches_truth() {
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![30_000, 4_000, 1_500], vec![2, 2, 1]);
        config.base.burn_in = vec![300, 100, 50];
        config.n_workers = 4;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        let est = r.report.expectation()[0];
        assert!(
            (est - 1.0).abs() < 0.08,
            "runtime telescoping estimate {est}"
        );
        assert!((r.report.levels[0].mean_correction[0] - 0.6).abs() < 0.08);
        assert!((r.report.levels[1].mean_correction[0] - 0.3).abs() < 0.1);
    }

    #[test]
    fn sharded_collectors_hit_exact_targets() {
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![4000, 900, 301], vec![2, 1, 1]);
        config.collector_shards = 3;
        config.n_workers = 4;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        // quotas 1334/1333/1333 etc. sum exactly to the targets
        assert_eq!(r.report.levels[0].n_samples, 4000);
        assert_eq!(r.report.levels[1].n_samples, 900);
        assert_eq!(r.report.levels[2].n_samples, 301);
        assert!(r.report.expectation()[0].is_finite());
    }

    #[test]
    fn sharded_moments_match_unsharded() {
        // identical seeds and deterministic routing are NOT guaranteed
        // across shard counts (collector arrival order differs), so this
        // is a statistical check: both estimates near the same truth
        let h = GaussianHierarchy::three_level();
        let mut one = RuntimeConfig::new(vec![20_000, 2_500, 900], vec![2, 1, 1]);
        one.base.burn_in = vec![200, 80, 40];
        one.n_workers = 4;
        let mut four = one.clone();
        four.collector_shards = 4;
        let a = run_runtime(&h, &one, &Tracer::disabled());
        let b = run_runtime(&h, &four, &Tracer::disabled());
        let ea = a.report.expectation()[0];
        let eb = b.report.expectation()[0];
        assert!((ea - 1.0).abs() < 0.1, "unsharded {ea}");
        assert!((eb - 1.0).abs() < 0.1, "sharded {eb}");
        // variances merged across shards stay in a sane range
        for lvl in &b.report.levels {
            for &v in &lvl.var_correction {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn many_virtual_ranks_on_few_workers() {
        // more controllers than any machine has cores: 60 chains on 3
        // worker threads (the thread scheduler would spawn 66 threads)
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![3000, 900, 300], vec![30, 20, 10]);
        config.n_workers = 3;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        assert_eq!(r.report.n_ranks, 2 + 3 + 60);
        assert_eq!(r.report.levels[0].n_samples, 3000);
        assert_eq!(r.report.levels[2].n_samples, 300);
        assert!(r.report.expectation()[0].is_finite());
        // batching must actually happen under this much traffic
        assert!(r.phonebook.max_batch >= 2, "stats {:?}", r.phonebook);
    }

    #[test]
    fn load_balancer_disabled_still_completes() {
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![3000, 600, 200], vec![1, 1, 1]);
        config.base.load_balancing = false;
        config.n_workers = 2;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        assert_eq!(r.report.reassignments, 0);
        assert_eq!(r.phonebook.reassignments, 0);
        assert_eq!(r.report.levels[2].n_samples, 200);
    }

    #[test]
    fn recording_returns_samples_and_pairs() {
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![400, 150, 60], vec![1, 1, 1]);
        config.base.record_samples = true;
        config.collector_shards = 2;
        let r = run_runtime(&h, &config, &Tracer::disabled());
        assert_eq!(r.report.levels[0].theta_samples.len(), 400);
        assert_eq!(r.report.levels[1].correction_pairs.len(), 150);
        assert!(r.report.levels[0].correction_pairs.is_empty());
    }

    /// Bit-level equality of everything deterministic in a report
    /// (eval counts excluded: a resumed run rebuilds its chains).
    fn assert_reports_identical(a: &ParallelReport, b: &ParallelReport) {
        assert_eq!(a.levels.len(), b.levels.len());
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.n_samples, lb.n_samples);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&la.mean_correction), bits(&lb.mean_correction));
            assert_eq!(bits(&la.var_correction), bits(&lb.var_correction));
            assert_eq!(la.theta_samples, lb.theta_samples);
            assert_eq!(la.correction_pairs, lb.correction_pairs);
        }
    }

    #[test]
    fn runtime_resume_from_every_snapshot_is_bit_identical() {
        use std::sync::Mutex;
        use uq_mlmcmc::store::RunStore;

        // the runtime's single-worker mode is deterministic even on
        // three levels (one cooperative scheduler, deterministic poll
        // order), so the full hierarchy is exercised here — including
        // checkpoints that land mid-burn-in on slow levels
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![300, 120, 50], vec![1, 1, 1]);
        config.base.burn_in = vec![30, 20, 10];
        config.base.load_balancing = false;
        config.base.record_samples = true;
        config.n_workers = 1;
        let baseline = run_runtime(&h, &config, &Tracer::disabled());

        let dir = std::env::temp_dir().join(format!("uq-runtime-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let hashes: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let hook = |_done: usize, hash: &str| hashes.lock().unwrap().push(hash.to_string());
        let spec = ParallelCheckpoint {
            store: &store,
            config_hash: 7,
            every: 9,
            on_snapshot: Some(&hook),
            stop: None,
        };
        let checkpointed = run_runtime_ckpt(&h, &config, &Tracer::disabled(), Some(&spec), None);
        // checkpointing itself must not perturb the run
        assert_reports_identical(&baseline.report, &checkpointed.report);

        let hashes = hashes.into_inner().unwrap();
        assert!(
            hashes.len() >= 3,
            "expected several snapshots, got {}",
            hashes.len()
        );
        for hash in &hashes {
            let (snap, cfg) = store.get_snapshot(hash).unwrap();
            assert_eq!(cfg, 7);
            let resumed = run_runtime_ckpt(&h, &config, &Tracer::disabled(), None, Some(&snap));
            assert_reports_identical(&baseline.report, &resumed.report);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracer_captures_eval_spans() {
        let h = GaussianHierarchy::three_level();
        let mut config = RuntimeConfig::new(vec![300, 100, 40], vec![1, 1, 1]);
        config.base.burn_in = vec![50, 20, 10];
        let tracer = Tracer::new();
        let _ = run_runtime(&h, &config, &tracer);
        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Eval { .. })));
        // burn-in steps must be classified like the thread scheduler's
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::Burnin { .. })));
    }
}
