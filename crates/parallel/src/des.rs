//! Discrete-event simulation of the parallel MLMCMC schedule.
//!
//! The live scheduler in [`crate::scheduler`] is bounded by the physical
//! core count; the paper's scaling studies run up to 1024 ranks. This
//! module replays the *same scheduling policy* — per-chain burn-in,
//! one-ready-sample-per-chain coarse-proposal handoffs with subsampling,
//! per-level completion, optional reassignment of idle chains, and a
//! serialized phonebook — in virtual time, with model-evaluation
//! durations drawn from per-level cost distributions (as measured on the
//! real models). It reproduces the paper's strong-scaling saturation
//! (burn-in + few-samples-per-chain, Fig. 11) and the weak-scaling
//! efficiency drop at large rank counts (phonebook/communication
//! saturation, Fig. 12) without needing the hardware.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use uq_linalg::prob::standard_normal;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// Mean model-evaluation time per level (seconds).
    pub eval_time: Vec<f64>,
    /// Lognormal jitter σ applied to each evaluation (0 = deterministic).
    pub eval_jitter: f64,
    /// Target samples per level.
    pub samples_per_level: Vec<usize>,
    /// Burn-in steps per (re)built chain, per level.
    pub burn_in: Vec<usize>,
    /// Subsampling rate ρ_l (serving stride), per level.
    pub subsampling: Vec<usize>,
    /// Initial chain count per level.
    pub chains_per_level: Vec<usize>,
    /// Ranks per chain group (the paper's worker groups).
    pub group_size: usize,
    /// Phonebook service time per coarse-sample handoff (seconds); the
    /// phonebook is a serialized resource, so this models the
    /// communication bound seen at the largest rank counts.
    pub phonebook_service_time: f64,
    /// Bookkeeping time per recorded correction sample at a per-level
    /// collector rank (seconds). Each collector is serialized, so a level
    /// whose samples arrive faster than `1/collector_service_time` makes
    /// the run collector-bound — the effect behind the paper's weak-
    /// scaling efficiency drop at 1024 ranks ("significant load on the
    /// communication infrastructure" from the very fast coarse model).
    pub collector_service_time: f64,
    /// Enable idle-chain reassignment (dynamic load balancing).
    pub load_balancing: bool,
    pub seed: u64,
    /// Model per-requester **ledger serving** (PR 4): a coarse-sample
    /// handoff costs the server `ρ_l × (1 + ledger_pairing_overhead)`
    /// dedicated evaluations executed on demand (the proposal leg plus,
    /// for diverged sessions, the pairing leg), instead of a free handoff
    /// of a pre-produced state; servers serve on demand with no stride
    /// pacing and requesters wait for the serve on their critical path.
    /// `false` replays the legacy shared-state schedule (Figs. 11–12).
    pub ledger: bool,
    /// Fraction of serves that run the second (pairing) leg — feed the
    /// live run's measured `LedgerStats::diverged_fraction` (≈ 1 once
    /// sessions have diverged, which happens at the first rejection).
    pub ledger_pairing_overhead: f64,
    /// Fraction of ledger serves answered from a **speculative**
    /// precomputation (PR 5): the serve's work was done by an idle
    /// server ahead of the request, so it costs the requester only the
    /// phonebook handoff instead of `ρ(1 + diverged)` dedicated server
    /// evaluations — feed the live run's measured
    /// `LedgerStats::hit_rate`. Only meaningful with `ledger`.
    pub spec_hit_rate: f64,
    /// Wasted speculative serve-legs per committed serve (discarded
    /// anchor-mismatch/stale speculations) — feed the live run's
    /// `LedgerStats::waste_per_serve`. Charged as off-critical-path
    /// server work (it inflates busy time and evaluation counts, not
    /// the requester's latency).
    pub spec_waste: f64,
}

impl DesConfig {
    /// Total rank count: root + phonebook + one collector per level +
    /// `group_size` ranks per chain.
    pub fn n_ranks(&self) -> usize {
        2 + self.samples_per_level.len()
            + self.group_size * self.chains_per_level.iter().sum::<usize>()
    }
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct DesResult {
    /// Virtual wall-clock time until every level reached its target.
    pub makespan: f64,
    /// Model evaluations performed per level.
    pub evals_per_level: Vec<usize>,
    /// Chain-group reassignments performed.
    pub reassignments: usize,
    /// Fraction of chain-time spent evaluating models (utilization).
    pub busy_fraction: f64,
    /// Busy (evaluating/serving) chain-seconds attributed to each level
    /// — the virtual-time counterpart of the live tracer's per-level
    /// activity split, so measured and predicted utilization can be
    /// compared level by level (`scaling_live` closes that loop).
    pub busy_per_level: Vec<f64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Remaining burn-in steps.
    Burnin(usize),
    Producing,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChainState {
    Busy,
    WaitingToken,
    Idle,
}

struct Chain {
    level: usize,
    phase: Phase,
    state: ChainState,
    steps_since_token: usize,
    has_ready: bool,
}

/// Time-ordered event key (f64 with total order for the heap).
#[derive(Clone, Copy, Debug, PartialEq)]
struct T(f64);

impl Eq for T {}

impl PartialOrd for T {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for T {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Run the simulation.
///
/// # Panics
/// Panics on inconsistent configuration lengths.
pub fn simulate(config: &DesConfig) -> DesResult {
    let n_levels = config.samples_per_level.len();
    assert_eq!(config.eval_time.len(), n_levels);
    assert_eq!(config.burn_in.len(), n_levels);
    assert_eq!(config.subsampling.len(), n_levels);
    assert_eq!(config.chains_per_level.len(), n_levels);
    assert!(config.group_size >= 1);
    if config.ledger {
        return simulate_ledger(config);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut chains: Vec<Chain> = Vec::new();
    for (level, &count) in config.chains_per_level.iter().enumerate() {
        for _ in 0..count {
            chains.push(Chain {
                level,
                phase: if config.burn_in[level] > 0 {
                    Phase::Burnin(config.burn_in[level])
                } else {
                    Phase::Producing
                },
                state: ChainState::Idle,
                steps_since_token: 0,
                has_ready: false,
            });
        }
    }

    let mut samples = vec![0usize; n_levels];
    let mut evals = vec![0usize; n_levels];
    let mut done = vec![false; n_levels];
    // chains of level l with a ready (unclaimed) sample
    let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_levels];
    // fine chains waiting for a token from level l
    let mut waiting: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_levels];
    let mut pb_free_at = 0.0f64;
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
    let mut busy_time = 0.0f64;
    let mut busy_per_level = vec![0.0f64; n_levels];
    let mut reassignments = 0usize;
    let mut level_count = config.chains_per_level.clone();
    // steal at most once per this many events (the scheduler's "only at
    // the timescale of model evaluations" rate limit)
    let steal_cooldown = 4 * chains.len();
    let mut events_since_steal = steal_cooldown;

    let eval_duration = |rng: &mut StdRng, level: usize| -> f64 {
        let base = config.eval_time[level];
        if config.eval_jitter > 0.0 {
            base * (config.eval_jitter * standard_normal(rng)).exp()
        } else {
            base
        }
    };

    // start a step for `chain` at `t_start` (already holding its token)
    macro_rules! start_step {
        ($heap:expr, $rng:expr, $chains:expr, $id:expr, $t:expr) => {{
            let dur = eval_duration($rng, $chains[$id].level);
            busy_time += dur;
            busy_per_level[$chains[$id].level] += dur;
            $chains[$id].state = ChainState::Busy;
            $heap.push(Reverse((T($t + dur), $id)));
        }};
    }

    // try to begin the next step of `chain` at time `now`: acquire a
    // coarse token if needed (level > 0), else start immediately.
    macro_rules! try_begin {
        ($heap:expr, $rng:expr, $chains:expr, $ready:expr, $waiting:expr, $id:expr, $now:expr) => {{
            let level = $chains[$id].level;
            if level == 0 {
                start_step!($heap, $rng, $chains, $id, $now);
            } else if let Some(server) = $ready[level - 1].pop_front() {
                // phonebook handoff (serialized resource)
                let svc_start = pb_free_at.max($now);
                pb_free_at = svc_start + config.phonebook_service_time;
                $chains[server].has_ready = false;
                // wake the server if it was idling on its ready sample
                if $chains[server].state == ChainState::Idle {
                    $chains[server].state = ChainState::Busy;
                    let sdur = eval_duration($rng, $chains[server].level);
                    busy_time += sdur;
                    busy_per_level[$chains[server].level] += sdur;
                    $heap.push(Reverse((T(pb_free_at + sdur), server)));
                }
                start_step!($heap, $rng, $chains, $id, pb_free_at);
            } else {
                $chains[$id].state = ChainState::WaitingToken;
                $waiting[level - 1].push_back($id);
            }
        }};
    }

    // bootstrap: every chain tries to begin its first step at t = 0
    for id in 0..chains.len() {
        try_begin!(heap, &mut rng, chains, ready, waiting, id, 0.0);
    }

    let mut now = 0.0f64;
    while let Some(Reverse((T(t), id))) = heap.pop() {
        now = t;
        if done.iter().all(|&d| d) {
            break;
        }
        let level = chains[id].level;
        evals[level] += 1;
        // step finished: bookkeeping
        match chains[id].phase {
            Phase::Burnin(remaining) => {
                if remaining <= 1 {
                    chains[id].phase = Phase::Producing;
                    chains[id].steps_since_token = config.subsampling[level].max(1);
                } else {
                    chains[id].phase = Phase::Burnin(remaining - 1);
                }
            }
            Phase::Producing => {
                if !done[level] {
                    samples[level] += 1;
                    if samples[level] >= config.samples_per_level[level] {
                        done[level] = true;
                    }
                }
                chains[id].steps_since_token += 1;
            }
        }
        // token production (not on the finest level)
        let is_top = level + 1 >= n_levels;
        if !is_top
            && chains[id].phase == Phase::Producing
            && !chains[id].has_ready
            && chains[id].steps_since_token >= config.subsampling[level].max(1)
        {
            chains[id].has_ready = true;
            chains[id].steps_since_token = 0;
            if let Some(waiter) = waiting[level].pop_front() {
                // immediate handoff to a waiting fine chain
                let svc_start = pb_free_at.max(now);
                pb_free_at = svc_start + config.phonebook_service_time;
                chains[id].has_ready = false;
                chains[id].steps_since_token = 0;
                start_step!(heap, &mut rng, chains, waiter, pb_free_at);
            } else {
                ready[level].push_back(id);
            }
        }
        // decide this chain's next move
        let keep_producing = !done[level];
        let need_token_buffer = !is_top && !chains[id].has_ready;
        if keep_producing || need_token_buffer {
            try_begin!(heap, &mut rng, chains, ready, waiting, id, now);
        } else {
            chains[id].state = ChainState::Idle;
            // dynamic load balancing: an idle chain (level done, ready
            // sample parked) moves to a *different* starved level,
            // keeping at least one serving chain behind if finer levels
            // still depend on this one
            if config.load_balancing {
                let still_needed = (level + 1..n_levels).any(|f| !done[f]) && !is_top;
                let target = (0..n_levels).find(|&l| {
                    l != level && !waiting[l].is_empty() && !done.iter().skip(l + 1).all(|&d| d)
                });
                if let Some(target) = target {
                    // donate only if this level's token throughput still
                    // covers its consumers afterwards: supply is
                    // (chains-1)/(ρ·t_l) tokens/s, demand is bounded by
                    // the consumers' intrinsic step rate n_{l+1}/t_{l+1}
                    // — emigration must not starve the level it leaves
                    let throughput_safe = if level + 1 < n_levels {
                        let supply_after = (level_count[level].saturating_sub(1)) as f64
                            / (config.subsampling[level].max(1) as f64 * config.eval_time[level]);
                        let demand = level_count[level + 1] as f64 / config.eval_time[level + 1];
                        supply_after >= demand
                    } else {
                        true
                    };
                    if !still_needed || throughput_safe {
                        // leave the ready queue if we were in it
                        ready[level].retain(|&c| c != id);
                        level_count[level] -= 1;
                        level_count[target] += 1;
                        chains[id].level = target;
                        chains[id].phase = if config.burn_in[target] > 0 {
                            Phase::Burnin(config.burn_in[target])
                        } else {
                            Phase::Producing
                        };
                        chains[id].has_ready = false;
                        chains[id].steps_since_token = 0;
                        reassignments += 1;
                        try_begin!(heap, &mut rng, chains, ready, waiting, id, now);
                    }
                }
            }
        }
        // demand-driven steal (load balancing): when token demand on a
        // level persistently outstrips its chain count, convert one
        // *queued* fine chain into a producer for that level — it was
        // making no progress anyway (the paper's "chains waiting imply
        // bad machine utilization" signal)
        if config.load_balancing && events_since_steal >= steal_cooldown {
            'steal: for l in 0..n_levels {
                if waiting[l].len() <= level_count[l] {
                    continue;
                }
                // victim: a waiting chain from the finest over-subscribed
                // queue whose own level keeps at least one chain
                for m in (l..n_levels).rev() {
                    let Some(&victim) = waiting[m].back() else {
                        continue;
                    };
                    let victim_level = chains[victim].level;
                    if victim_level == l || level_count[victim_level] < 2 {
                        continue;
                    }
                    waiting[m].pop_back();
                    level_count[victim_level] -= 1;
                    level_count[l] += 1;
                    chains[victim].level = l;
                    chains[victim].phase = if config.burn_in[l] > 0 {
                        Phase::Burnin(config.burn_in[l])
                    } else {
                        Phase::Producing
                    };
                    chains[victim].has_ready = false;
                    chains[victim].steps_since_token = 0;
                    reassignments += 1;
                    events_since_steal = 0;
                    try_begin!(heap, &mut rng, chains, ready, waiting, victim, now);
                    break 'steal;
                }
            }
        }
        events_since_steal += 1;
    }

    // collector throughput floor: each level's samples are processed by a
    // serialized collector rank
    let collector_floor = config
        .samples_per_level
        .iter()
        .map(|&n| n as f64 * config.collector_service_time)
        .fold(0.0f64, f64::max);
    let makespan = now.max(collector_floor);
    let n_chains = chains.len().max(1);
    DesResult {
        makespan,
        evals_per_level: evals,
        reassignments,
        busy_fraction: if makespan > 0.0 {
            (busy_time / (makespan * n_chains as f64)).min(1.0)
        } else {
            0.0
        },
        busy_per_level,
    }
}

/// The ledger-mode replay (see [`DesConfig::ledger`]): no pre-produced
/// tokens — a requester's step first occupies a coarse server for
/// `ρ × (1 + overhead)` dedicated evaluations (the ledger serve), then
/// runs its own evaluation. Servers prioritize queued serves over their
/// own production, exactly like the live controllers.
#[allow(clippy::too_many_lines)]
fn simulate_ledger(config: &DesConfig) -> DesResult {
    let n_levels = config.samples_per_level.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    struct LChain {
        level: usize,
        phase: Phase,
        /// `Some(requester)` while the chain's scheduled event is a serve
        /// completion on that requester's behalf.
        serve_for: Option<usize>,
    }

    let mut chains: Vec<LChain> = Vec::new();
    for (level, &count) in config.chains_per_level.iter().enumerate() {
        for _ in 0..count {
            chains.push(LChain {
                level,
                phase: if config.burn_in[level] > 0 {
                    Phase::Burnin(config.burn_in[level])
                } else {
                    Phase::Producing
                },
                serve_for: None,
            });
        }
    }
    let n_chains = chains.len();
    let mut samples = vec![0usize; n_levels];
    let mut evals = vec![0usize; n_levels];
    let mut evals_serve = vec![0.0f64; n_levels];
    let mut done = vec![false; n_levels];
    // idle level-l servers available for on-demand serves
    let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_levels];
    // requesters waiting for a level-l serve
    let mut waiting: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_levels];
    let mut level_count = config.chains_per_level.clone();
    let mut pb_free_at = 0.0f64;
    let mut busy_time = 0.0f64;
    let mut busy_per_level = vec![0.0f64; n_levels];
    let mut reassignments = 0usize;
    // reassignment rate limit, mirroring the live phonebook's cooldown
    // (without it, every idle coarse chain would migrate at once and each
    // would pay the target level's burn-in)
    let reassign_cooldown = 4 * n_chains;
    let mut events_since_reassign = reassign_cooldown;
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();

    let eval_duration = |rng: &mut StdRng, level: usize| -> f64 {
        let base = config.eval_time[level];
        if config.eval_jitter > 0.0 {
            base * (config.eval_jitter * standard_normal(rng)).exp()
        } else {
            base
        }
    };

    // A level-l serve runs `legs_l = ρ_l·(1+overhead)` steps of the
    // level-l chain, and — for l ≥ 1 — each of those steps itself needs
    // a level-(l−1) serve. Cost the nesting analytically: per level-l
    // serve, level k ≤ l performs `Π_{j=k..l} legs_j` evaluations and
    // the serve occupies the server for the summed duration. (Queue
    // contention below the serving level is not modeled — the nested
    // work is charged to this serve's critical path directly.)
    let legs: Vec<f64> = (0..n_levels)
        .map(|l| config.subsampling[l].max(1) as f64 * (1.0 + config.ledger_pairing_overhead))
        .collect();
    // serve_evals_at[l][k]: expected level-k evaluations per level-l serve
    let serve_evals_at: Vec<Vec<f64>> = (0..n_levels)
        .map(|l| {
            (0..=l)
                .map(|k| legs[k..=l].iter().product::<f64>())
                .collect()
        })
        .collect();
    let serve_mean_dur: Vec<f64> = (0..n_levels)
        .map(|l| {
            (0..=l)
                .map(|k| serve_evals_at[l][k] * config.eval_time[k])
                .sum()
        })
        .collect();

    // a serve occupies `server` until the legs (including nested serves)
    // are done, then releases the requester's own evaluation (scheduled
    // at the serve-completion event)
    macro_rules! start_serve {
        ($server:expr, $requester:expr, $now:expr) => {{
            let slevel = chains[$server].level;
            let svc_start = pb_free_at.max($now);
            pb_free_at = svc_start + config.phonebook_service_time;
            // jitter the whole serve like one composite evaluation
            let dur =
                serve_mean_dur[slevel] * eval_duration(&mut rng, slevel) / config.eval_time[slevel];
            busy_time += dur;
            // attribute the composite duration to the levels that run
            // its legs (nested serves execute on lower-level chains),
            // matching how the live tracer charges serve spans
            let scale = dur / serve_mean_dur[slevel];
            for (k, e) in serve_evals_at[slevel].iter().enumerate() {
                evals_serve[k] += e;
                busy_per_level[k] += e * config.eval_time[k] * scale;
            }
            chains[$server].serve_for = Some($requester);
            heap.push(Reverse((T(svc_start + dur), $server)));
        }};
    }

    // off-critical-path speculation work: `factor` serve-equivalents of
    // level-`lvl` serving charged to busy time and evaluation counts
    // without occupying the requester or the event timeline
    macro_rules! charge_spec_work {
        ($lvl:expr, $factor:expr) => {{
            let f: f64 = $factor;
            if f > 0.0 {
                busy_time += f * serve_mean_dur[$lvl];
                for (k, e) in serve_evals_at[$lvl].iter().enumerate() {
                    evals_serve[k] += f * e;
                    busy_per_level[k] += f * e * config.eval_time[k];
                }
            }
        }};
    }

    // begin chain `id`'s next step: level 0 evaluates directly, finer
    // levels first need a ledger serve from the level below — unless the
    // serve was speculatively precomputed (probability `spec_hit_rate`),
    // in which case the requester pays only the phonebook handoff. Every
    // serve additionally amortizes `spec_waste` discarded speculative
    // legs as off-path server work.
    macro_rules! begin_step {
        ($id:expr, $now:expr) => {{
            let level = chains[$id].level;
            if level == 0 {
                let dur = eval_duration(&mut rng, 0);
                busy_time += dur;
                busy_per_level[0] += dur;
                heap.push(Reverse((T($now + dur), $id)));
            } else {
                charge_spec_work!(level - 1, config.spec_waste);
                if config.spec_hit_rate > 0.0 && rng.random::<f64>() < config.spec_hit_rate {
                    // speculation hit: serve precomputed during idle time
                    let svc_start = pb_free_at.max($now);
                    pb_free_at = svc_start + config.phonebook_service_time;
                    charge_spec_work!(level - 1, 1.0);
                    let dur = eval_duration(&mut rng, level);
                    busy_time += dur;
                    busy_per_level[level] += dur;
                    heap.push(Reverse((T(pb_free_at + dur), $id)));
                } else if let Some(server) = ready[level - 1].pop_front() {
                    start_serve!(server, $id, $now);
                } else {
                    waiting[level - 1].push_back($id);
                }
            }
        }};
    }

    // what a chain does after completing an event: serve next waiter,
    // else keep producing, else go idle (and maybe reassign)
    macro_rules! next_move {
        ($id:expr, $now:expr) => {{
            let level = chains[$id].level;
            let is_top = level + 1 >= n_levels;
            let serving_capable = chains[$id].phase == Phase::Producing && !is_top;
            if serving_capable && !waiting[level].is_empty() {
                let req = waiting[level].pop_front().expect("non-empty");
                start_serve!($id, req, $now);
            } else if !done[level] || matches!(chains[$id].phase, Phase::Burnin(_)) {
                begin_step!($id, $now);
            } else {
                // idle: park as an on-demand server, or migrate to a
                // starved level (dynamic load balancing, rate-limited)
                let target = if config.load_balancing && events_since_reassign >= reassign_cooldown
                {
                    (0..n_levels).find(|&l| {
                        l != level
                            && !waiting[l].is_empty()
                            && level_count[level] >= 2
                            && !done.iter().skip(l + 1).all(|&d| d)
                    })
                } else {
                    None
                };
                if let Some(target) = target {
                    ready[level].retain(|&c| c != $id);
                    level_count[level] -= 1;
                    level_count[target] += 1;
                    chains[$id].level = target;
                    chains[$id].phase = if config.burn_in[target] > 0 {
                        Phase::Burnin(config.burn_in[target])
                    } else {
                        Phase::Producing
                    };
                    reassignments += 1;
                    events_since_reassign = 0;
                    // the migrated chain starts over (burn-in first, like
                    // the live controllers' rebuild)
                    begin_step!($id, $now);
                } else if !is_top && !ready[level].contains(&$id) {
                    ready[level].push_back($id);
                }
            }
        }};
    }

    for id in 0..n_chains {
        begin_step!(id, 0.0);
    }

    let mut now = 0.0f64;
    while let Some(Reverse((T(t), id))) = heap.pop() {
        now = t;
        if done.iter().all(|&d| d) {
            break;
        }
        events_since_reassign += 1;
        if let Some(requester) = chains[id].serve_for.take() {
            // serve completed: the requester's own evaluation starts now
            let rlevel = chains[requester].level;
            let dur = eval_duration(&mut rng, rlevel);
            busy_time += dur;
            busy_per_level[rlevel] += dur;
            heap.push(Reverse((T(now + dur), requester)));
            next_move!(id, now);
            continue;
        }
        // own step completed
        let level = chains[id].level;
        evals[level] += 1;
        match chains[id].phase {
            Phase::Burnin(remaining) => {
                chains[id].phase = if remaining <= 1 {
                    Phase::Producing
                } else {
                    Phase::Burnin(remaining - 1)
                };
            }
            Phase::Producing => {
                if !done[level] {
                    samples[level] += 1;
                    if samples[level] >= config.samples_per_level[level] {
                        done[level] = true;
                    }
                }
            }
        }
        next_move!(id, now);
    }

    let collector_floor = config
        .samples_per_level
        .iter()
        .map(|&n| n as f64 * config.collector_service_time)
        .fold(0.0f64, f64::max);
    let makespan = now.max(collector_floor);
    for (e, s) in evals.iter_mut().zip(&evals_serve) {
        *e += s.round() as usize;
    }
    DesResult {
        makespan,
        evals_per_level: evals,
        reassignments,
        busy_fraction: if makespan > 0.0 {
            (busy_time / (makespan * n_chains.max(1) as f64)).min(1.0)
        } else {
            0.0
        },
        busy_per_level,
    }
}

/// Distribute `n_chains` chains over levels proportionally to the optimal
/// effort share `√(V_l C_l)` (at least one chain per level).
pub fn distribute_chains(n_chains: usize, variances: &[f64], costs: &[f64]) -> Vec<usize> {
    let n_levels = variances.len();
    assert!(n_chains >= n_levels, "need at least one chain per level");
    let weights: Vec<f64> = variances
        .iter()
        .zip(costs)
        .map(|(&v, &c)| (v.max(1e-30) * c).sqrt())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut out = vec![1usize; n_levels];
    let mut remaining = n_chains - n_levels;
    // largest-remainder apportionment
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n_levels);
    for (l, w) in weights.iter().enumerate() {
        let share = w / total * remaining as f64;
        let whole = share.floor() as usize;
        out[l] += whole;
        fracs.push((share - whole as f64, l));
        remaining = remaining.saturating_sub(whole);
    }
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for &(_, l) in fracs.iter().take(remaining) {
        out[l] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> DesConfig {
        DesConfig {
            eval_time: vec![0.003, 0.045, 0.93],
            eval_jitter: 0.0,
            samples_per_level: vec![1000, 100, 10],
            burn_in: vec![50, 20, 10],
            subsampling: vec![10, 5, 0],
            chains_per_level: vec![2, 2, 1],
            group_size: 1,
            phonebook_service_time: 1e-4,
            collector_service_time: 0.0,
            load_balancing: false,
            seed: 1,
            ledger: false,
            ledger_pairing_overhead: 0.0,
            spec_hit_rate: 0.0,
            spec_waste: 0.0,
        }
    }

    #[test]
    fn simulation_terminates_and_counts_evals() {
        let r = simulate(&base_config());
        assert!(r.makespan > 0.0);
        // level 0 must run at least its own samples plus burn-in
        assert!(r.evals_per_level[0] >= 1000);
        // level 1 runs its samples + 10 x tokens for level 2... at least
        assert!(r.evals_per_level[1] >= 100);
        assert!(r.evals_per_level[2] >= 10);
    }

    fn ledger_config() -> DesConfig {
        let mut cfg = base_config();
        cfg.ledger = true;
        cfg.ledger_pairing_overhead = 0.8;
        cfg
    }

    #[test]
    fn speculation_hits_shorten_the_ledger_makespan() {
        // precomputed serves take the ρ(1+diverged) server legs off the
        // requester's critical path, so virtual wall-clock must drop
        let base = simulate(&ledger_config());
        let mut spec = ledger_config();
        spec.spec_hit_rate = 0.7;
        let hit = simulate(&spec);
        assert!(
            hit.makespan < base.makespan,
            "speculation hits should shorten the makespan: {} vs {}",
            hit.makespan,
            base.makespan
        );
    }

    #[test]
    fn speculation_waste_inflates_work_not_latency() {
        // discarded speculations cost server evaluations off the
        // critical path: eval counts grow, the makespan does not
        let base = simulate(&ledger_config());
        let mut wasted = ledger_config();
        wasted.spec_waste = 0.5;
        let w = simulate(&wasted);
        assert!(
            w.evals_per_level[0] > base.evals_per_level[0],
            "waste must show up in coarse eval counts: {:?} vs {:?}",
            w.evals_per_level,
            base.evals_per_level
        );
        assert!(
            (w.makespan - base.makespan).abs() < 1e-9,
            "waste is off the critical path: {} vs {}",
            w.makespan,
            base.makespan
        );
    }

    #[test]
    fn subsampling_inflates_coarse_evals() {
        let r = simulate(&base_config());
        // every level-1 step needs a level-0 token costing ~10 steps
        assert!(
            r.evals_per_level[0] as f64 >= 5.0 * r.evals_per_level[1] as f64,
            "evals {:?}",
            r.evals_per_level
        );
    }

    #[test]
    fn more_chains_reduce_makespan() {
        let slow = simulate(&base_config());
        let mut cfg = base_config();
        cfg.chains_per_level = vec![8, 4, 2];
        let fast = simulate(&cfg);
        assert!(
            fast.makespan < slow.makespan,
            "more chains should be faster: {} vs {}",
            fast.makespan,
            slow.makespan
        );
    }

    #[test]
    fn strong_scaling_saturates() {
        // speedup from 4x chains at small chain counts should exceed the
        // speedup from 4x chains at very large chain counts
        let mk = |mult: usize| {
            let mut cfg = base_config();
            cfg.samples_per_level = vec![2000, 200, 20];
            cfg.chains_per_level = vec![2 * mult, mult, mult];
            simulate(&cfg).makespan
        };
        let s_small = mk(1) / mk(4);
        let s_large = mk(16) / mk(64);
        assert!(
            s_small > s_large,
            "scaling should saturate: small-range speedup {s_small:.2}, large-range {s_large:.2}"
        );
    }

    #[test]
    fn phonebook_serialization_limits_throughput() {
        let mut cheap = base_config();
        cheap.samples_per_level = vec![5000, 50, 5];
        cheap.eval_time = vec![1e-4, 0.045, 0.93]; // very fast coarse model
        cheap.chains_per_level = vec![32, 2, 1];
        cheap.phonebook_service_time = 0.0;
        let free = simulate(&cheap);
        cheap.phonebook_service_time = 5e-3;
        let congested = simulate(&cheap);
        assert!(
            congested.makespan > free.makespan,
            "phonebook contention should slow the run: {} vs {}",
            congested.makespan,
            free.makespan
        );
    }

    #[test]
    fn load_balancing_helps_unbalanced_allocation() {
        let mut cfg = base_config();
        cfg.samples_per_level = vec![400, 400, 40];
        // deliberately starve level 1 of chains
        cfg.chains_per_level = vec![6, 1, 1];
        cfg.load_balancing = false;
        let fixed = simulate(&cfg);
        cfg.load_balancing = true;
        let balanced = simulate(&cfg);
        assert!(
            balanced.makespan <= fixed.makespan * 1.05,
            "LB should not hurt: {} vs {}",
            balanced.makespan,
            fixed.makespan
        );
        assert!(
            balanced.reassignments > 0,
            "idle chains should be reassigned"
        );
    }

    #[test]
    fn jitter_changes_realization_not_scale() {
        let mut cfg = base_config();
        cfg.eval_jitter = 0.3;
        let a = simulate(&cfg);
        cfg.seed = 99;
        let b = simulate(&cfg);
        assert!(a.makespan > 0.0 && b.makespan > 0.0);
        assert!((a.makespan / b.makespan) < 3.0 && (b.makespan / a.makespan) < 3.0);
    }

    #[test]
    fn busy_fraction_is_sane() {
        let r = simulate(&base_config());
        assert!(r.busy_fraction > 0.0 && r.busy_fraction <= 1.0);
    }

    #[test]
    fn distribute_chains_respects_weights() {
        let chains = distribute_chains(10, &[0.15, 0.001, 0.00004], &[0.003, 0.045, 0.93]);
        assert_eq!(chains.iter().sum::<usize>(), 10);
        assert!(chains.iter().all(|&c| c >= 1));
        assert!(
            chains[0] >= chains[2],
            "coarse level carries most effort: {chains:?}"
        );
    }

    #[test]
    fn ranks_account_for_overhead_and_groups() {
        let mut cfg = base_config();
        cfg.group_size = 3;
        // 2 + 3 collectors + 3*(2+2+1) chains
        assert_eq!(cfg.n_ranks(), 2 + 3 + 15);
    }
}
