//! Cooperative virtual-rank runtime: many suspendable ranks per worker
//! thread.
//!
//! The thread scheduler in [`crate::scheduler`] spawns one OS thread per
//! rank, so live runs are bounded by the physical core count and only the
//! discrete-event simulator reaches the paper's 1024-rank scale. This
//! module removes that bound: a **virtual rank** is an explicitly
//! suspendable state machine implementing [`VirtualRank`] — each
//! [`poll`](VirtualRank::poll) runs until the rank would block on a
//! receive, then returns a *wait predicate* ([`Poll::Wait`]); the rank is
//! re-polled only when a matching message arrives. A small pool of worker
//! threads (typically far fewer than ranks) drives the machines through
//! per-worker run queues with message-arrival wakeups, so hundreds to
//! thousands of controllers run **live** on a handful of cores.
//!
//! Delivery semantics mirror [`crate::comm`]: per-rank FIFO queues,
//! non-blocking sends, out-of-order messages buffered in arrival order
//! and re-delivered first ([`VCtx::try_recv_match`] is the non-blocking
//! analogue of `RankCtx::recv_match`), and sends to exited ranks are
//! dropped — here counted in [`RuntimeStats::dropped_sends`] rather than
//! lost silently.
//!
//! Scheduling is deterministic in structure (rank `r` is *homed* on
//! worker `r % n_workers`, run queues are FIFO) but not in timing: wakeup
//! interleavings across workers depend on the OS, exactly like the thread
//! scheduler's. An idle worker **steals** runnable ranks from the longest
//! run queue (machines live in per-rank cells and are `Send`, so they
//! travel with their rank), which bounds the straggling a hot home worker
//! can cause; with a single worker no stealing is possible, so
//! single-worker runs remain exactly deterministic. The MLMCMC role
//! protocols ported onto this runtime live in [`crate::roles`].

use crate::comm::Envelope;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Wait predicate returned by [`Poll::Wait`]: `true` for any message that
/// should wake the suspended rank.
pub type WaitPred<M> = Box<dyn FnMut(&Envelope<M>) -> bool + Send>;

/// What a virtual rank decided after one poll.
pub enum Poll<M, R> {
    /// The rank has more work it can do right now: re-enqueue it on its
    /// worker's run queue (after everything already queued — one unit of
    /// work per poll keeps scheduling fair across the ranks sharing a
    /// worker).
    Ready,
    /// The rank would block on a receive: suspend until a message
    /// matching the predicate arrives. The rank must have drained its
    /// context with (at least) the same predicate before returning this;
    /// the runtime re-checks pending messages under the slot lock, so the
    /// install-vs-arrival race cannot lose a wakeup.
    Wait(WaitPred<M>),
    /// The rank finished with a result; it receives no further polls and
    /// subsequent sends to it are counted as dropped.
    Exit(R),
}

/// A suspendable virtual rank (one role state machine).
pub trait VirtualRank<M: Send> {
    /// Result type collected by [`Runtime::run`] when the rank exits.
    type Output;

    /// Run until the next suspension point.
    fn poll(&mut self, ctx: &mut VCtx<'_, M>) -> Poll<M, Self::Output>;
}

/// Scheduling state of one virtual rank.
enum SlotState<M> {
    /// On its worker's run queue or currently being polled.
    Runnable,
    /// Suspended on a wait predicate.
    Waiting(WaitPred<M>),
    /// Exited; further sends are dropped (and counted).
    Exited,
}

/// Shared per-rank mailbox + scheduling state (one lock per rank: senders
/// contend only with the rank's own worker, never with each other
/// globally).
struct RankSlot<M> {
    queue: VecDeque<Envelope<M>>,
    state: SlotState<M>,
}

struct Worker {
    run_queue: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

struct Shared<M> {
    slots: Vec<Mutex<RankSlot<M>>>,
    workers: Vec<Worker>,
    /// Ranks that have not exited yet.
    live: AtomicUsize,
    /// All ranks exited — workers drain and return.
    done: AtomicBool,
    dropped_sends: AtomicUsize,
    polls: AtomicUsize,
    wakeups: AtomicUsize,
    steals: AtomicUsize,
    /// Observer invoked as `(stolen_rank, victim_worker)` after a
    /// successful steal. Pure observation on the thief's idle path — it
    /// runs after the victim's queue lock is released and must not
    /// touch rank state (the obs layer uses it to mark steal events).
    steal_probe: Option<StealProbe>,
}

/// Steal observer callback: `(stolen_rank, victim_worker)`.
pub type StealProbe = Arc<dyn Fn(usize, usize) + Send + Sync>;

impl<M: Send> Shared<M> {
    fn worker_of(&self, rank: usize) -> &Worker {
        &self.workers[rank % self.workers.len()]
    }

    fn enqueue(&self, rank: usize) {
        let worker = self.worker_of(rank);
        let mut queue = worker.run_queue.lock().expect("runtime poisoned");
        queue.push_back(rank);
        worker.cv.notify_one();
    }

    /// Deliver `env` to `to`, waking it when its wait predicate matches.
    fn send(&self, to: usize, env: Envelope<M>) {
        let wake = {
            let mut slot = self.slots[to].lock().expect("runtime poisoned");
            match &mut slot.state {
                SlotState::Exited => {
                    let prev = self.dropped_sends.fetch_add(1, Ordering::Relaxed);
                    // debug builds surface the first loss per run
                    // (teardown legitimately drops a handful)
                    #[cfg(debug_assertions)]
                    if prev == 0 {
                        eprintln!(
                            "uq-parallel runtime: dropping send from rank {} to exited rank {to} \
                             (further drops counted silently)",
                            env.from
                        );
                    }
                    #[cfg(not(debug_assertions))]
                    let _ = prev;
                    return;
                }
                SlotState::Waiting(pred) => {
                    let matched = pred(&env);
                    slot.queue.push_back(env);
                    if matched {
                        slot.state = SlotState::Runnable;
                    }
                    matched
                }
                SlotState::Runnable => {
                    slot.queue.push_back(env);
                    false
                }
            }
        };
        if wake {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            self.enqueue(to);
        }
    }
}

/// Per-poll communication handle of a virtual rank — the non-blocking
/// counterpart of [`crate::comm::RankCtx`].
pub struct VCtx<'a, M: Send> {
    rank: usize,
    size: usize,
    shared: &'a Shared<M>,
    /// Rank-local buffer of already-pulled messages (arrival order).
    buffer: &'a mut VecDeque<Envelope<M>>,
}

impl<M: Send> VCtx<'_, M> {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of virtual ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `msg` to rank `to`; never blocks. Sends to exited ranks —
    /// and to out-of-range rank indices, a routine race under elastic
    /// membership rather than a programmer error — are dropped and
    /// counted in [`RuntimeStats::dropped_sends`].
    pub fn send(&self, to: usize, msg: M) {
        if to >= self.size {
            let prev = self.shared.dropped_sends.fetch_add(1, Ordering::Relaxed);
            #[cfg(debug_assertions)]
            if prev == 0 {
                eprintln!(
                    "uq-parallel runtime: dropping send from rank {} to out-of-range rank {to} \
                     (further drops counted silently)",
                    self.rank
                );
            }
            #[cfg(not(debug_assertions))]
            let _ = prev;
            return;
        }
        self.shared.send(
            to,
            Envelope {
                from: self.rank,
                msg,
            },
        );
    }

    /// Move everything queued in the shared mailbox into the rank-local
    /// buffer (one lock acquisition).
    fn pull(&mut self) {
        let mut slot = self.shared.slots[self.rank]
            .lock()
            .expect("runtime poisoned");
        while let Some(env) = slot.queue.pop_front() {
            self.buffer.push_back(env);
        }
    }

    /// Non-blocking receive of the next message in arrival order.
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        if self.buffer.is_empty() {
            self.pull();
        }
        self.buffer.pop_front()
    }

    /// Non-blocking receive of the first message satisfying `pred`;
    /// non-matching messages stay buffered in arrival order (the
    /// non-blocking analogue of `RankCtx::recv_match`).
    pub fn try_recv_match(
        &mut self,
        mut pred: impl FnMut(&Envelope<M>) -> bool,
    ) -> Option<Envelope<M>> {
        self.pull();
        let pos = self.buffer.iter().position(&mut pred)?;
        self.buffer.remove(pos)
    }

    /// Put a message back at the front of the buffer (next to be
    /// returned by `try_recv`).
    pub fn unrecv(&mut self, env: Envelope<M>) {
        self.buffer.push_front(env);
    }
}

/// Counters describing one runtime execution. The stats returned by
/// [`Runtime::run`] cover **that run only** — a [`Runtime`] reused
/// across runs resets them between invocations (regression-tested by
/// `stats_reset_between_runs_on_a_reused_pool`); the pool-lifetime
/// accumulation lives in [`Runtime::lifetime_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Total `poll` invocations across all ranks.
    pub polls: usize,
    /// Wakeups caused by a message matching a wait predicate.
    pub wakeups: usize,
    /// Sends to already-exited ranks (observable shutdown message loss).
    pub dropped_sends: usize,
    /// Runnable ranks taken from another worker's run queue by an idle
    /// worker (work stealing).
    pub steals: usize,
}

impl RuntimeStats {
    /// Component-wise accumulation (lifetime bookkeeping).
    fn absorb(&mut self, other: &RuntimeStats) {
        self.polls += other.polls;
        self.wakeups += other.wakeups;
        self.dropped_sends += other.dropped_sends;
        self.steals += other.steals;
    }
}

/// Results of a runtime execution.
pub struct RuntimeRun<R> {
    /// Per-rank outputs, indexed by rank.
    pub results: Vec<R>,
    pub stats: RuntimeStats,
}

/// The cooperative runtime. One `Runtime` is a reusable worker pool:
/// [`run`](Self::run) may be invoked repeatedly (e.g. across the points
/// of a scaling sweep) and each invocation's [`RuntimeStats`] describe
/// that run alone, while [`lifetime_stats`](Self::lifetime_stats)
/// accumulates across every run of the pool.
pub struct Runtime {
    n_workers: usize,
    lifetime: parking_lot::Mutex<RuntimeStats>,
    /// Optional steal observer installed by the driver (interior
    /// mutability: the pool is shared by reference). Copied into each
    /// run's `Shared`, so mid-run installs take effect at the next run.
    steal_probe: parking_lot::Mutex<Option<StealProbe>>,
}

impl Runtime {
    /// A runtime driving its virtual ranks with `n_workers` OS threads.
    ///
    /// # Panics
    /// Panics if `n_workers == 0`.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0, "Runtime: need at least one worker");
        Self {
            n_workers,
            lifetime: parking_lot::Mutex::new(RuntimeStats::default()),
            steal_probe: parking_lot::Mutex::new(None),
        }
    }

    /// Install (or clear) the steal observer for subsequent runs. The
    /// probe is called as `(stolen_rank, victim_worker)` on the thief's
    /// idle path only — it cannot affect scheduling order, message
    /// delivery or rank state, so enabling it preserves bit-identical
    /// execution.
    pub fn set_steal_probe(&self, probe: Option<StealProbe>) {
        *self.steal_probe.lock() = probe;
    }

    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Counters accumulated over every [`run`](Self::run) of this pool.
    pub fn lifetime_stats(&self) -> RuntimeStats {
        *self.lifetime.lock()
    }

    /// Run `n_ranks` virtual ranks to completion and gather their outputs
    /// by rank index. `factory(rank, size)` builds each rank's state
    /// machine lazily on first poll — usually on the rank's home worker
    /// (`r % n_workers`), but possibly on a stealing worker, so machines
    /// must be `Send`. Between polls a machine rests in its rank's cell;
    /// whichever worker pops the rank (home or thief) takes it from
    /// there, so a machine is only ever touched by one thread at a time.
    ///
    /// # Panics
    /// Propagates panics from worker threads.
    pub fn run<'a, M, R, F>(&self, n_ranks: usize, factory: F) -> RuntimeRun<R>
    where
        M: Send + 'a,
        R: Send + 'a,
        F: Fn(usize, usize) -> Box<dyn VirtualRank<M, Output = R> + Send + 'a> + Sync,
    {
        assert!(n_ranks > 0, "Runtime::run: need at least one rank");
        let n_workers = self.n_workers.min(n_ranks);
        let shared = Shared {
            slots: (0..n_ranks)
                .map(|_| {
                    Mutex::new(RankSlot {
                        queue: VecDeque::new(),
                        state: SlotState::Runnable,
                    })
                })
                .collect(),
            workers: (0..n_workers)
                .map(|_| Worker {
                    run_queue: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            live: AtomicUsize::new(n_ranks),
            done: AtomicBool::new(false),
            dropped_sends: AtomicUsize::new(0),
            polls: AtomicUsize::new(0),
            wakeups: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            steal_probe: self.steal_probe.lock().clone(),
        };
        // every rank starts runnable, queued in rank order on its worker
        for (worker_id, worker) in shared.workers.iter().enumerate() {
            let mut queue = worker.run_queue.lock().expect("runtime poisoned");
            queue.extend((worker_id..n_ranks).step_by(n_workers));
        }
        // machine cells: one per rank, taken by whichever worker polls it
        let cells: Vec<Mutex<Option<Entry<'a, M, R>>>> =
            (0..n_ranks).map(|_| Mutex::new(None)).collect();
        let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let shared = &shared;
            let cells = &cells;
            let factory = &factory;
            let mut handles = Vec::with_capacity(n_workers);
            for worker_id in 0..n_workers {
                handles.push(
                    scope.spawn(move || worker_loop(shared, cells, worker_id, n_ranks, factory)),
                );
            }
            for handle in handles {
                for (rank, out) in handle.join().expect("runtime worker panicked") {
                    results[rank] = Some(out);
                }
            }
        });
        // per-run counters: `Shared` is constructed afresh above, so a
        // reused pool cannot leak a previous run's polls/steals into
        // this run's stats — only the lifetime accumulator carries over
        let stats = RuntimeStats {
            polls: shared.polls.load(Ordering::Relaxed),
            wakeups: shared.wakeups.load(Ordering::Relaxed),
            dropped_sends: shared.dropped_sends.load(Ordering::Relaxed),
            steals: shared.steals.load(Ordering::Relaxed),
        };
        self.lifetime.lock().absorb(&stats);
        RuntimeRun {
            results: results.into_iter().map(Option::unwrap).collect(),
            stats,
        }
    }
}

/// A rank's state machine plus its rank-local message buffer; rests in
/// the rank's cell between polls and travels with it when stolen.
struct Entry<'a, M: Send, R> {
    machine: Box<dyn VirtualRank<M, Output = R> + Send + 'a>,
    buffer: VecDeque<Envelope<M>>,
}

/// Makes a worker panic observable to its peers: without this, a panic
/// in one machine would leave the other workers parked forever instead
/// of letting the scope join propagate it.
struct PanicFence<'s, M>(&'s Shared<M>);

impl<M> Drop for PanicFence<'_, M> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.done.store(true, Ordering::Release);
            for w in &self.0.workers {
                let _guard = w.run_queue.lock();
                w.cv.notify_all();
            }
        }
    }
}

/// Steal a runnable rank for `thief`: scan the other workers' queues and
/// pop from the back of the longest (the victim keeps its FIFO front).
fn try_steal<M: Send>(shared: &Shared<M>, thief: usize) -> Option<usize> {
    let n = shared.workers.len();
    let mut best: Option<(usize, usize)> = None; // (queue length, victim)
    for offset in 1..n {
        let victim = (thief + offset) % n;
        let len = shared.workers[victim]
            .run_queue
            .lock()
            .expect("runtime poisoned")
            .len();
        if len > 0 && best.is_none_or(|(l, _)| len > l) {
            best = Some((len, victim));
        }
    }
    let (_, victim) = best?;
    let rank = shared.workers[victim]
        .run_queue
        .lock()
        .expect("runtime poisoned")
        .pop_back();
    if let Some(rank) = rank {
        shared.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(probe) = &shared.steal_probe {
            probe(rank, victim);
        }
    }
    rank
}

/// One worker: pop runnable ranks (own queue first, then steal from the
/// longest peer queue), poll their machines, handle the returned
/// suspension.
fn worker_loop<'a, M, R, F>(
    shared: &Shared<M>,
    cells: &[Mutex<Option<Entry<'a, M, R>>>],
    worker_id: usize,
    n_ranks: usize,
    factory: &F,
) -> Vec<(usize, R)>
where
    M: Send + 'a,
    R: Send + 'a,
    F: Fn(usize, usize) -> Box<dyn VirtualRank<M, Output = R> + Send + 'a> + Sync,
{
    let mut outputs = Vec::new();
    let worker = &shared.workers[worker_id];
    let _fence = PanicFence(shared);
    loop {
        // next runnable rank: own queue, else steal, else park briefly
        // (timed, so new steal opportunities on other workers' queues are
        // noticed; own-queue wakeups notify the condvar directly)
        let rank = {
            let mut next = None;
            while next.is_none() {
                if let Some(rank) = {
                    let mut queue = worker.run_queue.lock().expect("runtime poisoned");
                    queue.pop_front()
                } {
                    next = Some(rank);
                    break;
                }
                if shared.done.load(Ordering::Acquire) {
                    return outputs;
                }
                if let Some(rank) = try_steal(shared, worker_id) {
                    next = Some(rank);
                    break;
                }
                let queue = worker.run_queue.lock().expect("runtime poisoned");
                if queue.is_empty() && !shared.done.load(Ordering::Acquire) {
                    let _ = worker
                        .cv
                        .wait_timeout(queue, Duration::from_micros(500))
                        .expect("runtime poisoned");
                }
            }
            next.expect("runnable rank")
        };
        let mut entry = cells[rank]
            .lock()
            .expect("runtime poisoned")
            .take()
            .unwrap_or_else(|| Entry {
                machine: factory(rank, n_ranks),
                buffer: VecDeque::new(),
            });
        shared.polls.fetch_add(1, Ordering::Relaxed);
        let mut ctx = VCtx {
            rank,
            size: n_ranks,
            shared,
            buffer: &mut entry.buffer,
        };
        match entry.machine.poll(&mut ctx) {
            Poll::Ready => {
                // park the machine before re-queueing: the next poll may
                // happen on a different worker
                *cells[rank].lock().expect("runtime poisoned") = Some(entry);
                shared.enqueue(rank);
            }
            Poll::Wait(mut pred) => {
                // Install the predicate under the slot lock, re-checking
                // messages that raced in after the rank last drained (and,
                // defensively, the rank-local buffer): a match means the
                // rank stays runnable instead of suspending.
                let matched_buffered = entry.buffer.iter().any(&mut pred);
                *cells[rank].lock().expect("runtime poisoned") = Some(entry);
                let mut slot = shared.slots[rank].lock().expect("runtime poisoned");
                if matched_buffered || slot.queue.iter().any(&mut pred) {
                    drop(slot);
                    shared.enqueue(rank);
                } else {
                    slot.state = SlotState::Waiting(pred);
                }
            }
            Poll::Exit(out) => {
                {
                    let mut slot = shared.slots[rank].lock().expect("runtime poisoned");
                    slot.state = SlotState::Exited;
                    // messages never received count as dropped too —
                    // shutdown loss must be observable, not silent
                    let lost = slot.queue.len() + entry.buffer.len();
                    shared.dropped_sends.fetch_add(lost, Ordering::Relaxed);
                    slot.queue.clear();
                }
                drop(entry);
                outputs.push((rank, out));
                if shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    shared.done.store(true, Ordering::Release);
                    for w in &shared.workers {
                        let _guard = w.run_queue.lock().expect("runtime poisoned");
                        w.cv.notify_all();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Token(usize),
        Noise,
        Stop,
    }

    type Machine = Box<dyn VirtualRank<TestMsg, Output = usize> + Send>;

    /// Ring: rank 0 injects `Token(0)`; on receipt every rank forwards
    /// `Token(v + 1)` to the next rank (modulo size) and exits with `v`.
    /// The final forward targets the already-exited rank 1, so exactly
    /// one send is dropped — which the stats must report.
    struct RingRank {
        injected: bool,
    }

    impl VirtualRank<TestMsg> for RingRank {
        type Output = usize;
        fn poll(&mut self, ctx: &mut VCtx<'_, TestMsg>) -> Poll<TestMsg, usize> {
            if ctx.rank() == 0 && !self.injected {
                self.injected = true;
                ctx.send(1 % ctx.size(), TestMsg::Token(0));
            }
            match ctx.try_recv_match(|e| matches!(e.msg, TestMsg::Token(_))) {
                Some(env) => {
                    let TestMsg::Token(v) = env.msg else {
                        unreachable!()
                    };
                    ctx.send((ctx.rank() + 1) % ctx.size(), TestMsg::Token(v + 1));
                    Poll::Exit(v)
                }
                None => Poll::Wait(Box::new(|e| matches!(e.msg, TestMsg::Token(_)))),
            }
        }
    }

    #[test]
    fn token_ring_many_ranks_few_workers() {
        // far more virtual ranks than workers: the whole point
        let n = 500;
        let run = Runtime::new(4).run(n, |_, _| Box::new(RingRank { injected: false }) as Machine);
        for (rank, &v) in run.results.iter().enumerate() {
            let expect = if rank == 0 { n - 1 } else { rank - 1 };
            assert_eq!(v, expect, "rank {rank}");
        }
        // rank 0's final forward hit the exited rank 1
        assert_eq!(run.stats.dropped_sends, 1);
        // every rank polled at least once; most tokens arrive while their
        // target is already suspended on the wait predicate (ranks whose
        // token raced ahead of their first poll wake without one)
        assert!(run.stats.polls >= n);
        assert!(run.stats.wakeups > 0);
    }

    /// Gather: every rank > 0 sends its id to rank 0 and exits; rank 0
    /// wakes on arrivals (any-message predicate) until it has them all.
    struct GatherRank {
        seen: usize,
        sum: usize,
        sent: bool,
    }

    impl VirtualRank<TestMsg> for GatherRank {
        type Output = usize;
        fn poll(&mut self, ctx: &mut VCtx<'_, TestMsg>) -> Poll<TestMsg, usize> {
            if ctx.rank() != 0 {
                if !self.sent {
                    self.sent = true;
                    ctx.send(0, TestMsg::Token(ctx.rank()));
                }
                return Poll::Exit(0);
            }
            while let Some(env) = ctx.try_recv() {
                if let TestMsg::Token(v) = env.msg {
                    self.seen += 1;
                    self.sum += v;
                }
            }
            if self.seen == ctx.size() - 1 {
                Poll::Exit(self.sum)
            } else {
                Poll::Wait(Box::new(|_| true))
            }
        }
    }

    #[test]
    fn gather_under_contention() {
        let n = 512;
        let run = Runtime::new(8).run(n, |_, _| {
            Box::new(GatherRank {
                seen: 0,
                sum: 0,
                sent: false,
            }) as Machine
        });
        assert_eq!(run.results[0], (1..n).sum::<usize>());
        assert_eq!(run.stats.dropped_sends, 0);
    }

    /// Rank 0 waits specifically for a `Token` while `Noise` arrives
    /// first; after matching out of order, the buffered noise must
    /// re-deliver in arrival order.
    struct MatchRank {
        sent: bool,
    }

    impl VirtualRank<TestMsg> for MatchRank {
        type Output = usize;
        fn poll(&mut self, ctx: &mut VCtx<'_, TestMsg>) -> Poll<TestMsg, usize> {
            if ctx.rank() == 1 {
                if !self.sent {
                    self.sent = true;
                    ctx.send(0, TestMsg::Noise);
                    ctx.send(0, TestMsg::Stop);
                    ctx.send(0, TestMsg::Token(7));
                }
                return Poll::Exit(0);
            }
            match ctx.try_recv_match(|e| matches!(e.msg, TestMsg::Token(_))) {
                Some(env) => {
                    let TestMsg::Token(v) = env.msg else {
                        unreachable!()
                    };
                    // the skipped messages re-deliver in arrival order
                    assert_eq!(ctx.try_recv().expect("noise").msg, TestMsg::Noise);
                    assert_eq!(ctx.try_recv().expect("stop").msg, TestMsg::Stop);
                    assert!(ctx.try_recv().is_none());
                    Poll::Exit(v)
                }
                None => Poll::Wait(Box::new(|e| matches!(e.msg, TestMsg::Token(_)))),
            }
        }
    }

    #[test]
    fn wait_predicate_skips_nonmatching_and_preserves_order() {
        let run = Runtime::new(2).run(2, |_, _| Box::new(MatchRank { sent: false }) as Machine);
        assert_eq!(run.results[0], 7);
        assert_eq!(run.stats.dropped_sends, 0);
    }

    /// A rank that burns CPU for `spins` sin() iterations, then exits.
    struct HeavyRank {
        spins: u32,
    }

    impl VirtualRank<TestMsg> for HeavyRank {
        type Output = usize;
        fn poll(&mut self, _ctx: &mut VCtx<'_, TestMsg>) -> Poll<TestMsg, usize> {
            let mut x = 0.4f64;
            for _ in 0..self.spins {
                x = (x + 1.3).sin();
            }
            std::hint::black_box(x);
            Poll::Exit(1)
        }
    }

    #[test]
    fn work_stealing_rescues_a_skewed_pinning() {
        // all the heavy ranks are homed on worker 0 (rank % 4 == 0), the
        // rest exit immediately: without stealing, worker 0 would run the
        // entire spin workload serially while three workers idle
        let n = 64usize;
        let n_workers = 4usize;
        let spins = 300_000u32;
        // calibrate one heavy unit single-threaded
        let t0 = std::time::Instant::now();
        let mut x = 0.4f64;
        for _ in 0..spins {
            x = (x + 1.3).sin();
        }
        std::hint::black_box(x);
        let unit = t0.elapsed();
        let heavy_count = n / n_workers; // ranks 0, 4, 8, …
        let serial = unit * heavy_count as u32;

        let t1 = std::time::Instant::now();
        let run = Runtime::new(n_workers).run(n, |rank, _| {
            Box::new(HeavyRank {
                spins: if rank % n_workers == 0 { spins } else { 0 },
            }) as Machine
        });
        let elapsed = t1.elapsed();
        assert_eq!(run.results.iter().sum::<usize>(), n);
        // idle workers must actually have stolen from the hot one
        assert!(run.stats.steals > 0, "stats {:?}", run.stats);
        // bounded overhead: the skewed pinning must finish well below the
        // hot worker's serial bound (only asserted when the machine can
        // physically run two workers at once; the generous factor absorbs
        // noisy-neighbor CI variance)
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores >= 2 {
            assert!(
                elapsed < serial * 3 / 4,
                "stealing should beat the hot-worker serial bound: {elapsed:?} vs {serial:?}"
            );
        }
    }

    #[test]
    fn single_worker_never_steals() {
        let run = Runtime::new(1).run(8, |_, _| Box::new(HeavyRank { spins: 10 }) as Machine);
        assert_eq!(run.results.iter().sum::<usize>(), 8);
        assert_eq!(run.stats.steals, 0);
    }

    #[test]
    fn stats_reset_between_runs_on_a_reused_pool() {
        // regression: per-run RuntimeStats must describe one run only.
        // First run: the skewed pinning from the stealing test, which is
        // guaranteed to steal; second run on the SAME pool: trivial
        // no-contention ranks, which must report zero steals (and far
        // fewer polls), not the first run's counters carried over.
        let pool = Runtime::new(4);
        let first = pool.run(64, |rank, _| {
            Box::new(HeavyRank {
                spins: if rank % 4 == 0 { 200_000 } else { 0 },
            }) as Machine
        });
        assert!(first.stats.steals > 0, "first run must steal");
        // a single rank clamps the pool to one active worker, so this
        // run cannot steal at all — any nonzero count is leakage
        let second = pool.run(1, |_, _| Box::new(HeavyRank { spins: 0 }) as Machine);
        assert_eq!(
            second.stats.steals, 0,
            "reused pool leaked the previous run's steals: {:?}",
            second.stats
        );
        assert!(
            second.stats.polls < first.stats.polls,
            "per-run polls must not accumulate: {:?} after {:?}",
            second.stats,
            first.stats
        );
        // the pool-lifetime view is the across-runs sum
        let lifetime = pool.lifetime_stats();
        assert_eq!(lifetime.steals, first.stats.steals + second.stats.steals);
        assert_eq!(lifetime.polls, first.stats.polls + second.stats.polls);
        assert_eq!(
            lifetime.dropped_sends,
            first.stats.dropped_sends + second.stats.dropped_sends
        );
    }

    #[test]
    fn unrecv_requeues_at_front() {
        struct Requeue {
            sent: bool,
        }
        impl VirtualRank<TestMsg> for Requeue {
            type Output = usize;
            fn poll(&mut self, ctx: &mut VCtx<'_, TestMsg>) -> Poll<TestMsg, usize> {
                if ctx.rank() == 1 {
                    if !self.sent {
                        self.sent = true;
                        ctx.send(0, TestMsg::Token(1));
                        ctx.send(0, TestMsg::Token(2));
                    }
                    return Poll::Exit(0);
                }
                match ctx.try_recv_match(|e| matches!(e.msg, TestMsg::Token(2))) {
                    Some(env) => {
                        ctx.unrecv(env);
                        // Token(1) was buffered first, but the unrecv'd
                        // Token(2) jumps the queue
                        let TestMsg::Token(v) = ctx.try_recv().expect("front").msg else {
                            panic!("expected token")
                        };
                        Poll::Exit(v)
                    }
                    None => Poll::Wait(Box::new(|e| matches!(e.msg, TestMsg::Token(2)))),
                }
            }
        }
        let run = Runtime::new(1).run(2, |_, _| {
            Box::new(Requeue { sent: false })
                as Box<dyn VirtualRank<TestMsg, Output = usize> + Send>
        });
        assert_eq!(run.results[0], 2);
    }
}
